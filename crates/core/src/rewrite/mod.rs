//! The paper's three meta-level rewritings, applied in this order
//! (Section 2, end: "the actual program defining this semantics is
//! obtained by applying first the `next` expansion, then the rewriting
//! for `choice` and, finally, the rewriting for `least`"):
//!
//! 1. [`next::expand_next`] — `next(I)` → `p(_, I1), I = I1 + 1,
//!    choice(I, W), choice(W, I)`;
//! 2. [`choice::rewrite_choice`] — `choice` goals → `chosen_i` /
//!    `diffchoice_i_j` rules with negation (Saccà–Zaniolo);
//! 3. [`least::rewrite_least`] — `least`/`most` goals → negated
//!    `better`-witness subgoals.
//!
//! The output of the full pipeline is an ordinary program with negation
//! whose **stable models define the semantics** of the original; the
//! operational engines (`gbc-engine`'s choice fixpoint, this crate's
//! greedy executor) are validated against it via the Gelfond–Lifschitz
//! checker (see [`crate::verify`]).

pub mod choice;
pub mod least;
pub mod next;

use gbc_ast::{Symbol, VarId};

/// Allocate a fresh variable named after `hint` (uniquified against the
/// existing names) and return its id.
pub(crate) fn fresh_var(var_names: &mut Vec<String>, hint: &str) -> VarId {
    let mut name = hint.to_owned();
    let mut k = 1;
    while var_names.iter().any(|n| n == &name) {
        k += 1;
        name = format!("{hint}{k}");
    }
    let id = VarId(var_names.len() as u32);
    var_names.push(name);
    id
}

/// Allocate a predicate symbol `base` uniquified against `taken`.
pub(crate) fn fresh_pred(base: &str, taken: &mut Vec<Symbol>) -> Symbol {
    let mut name = base.to_owned();
    let mut k = 1;
    loop {
        let s = Symbol::intern(&name);
        if !taken.contains(&s) {
            taken.push(s);
            return s;
        }
        k += 1;
        name = format!("{base}_{k}");
    }
}

/// Pipeline output: the fully rewritten (negative) program plus the
/// bookkeeping needed to reconstruct auxiliary relations from a run.
#[derive(Clone, Debug)]
pub struct FullRewrite {
    /// The negative program (positive atoms, negated atoms, comparisons).
    pub program: gbc_ast::Program,
    /// Per choice rule (in order of appearance among rules with choice
    /// goals in the `next`-expanded program): its `chosen_i` symbol.
    pub chosen_preds: Vec<Symbol>,
    /// Head symbols of all auxiliary rules (`chosen_i` excluded):
    /// `diffchoice_i_j` and `better_*`.
    pub aux_preds: Vec<Symbol>,
}

/// Run the complete pipeline on a validated program.
pub fn rewrite_full(program: &gbc_ast::Program) -> Result<FullRewrite, crate::CoreError> {
    let expanded = next::expand_next(program)?;
    let cr = choice::rewrite_choice(&expanded);
    let lr = least::rewrite_least(&cr.program);
    let mut aux_preds = cr.diffchoice_preds.clone();
    aux_preds.extend(lr.better_preds.iter().copied());
    Ok(FullRewrite { program: lr.program, chosen_preds: cr.chosen_preds, aux_preds })
}
