//! The `choice` → `chosen`/`diffChoice` rewriting (Section 2; after
//! Saccà–Zaniolo). For a rule
//!
//! ```text
//! r_i: h(T) <- B, choice(L1, R1), …, choice(Lk, Rk).
//! ```
//!
//! generate (with `D` = the variables of the choice goals, in first
//! occurrence order):
//!
//! ```text
//! h(T)        <- B⁻, chosen_i(D).
//! chosen_i(D) <- B, ¬diffchoice_i_1(L1, R1), …, ¬diffchoice_i_k(Lk, Rk).
//! diffchoice_i_j(Lj, Rj) <- B⁰, chosen_i(D′), r ≠ r′.     (one rule per r ∈ vars(Rj))
//! ```
//!
//! where `B⁻` is `B` minus the choice and extrema goals (the paper notes
//! the extremum in the top rule "only recomputes the one in the lower
//! rule"), `B⁰` is `B` minus choice and extrema goals (a *domain guard*
//! making the diffChoice rules safe — the paper prints them unsafely,
//! relying on their purely negative use), and `D′` is `D` with the
//! variables of `Rj` (and those of no goal at all) renamed to primed
//! copies. One `diffchoice` rule per right-hand variable encodes the
//! tuple disequality `Rj ≠ R′j` as a union.

use std::collections::HashMap;

use gbc_ast::term::Expr;
use gbc_ast::{CmpOp, Literal, Program, Rule, Symbol, Term, VarId};

use crate::rewrite::{fresh_pred, fresh_var};

/// Output of the choice rewriting.
#[derive(Clone, Debug)]
pub struct ChoiceRewrite {
    /// The rewritten program. Rules keep their original order; for a
    /// choice rule, the top rule takes its slot and the auxiliary
    /// `chosen_i`/`diffchoice_i_j` rules are appended at the end.
    pub program: Program,
    /// `chosen_i` symbols, indexed by choice-rule ordinal (order of
    /// appearance among rules with choice goals).
    pub chosen_preds: Vec<Symbol>,
    /// All `diffchoice_i_j` symbols.
    pub diffchoice_preds: Vec<Symbol>,
}

/// First-occurrence-ordered variables of the choice goals — must agree
/// with `gbc_engine::choice::ChoiceFixpoint::choice_vars`.
pub fn choice_vars(rule: &Rule) -> Vec<VarId> {
    let mut out = Vec::new();
    for lit in &rule.body {
        let Literal::Choice { left, right } = lit else { continue };
        for t in left.iter().chain(right) {
            t.collect_vars(&mut out);
        }
    }
    let mut seen = Vec::with_capacity(out.len());
    out.retain(|v| {
        if seen.contains(v) {
            false
        } else {
            seen.push(*v);
            true
        }
    });
    out
}

/// Apply the rewriting to every choice rule of `program`.
pub fn rewrite_choice(program: &Program) -> ChoiceRewrite {
    let mut taken: Vec<Symbol> =
        program.signature().map(|sig| sig.keys().copied().collect()).unwrap_or_default();
    let mut top_rules = Vec::new();
    let mut aux_rules = Vec::new();
    let mut chosen_preds = Vec::new();
    let mut diffchoice_preds = Vec::new();

    let mut ordinal = 0usize;
    for rule in &program.rules {
        if !rule.has_choice() {
            top_rules.push(rule.clone());
            continue;
        }
        let chosen = fresh_pred(&format!("chosen_{ordinal}"), &mut taken);
        chosen_preds.push(chosen);
        rewrite_one(
            rule,
            ordinal,
            chosen,
            &mut taken,
            &mut top_rules,
            &mut aux_rules,
            &mut diffchoice_preds,
        );
        ordinal += 1;
    }
    top_rules.extend(aux_rules);
    ChoiceRewrite { program: Program::from_rules(top_rules), chosen_preds, diffchoice_preds }
}

fn rewrite_one(
    rule: &Rule,
    ordinal: usize,
    chosen: Symbol,
    taken: &mut Vec<Symbol>,
    top_rules: &mut Vec<Rule>,
    aux_rules: &mut Vec<Rule>,
    diffchoice_preds: &mut Vec<Symbol>,
) {
    let d_vars = choice_vars(rule);
    let d_terms: Vec<Term> = d_vars.iter().map(|&v| Term::Var(v)).collect();

    // B⁰ / B⁻: body without choice and extrema goals.
    let base_body: Vec<Literal> = rule
        .body
        .iter()
        .filter(|l| {
            !matches!(l, Literal::Choice { .. } | Literal::Least { .. } | Literal::Most { .. })
        })
        .cloned()
        .collect();

    // Top rule: h(T) <- B⁻, chosen_i(D).
    let mut top_body = base_body.clone();
    top_body.push(Literal::pos(chosen, d_terms.clone()));
    top_rules.push(Rule::new(rule.head.clone(), top_body, rule.var_names.clone()));

    // Chosen rule: chosen_i(D) <- B (with extrema), ¬diffchoice_i_j(Lj, Rj).
    let goals: Vec<(Vec<Term>, Vec<Term>)> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Choice { left, right } => Some((left.clone(), right.clone())),
            _ => None,
        })
        .collect();
    let mut chosen_body: Vec<Literal> =
        rule.body.iter().filter(|l| !matches!(l, Literal::Choice { .. })).cloned().collect();
    let mut goal_diff_preds = Vec::new();
    for (j, (l, r)) in goals.iter().enumerate() {
        let dc = fresh_pred(&format!("diffchoice_{ordinal}_{j}"), taken);
        diffchoice_preds.push(dc);
        goal_diff_preds.push(dc);
        let mut args = l.clone();
        args.extend(r.iter().cloned());
        chosen_body.push(Literal::neg(dc, args));
    }
    aux_rules.push(Rule::new(
        gbc_ast::Atom::new(chosen, d_terms.clone()),
        chosen_body,
        rule.var_names.clone(),
    ));

    // diffchoice rules: for goal j, one rule per variable r of Rj.
    for (j, (l, r)) in goals.iter().enumerate() {
        let dc = goal_diff_preds[j];
        let l_vars: Vec<VarId> = {
            let mut v = Vec::new();
            for t in l {
                t.collect_vars(&mut v);
            }
            v
        };
        let r_vars: Vec<VarId> = {
            let mut v = Vec::new();
            for t in r {
                t.collect_vars(&mut v);
            }
            v
        };
        for &diseq_var in &r_vars {
            let mut var_names = rule.var_names.clone();
            // D′: keep Lj variables; prime everything else.
            let mut prime: HashMap<VarId, VarId> = HashMap::new();
            for &v in &d_vars {
                if l_vars.contains(&v) {
                    continue;
                }
                let hint = format!("{}_p", rule.var_name(v));
                prime.insert(v, fresh_var(&mut var_names, &hint));
            }
            let d_primed: Vec<Term> =
                d_vars.iter().map(|v| Term::Var(prime.get(v).copied().unwrap_or(*v))).collect();

            let mut head_args = l.clone();
            head_args.extend(r.iter().cloned());

            let mut body = base_body.clone();
            body.push(Literal::pos(chosen, d_primed));
            body.push(Literal::cmp(
                CmpOp::Ne,
                Expr::Term(Term::Var(diseq_var)),
                Expr::Term(Term::Var(prime[&diseq_var])),
            ));
            aux_rules.push(Rule::new(gbc_ast::Atom::new(dc, head_args), body, var_names));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Atom;

    /// Example 1: a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).
    fn example1_rule() -> Rule {
        Rule::new(
            Atom::new("a_st", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1)]),
                Literal::Choice { left: vec![Term::var(1)], right: vec![Term::var(0)] },
                Literal::Choice { left: vec![Term::var(0)], right: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into()],
        )
    }

    #[test]
    fn example_1_produces_the_paper_rule_shapes() {
        let out = rewrite_choice(&Program::from_rules(vec![example1_rule()]));
        let p = &out.program;
        // Top rule + chosen rule + 2 diffchoice rules (one per goal, each
        // with a single right-hand variable).
        assert_eq!(p.rules.len(), 4);
        assert_eq!(out.chosen_preds.len(), 1);
        assert_eq!(out.diffchoice_preds.len(), 2);
        assert!(p.validate().is_ok(), "rewritten program is valid:\n{p}");
        // No choice goals remain.
        assert!(p.rules.iter().all(|r| !r.has_choice()));
        // The chosen rule has two negated diffchoice goals.
        let chosen_rule = p.rules.iter().find(|r| r.head.pred == out.chosen_preds[0]).unwrap();
        assert_eq!(chosen_rule.negated_atoms().count(), 2);
    }

    #[test]
    fn chosen_args_are_choice_vars_in_first_occurrence_order() {
        let r = example1_rule();
        // Goals: choice(Crs, St), choice(St, Crs) ⇒ D = (Crs, St).
        assert_eq!(choice_vars(&r), vec![VarId(1), VarId(0)]);
    }

    #[test]
    fn empty_left_tuple_is_supported() {
        // tsp(X, Y) <- arc(X, Y), choice((), (X, Y)).
        let r = Rule::new(
            Atom::new("tsp", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("arc", vec![Term::var(0), Term::var(1)]),
                Literal::Choice { left: vec![], right: vec![Term::var(0), Term::var(1)] },
            ],
            vec!["X".into(), "Y".into()],
        );
        let out = rewrite_choice(&Program::from_rules(vec![r]));
        // Two diffchoice rules: one per right-hand variable.
        assert_eq!(out.diffchoice_preds.len(), 1);
        let diff_rules: Vec<&Rule> =
            out.program.rules.iter().filter(|r| r.head.pred == out.diffchoice_preds[0]).collect();
        assert_eq!(diff_rules.len(), 2);
        assert!(out.program.validate().is_ok(), "{}", out.program);
    }

    #[test]
    fn extrema_move_to_the_chosen_rule_only() {
        // c(X) <- item(X, C), least(C), choice((), (X)).
        let r = Rule::new(
            Atom::new("c", vec![Term::var(0)]),
            vec![
                Literal::pos("item", vec![Term::var(0), Term::var(1)]),
                Literal::Least { cost: Term::var(1), group: vec![] },
                Literal::Choice { left: vec![], right: vec![Term::var(0)] },
            ],
            vec!["X".into(), "C".into()],
        );
        let out = rewrite_choice(&Program::from_rules(vec![r]));
        let top = &out.program.rules[0];
        assert!(!top.has_extrema(), "top rule drops the extremum: {top}");
        let chosen_rule =
            out.program.rules.iter().find(|r| r.head.pred == out.chosen_preds[0]).unwrap();
        assert!(chosen_rule.has_extrema(), "chosen rule keeps it: {chosen_rule}");
    }

    #[test]
    fn name_collisions_are_avoided() {
        // A user predicate already named chosen_0.
        let mut p = Program::from_rules(vec![example1_rule()]);
        p.push_fact("chosen_0", vec![gbc_ast::Value::int(1)]);
        let out = rewrite_choice(&p);
        assert_ne!(out.chosen_preds[0].as_str(), "chosen_0");
    }

    #[test]
    fn non_choice_rules_are_untouched() {
        let flat = Rule::new(
            Atom::new("q", vec![Term::var(0)]),
            vec![Literal::pos("e", vec![Term::var(0)])],
            vec!["X".into()],
        );
        let out = rewrite_choice(&Program::from_rules(vec![flat.clone()]));
        assert_eq!(out.program.rules, vec![flat]);
        assert!(out.chosen_preds.is_empty());
    }
}
