//! Errors of the compilation and execution pipeline.

use std::fmt;

use gbc_ast::AstError;
use gbc_engine::EngineError;

/// Errors from `gbc-core`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// Static validation failed.
    Ast(AstError),
    /// Evaluation failed.
    Engine(EngineError),
    /// A `next` rule is malformed for expansion (stage variable issues).
    BadNextRule { rule: String, detail: String },
    /// The program is not a stage program (conflicting stage arguments,
    /// mixed rule kinds in a clique, …).
    NotStageProgram { detail: String },
    /// The program has stage cliques but fails (strict) stage
    /// stratification — e.g. the paper's Kruskal program (Example 8).
    NotStageStratified { detail: String },
    /// No greedy plan exists (a next rule falls outside the Section 6
    /// template); callers should use the generic choice fixpoint.
    NoGreedyPlan { detail: String },
    /// The greedy executor hit its step budget.
    StepLimit { steps: u64 },
    /// A stage argument held a non-integer value at run time.
    NonIntegerStage { found: String },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Ast(e) => write!(f, "{e}"),
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::BadNextRule { rule, detail } => {
                write!(f, "bad next rule `{rule}`: {detail}")
            }
            CoreError::NotStageProgram { detail } => {
                write!(f, "not a stage program: {detail}")
            }
            CoreError::NotStageStratified { detail } => {
                write!(f, "not stage-stratified: {detail}")
            }
            CoreError::NoGreedyPlan { detail } => {
                write!(f, "no greedy plan: {detail}")
            }
            CoreError::StepLimit { steps } => {
                write!(f, "greedy executor exceeded its step budget ({steps})")
            }
            CoreError::NonIntegerStage { found } => {
                write!(f, "stage argument must be an integer, found `{found}`")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<AstError> for CoreError {
    fn from(e: AstError) -> Self {
        CoreError::Ast(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}
