//! A minimal JSON value model with a correct writer and reader — no
//! serde.
//!
//! Only what `--stats-json` and the bench tooling need: objects,
//! arrays, strings (with full escaping), integers, floats, booleans and
//! null. Floats render via the shortest round-trip `{}` formatting;
//! non-finite floats render as `null` (JSON has no NaN/Infinity). The
//! reader ([`Json::parse`]) is a recursive-descent parser over the same
//! model, used by `experiments --compare` to re-read the bench
//! trajectory it wrote.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor from `&str` keys.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Parse a JSON document. Numbers without a fraction or exponent
    /// parse as `Int`/`UInt` (so counters survive a round trip with
    /// their integer identity intact); anything else becomes `Float`.
    ///
    /// Containers may nest at most [`MAX_PARSE_DEPTH`] levels deep.
    /// The parser is recursive-descent, so an adversarial document like
    /// `[[[[…` would otherwise translate directly into unbounded native
    /// stack growth; past the limit it returns a structured error
    /// instead. Every document the workspace itself writes nests a
    /// handful of levels, so the bound is unobservable in normal use —
    /// it exists for untrusted input (`gbc serve` request bodies).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Look up a field of an object by key (None on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, when it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

/// Deepest container nesting [`Json::parse`] accepts. Each level of an
/// array or object costs one recursion frame, so this caps native stack
/// use at a few tens of kilobytes — far below any thread's stack — no
/// matter what a client sends.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Recursive-descent JSON reader over a byte slice.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, checked against [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    /// Enter one container level, failing once the document nests
    /// deeper than [`MAX_PARSE_DEPTH`]. Callers pair it with a
    /// `self.depth -= 1` on exit.
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pairs arrive as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err("unpaired surrogate".into());
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; undo the
                            // generic advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(digits, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 { Json::UInt(i as u64) } else { Json::Int(i) });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) if x.is_finite() => {
                // `{}` prints integral floats without a dot; add one so
                // the value stays typed as a float on re-parse.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(18446744073709551615).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn compound_values_render_compactly() {
        let j = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("s", Json::Str("hi".into())),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,2],"s":"hi"}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let j = Json::obj(vec![("a", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(j.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn parse_round_trips_the_writer_output() {
        let j = Json::obj(vec![
            ("label", Json::Str("ci-quick \"q\"\n".into())),
            ("count", Json::UInt(18446744073709551615)),
            ("delta", Json::Int(-3)),
            ("secs", Json::Float(0.125)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("empty", Json::Obj(vec![]))])),
        ]);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parse_keeps_integers_integral() {
        // Counters written as integers must re-read as integers, not
        // floats — `--compare` does exact equality on them.
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1e2").unwrap(), Json::Float(100.0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(Json::parse(r#""a\"b\\c\ndAé""#).unwrap(), Json::Str("a\"b\\c\ndAé".into()));
        // \u escapes: BMP scalar and a surrogate pair for U+1D11E.
        assert_eq!(Json::parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
        assert_eq!(Json::parse("\"\\uD834\\uDD1E\"").unwrap(), Json::Str("\u{1D11E}".into()));
        // Raw multi-byte UTF-8 passes through unescaped.
        assert_eq!(Json::parse("\"𝄞\"").unwrap(), Json::Str("\u{1D11E}".into()));
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    /// `depth` levels of nested arrays: `[[…[0]…]]`.
    fn nested_arrays(depth: usize) -> String {
        format!("{}0{}", "[".repeat(depth), "]".repeat(depth))
    }

    #[test]
    fn parse_accepts_nesting_up_to_the_depth_limit() {
        let doc = nested_arrays(MAX_PARSE_DEPTH);
        let mut v = Json::parse(&doc).expect("exactly MAX_PARSE_DEPTH levels must parse");
        for _ in 0..MAX_PARSE_DEPTH {
            let Json::Arr(items) = v else { panic!("expected an array") };
            v = items.into_iter().next().expect("one item per level");
        }
        assert_eq!(v, Json::UInt(0));
        // Mixed containers count object and array levels alike.
        let mixed = format!(
            "{}{}1{}{}",
            "{\"k\":".repeat(60),
            "[".repeat(60),
            "]".repeat(60),
            "}".repeat(60)
        );
        assert!(Json::parse(&mixed).is_ok(), "120 mixed levels are within the limit");
    }

    #[test]
    fn parse_rejects_nesting_past_the_depth_limit_with_a_structured_error() {
        // One level past the limit: a structured error, not a stack
        // overflow — this is the `gbc serve` adversarial-body guard.
        let err = Json::parse(&nested_arrays(MAX_PARSE_DEPTH + 1))
            .expect_err("past-limit nesting must fail");
        assert!(err.contains("nesting deeper than"), "unexpected error: {err}");
        assert!(err.contains(&MAX_PARSE_DEPTH.to_string()), "limit missing from: {err}");
        // Depth is what fails, not length: a very LONG but FLAT document
        // of the same size parses fine.
        let flat = format!("[{}0]", "0,".repeat(2 * MAX_PARSE_DEPTH));
        assert!(Json::parse(&flat).is_ok(), "flat documents are unaffected by the depth limit");
        // An adversarial body far past the limit still fails cleanly.
        assert!(Json::parse(&nested_arrays(100_000)).is_err());
        assert!(Json::parse(&"{\"a\":".repeat(100_000)).is_err());
    }

    #[test]
    fn depth_resets_between_sibling_containers() {
        // Siblings at the same level must not accumulate depth: the
        // counter is nesting depth, not container count.
        let doc = format!(
            "[{},{},{}]",
            nested_arrays(MAX_PARSE_DEPTH - 1),
            nested_arrays(MAX_PARSE_DEPTH - 1),
            nested_arrays(MAX_PARSE_DEPTH - 1)
        );
        assert!(Json::parse(&doc).is_ok(), "siblings each get the full depth budget");
    }

    #[test]
    fn accessors_navigate_objects() {
        let j = Json::obj(vec![
            ("n", Json::UInt(5)),
            ("x", Json::Float(1.5)),
            ("s", Json::Str("hi".into())),
            ("xs", Json::Arr(vec![Json::UInt(1)])),
        ]);
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(5.0));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(j.get("xs").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }
}
