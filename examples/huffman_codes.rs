//! Huffman coding via Example 6's declarative program: build the tree
//! with choice + least + next, then read code lengths off the `t(…)`
//! term and compare against the classical construction.
//!
//! ```sh
//! cargo run --example huffman_codes
//! ```

use gbc_baselines::huffman::{huffman_tree, weighted_path_length};
use gbc_greedy::huffman;

fn main() {
    // English-ish letter frequencies for a small alphabet.
    let letters = ["e", "t", "a", "o", "i", "n", "s", "h"];
    let weights = [127i64, 91, 82, 75, 70, 67, 63, 61];

    let run = huffman::run_greedy(&weights).expect("huffman run");
    let root = huffman::decode_root(&run).expect("tree root");
    println!("declarative Huffman tree:\n  {root}");

    let decl_wpl = huffman::weighted_path_length(&run, &weights).unwrap();
    println!("\ncode lengths (symbol, bits):");
    for (sym, depth) in huffman::leaf_depths(&root) {
        println!("  {:>2} ({})  {} bits", sym, letters[sym as usize], depth);
    }

    let base = huffman_tree(&weights).expect("baseline tree");
    let base_wpl = weighted_path_length(&base, &weights);
    println!("\nweighted path length: declarative {decl_wpl}, classical {base_wpl}");
    assert_eq!(decl_wpl, base_wpl, "equal WPL ⇒ equally optimal");
    println!("optimality check: OK");
}
