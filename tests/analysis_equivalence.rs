//! Analysis-specialization equivalence sweep — the PR 8 contract:
//! whole-program analysis (dead-rule pruning, folded constants, the
//! decode-free `Int` cost heap, the bindings-free feed) is a pure
//! optimization. Every shipped program must produce byte-identical
//! results with analysis on and off (`GBC_NO_ANALYZE=1` territory), at
//! 1 and 4 worker threads — same canonical relation dump, same chosen
//! records, same semantic counters.
//!
//! The one counter that *may* differ is `heap_int_fast_compares`
//! (that's the point of the specialization); it is zeroed on both
//! sides before the snapshot comparison and asserted positive on the
//! programs whose cost columns are provably `int`.

use gbc_core::{ChosenRecord, GreedyConfig};
use gbc_storage::Database;
use gbc_telemetry::{Snapshot, Telemetry};

/// The ci.sh observability groupings: every shipped program with the
/// EDB file(s) it runs against.
const PROGRAMS: [&[&str]; 9] = [
    &["programs/prim.dl", "programs/graph_small.dl"],
    &["programs/spanning.dl", "programs/graph_small.dl"],
    &["programs/kruskal.dl", "programs/graph_small.dl"],
    &["programs/sort.dl"],
    &["programs/matching.dl"],
    &["programs/huffman.dl"],
    &["programs/scheduling.dl"],
    &["programs/tsp.dl"],
    &["programs/assignment.dl"],
];

/// Everything that must be invariant under the analysis switch, plus
/// the one counter that is allowed to move.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    canonical: String,
    chosen: Vec<ChosenRecord>,
    snapshot: Snapshot,
}

fn compile_group(files: &[&str]) -> gbc_core::Compiled {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut source = String::new();
    for f in files {
        let path = format!("{root}/{f}");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        source.push_str(&text);
        source.push('\n');
    }
    let program = gbc_parser::parse_program(&source).expect("shipped program parses");
    gbc_core::compile(program).expect("shipped program compiles")
}

/// Run one group, mirroring `gbc run`: greedy when planned, generic
/// otherwise. Returns the fingerprint and the raw
/// `heap_int_fast_compares` count (zeroed inside the fingerprint).
fn run_group(files: &[&str], threads: usize, analyze: bool) -> (RunFingerprint, u64) {
    let compiled = compile_group(files);
    let edb = Database::new();
    let tel = Telemetry::enabled();
    let (db, chosen) = if compiled.has_greedy_plan() {
        let config = GreedyConfig { threads, analyze, ..GreedyConfig::default() };
        let run = compiled.run_greedy_telemetry(&edb, config, &tel).expect("greedy run");
        (run.db, run.chosen)
    } else {
        // The generic fixpoint has no analysis-gated specializations;
        // it anchors the sweep so every shipped program is covered.
        let mut fixpoint =
            gbc_engine::ChoiceFixpoint::new(compiled.expanded(), &edb).expect("fixpoint");
        fixpoint.set_telemetry(tel.clone());
        fixpoint.run(&mut gbc_engine::DeterministicFirst).expect("fixpoint run");
        let chosen = gbc_core::verify::records_from_engine(&fixpoint, compiled.expanded());
        (fixpoint.into_database(), chosen)
    };
    let mut snapshot = tel.snapshot();
    let int_fast = snapshot.heap_int_fast_compares;
    snapshot.heap_int_fast_compares = 0;
    (RunFingerprint { canonical: db.canonical_form(), chosen, snapshot }, int_fast)
}

#[test]
fn analysis_specializations_change_nothing_observable() {
    for files in PROGRAMS {
        for threads in [1, 4] {
            let (on, _) = run_group(files, threads, true);
            let (off, off_fast) = run_group(files, threads, false);
            assert!(!on.canonical.is_empty(), "{files:?} produced no facts");
            assert_eq!(
                on, off,
                "{files:?} diverged between analysis on/off at {threads} thread(s)"
            );
            assert_eq!(
                off_fast, 0,
                "{files:?}: analysis off must never take the Int heap fast path"
            );
        }
    }
}

#[test]
fn int_cost_heap_engages_on_integer_cost_programs() {
    for files in [&["programs/prim.dl", "programs/graph_small.dl"][..], &["programs/sort.dl"][..]] {
        let (_, int_fast) = run_group(files, 1, true);
        assert!(
            int_fast > 0,
            "{files:?}: cost column is provably int, the fast heap should engage"
        );
    }
}

#[test]
fn no_analyze_env_var_flips_the_default() {
    // The env var is read at `GreedyConfig::default()` time; exercise
    // both explicit values instead of mutating the process environment
    // (tests run concurrently).
    let on = GreedyConfig { analyze: true, ..GreedyConfig::default() };
    let off = GreedyConfig { analyze: false, ..GreedyConfig::default() };
    assert!(on.analyze && !off.analyze);
    assert_eq!(on.max_steps, off.max_steps);
}
