//! # gbc-storage
//!
//! Storage structures for the Greedy-by-Choice engine:
//!
//! * [`tuple::Row`] — immutable, cheaply-clonable fact tuples;
//! * [`relation::Relation`] — insertion-ordered duplicate-free fact sets
//!   with lazily built, incrementally maintained hash indices
//!   ([`index::Index`]) on arbitrary column subsets;
//! * [`database::Database`] — the fact store mapping predicate symbols
//!   to relations;
//! * [`heap::IndexedHeap`] — a binary heap with stable handles
//!   supporting `update`/`remove` (the decrease-key primitive behind the
//!   congruence replacement of Section 6);
//! * [`rql::Rql`] — the paper's **D_r = (R_r, Q_r, L_r)** structure: a
//!   priority queue of candidate facts with one representative per
//!   *r-congruence* class, the used set `L_r`, and the redundant set
//!   `R_r`. Insertion and retrieve-least are `O(log |Q|)`;
//! * [`provenance::ProvenanceArena`] — an optional derivation record
//!   (rule id, γ step, parent rows, choice commits and rejections) the
//!   executors populate when one is attached to the [`Database`].

pub mod database;
pub mod dictionary;
pub mod fx;
pub mod heap;
pub mod index;
pub mod provenance;
pub mod relation;
pub mod rql;
pub mod tuple;

pub use database::Database;
pub use dictionary::{dict_stats, DictStats, Dictionary, DictionaryFull, DICT_MISS};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use heap::{Handle, IndexedHeap};
pub use provenance::{ChoiceCommit, ChoiceRejection, Derivation, ProvenanceArena, NO_GOAL};
pub use relation::{ColumnBuf, Relation, RowsView};
pub use rql::{Rql, RqlOutcome};
pub use tuple::Row;
