//! Theorem 1 validation: "every set of facts produced by the Choice
//! Fixpoint is a stable model".
//!
//! Given a run of either executor, reconstruct the model of the fully
//! rewritten (negative) program — the run's database plus the
//! `chosen_i` facts it committed, completed with the derived
//! `diffchoice_*` and `better_*` relations — and hand it to the
//! Gelfond–Lifschitz checker of `gbc-engine`.

use gbc_ast::{Program, Rule};
use gbc_storage::{Database, Row};

use crate::error::CoreError;
use crate::exec::{ChosenRecord, GreedyRun};
use crate::rewrite::rewrite_full;

/// Check that `run` is a stable model of `program ∪ edb`.
///
/// `program` is the *original* program (with `choice`/`least`/`next`);
/// the rewriting to negation happens here. `run.chosen` must carry the
/// committed choices (both executors record them).
pub fn verify_stable_model(
    program: &Program,
    edb: &Database,
    run: &GreedyRun,
) -> Result<bool, CoreError> {
    let fr = rewrite_full(program)?;

    // Choice-rule ordinals: order of appearance among choice rules of
    // the expanded program — which is the original rule order filtered,
    // since expansion rewrites rules in place.
    let expanded = crate::rewrite::next::expand_next(program)?;
    let choice_rule_indices: Vec<usize> =
        expanded.rules.iter().enumerate().filter(|(_, r)| r.has_choice()).map(|(i, _)| i).collect();

    // M₀ = run database + chosen facts.
    let mut m0 = run.db.clone();
    for rec in &run.chosen {
        let ordinal =
            choice_rule_indices.iter().position(|&i| i == rec.rule_idx).ok_or_else(|| {
                CoreError::NotStageProgram {
                    detail: format!("chosen record for non-choice rule {}", rec.rule_idx),
                }
            })?;
        m0.insert(fr.chosen_preds[ordinal], Row::new(rec.chosen_args.clone()));
    }

    // Complete M with the auxiliary relations (diffchoice, better).
    let aux_rules: Vec<Rule> =
        fr.program.rules.iter().filter(|r| fr.aux_preds.contains(&r.head.pred)).cloned().collect();
    let m = gbc_engine::evaluate_stratified(&Program::from_rules(aux_rules), &m0)?;

    Ok(gbc_engine::is_stable_model(&fr.program, edb, &m)?)
}

/// Convenience: verify a run of the generic engine fixpoint by adapting
/// its committed-candidate log.
pub fn records_from_engine(
    fixpoint: &gbc_engine::ChoiceFixpoint,
    expanded: &Program,
) -> Vec<ChosenRecord> {
    let choice_rule_indices: Vec<usize> = expanded
        .rules
        .iter()
        .enumerate()
        .filter(|(_, r)| r.has_choice() && !r.is_fact())
        .map(|(i, _)| i)
        .collect();
    fixpoint
        .committed()
        .iter()
        .map(|c| ChosenRecord {
            rule_idx: choice_rule_indices[c.rule],
            pairs: c.choices.clone(),
            chosen_args: c.chosen_args.clone(),
        })
        .collect()
}
