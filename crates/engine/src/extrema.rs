//! In-rule `least` / `most` evaluation.
//!
//! Per the paper (Section 2), `least(C, G)` in a rule body selects,
//! among the bindings that satisfy the rest of the body, those for which
//! no other binding with the same value of the grouping terms `G` has a
//! smaller value of `C`. `most` is the dual. This is the direct
//! (non-rewritten) implementation of the negation expansion:
//!
//! ```text
//! bttm(S, C, G) <- takes(S, C, G), G > 1,
//!                  ¬(takes(S', C, G'), G' > 1, G' < G).
//! ```
//!
//! The filter runs over the *complete* set of body matches, which is why
//! rules with extrema are never focused on a delta by the seminaive
//! driver (see [`crate::seminaive`]).

use gbc_ast::{Literal, Rule, Term, Value};
use gbc_storage::{Database, Row};

use crate::bindings::Bindings;
use crate::error::EngineError;
use crate::eval::{eval_term, for_each_match, instantiate_head, Focus};
use crate::plan::{execute_base_chunked, for_each_match_plan, RulePlan};
use crate::pool::{FanoutObs, WorkerPool};

/// Collect the binding frames of every body match (cloned snapshots).
pub fn collect_matches(
    db: &Database,
    rule: &Rule,
    focus: Option<Focus<'_>>,
) -> Result<Vec<Bindings>, EngineError> {
    let mut frames = Vec::new();
    for_each_match(db, rule, focus, &mut |b| {
        frames.push(b.clone());
        Ok(true)
    })?;
    Ok(frames)
}

/// [`collect_matches`] through a precompiled plan — the hot-path
/// variant used by the choice fixpoint and the greedy executor.
pub fn collect_matches_plan(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    focus: Option<Focus<'_>>,
) -> Result<Vec<Bindings>, EngineError> {
    let mut frames = Vec::new();
    for_each_match_plan(db, None, rule, plan, focus, &mut |b| {
        frames.push(b.clone());
        Ok(true)
    })?;
    Ok(frames)
}

/// [`collect_matches_plan`] with the base plan's first scan fanned out
/// over `pool` (see [`execute_base_chunked`]): workers collect frames
/// into per-chunk buffers, merged in chunk order, so the result is
/// identical to the serial collection. Extrema evaluation is always
/// unfocused, which is what makes this fan-out applicable. Falls back
/// to the serial path when the plan has no scan to split.
pub fn collect_matches_plan_pooled(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    pool: &WorkerPool,
    obs: FanoutObs<'_>,
) -> Result<Vec<Bindings>, EngineError> {
    let chunked = execute_base_chunked::<Vec<Bindings>>(db, rule, plan, pool, obs, &|b, acc| {
        acc.push(b.clone());
        Ok(())
    })?;
    match chunked {
        Some(chunks) => Ok(chunks.into_iter().flatten().collect()),
        None => collect_matches_plan(db, rule, plan, None),
    }
}

fn eval_ground(t: &Term, b: &Bindings, rule: &Rule) -> Result<Value, EngineError> {
    eval_term(t, b).ok_or_else(|| EngineError::NonGroundHead { rule: rule.to_string() })
}

/// Apply every `least`/`most` goal of `rule` (in body order) to a set of
/// binding frames, returning the survivors.
pub fn filter_extrema(
    rule: &Rule,
    mut frames: Vec<Bindings>,
) -> Result<Vec<Bindings>, EngineError> {
    for lit in &rule.body {
        let (cost_t, group_t, is_least) = match lit {
            Literal::Least { cost, group } => (cost, group, true),
            Literal::Most { cost, group } => (cost, group, false),
            _ => continue,
        };
        // Pass 1: best cost per group value.
        let mut best: std::collections::HashMap<Vec<Value>, Value> =
            std::collections::HashMap::new();
        let mut keyed: Vec<(Vec<Value>, Value)> = Vec::with_capacity(frames.len());
        for b in &frames {
            let group: Vec<Value> =
                group_t.iter().map(|t| eval_ground(t, b, rule)).collect::<Result<_, _>>()?;
            let cost = eval_ground(cost_t, b, rule)?;
            match best.get_mut(&group) {
                Some(cur) => {
                    let better = if is_least { cost < *cur } else { cost > *cur };
                    if better {
                        *cur = cost.clone();
                    }
                }
                None => {
                    best.insert(group.clone(), cost.clone());
                }
            }
            keyed.push((group, cost));
        }
        // Pass 2: retain ties with the best cost.
        let mut keep =
            keyed.iter().map(|(g, c)| best.get(g) == Some(c)).collect::<Vec<bool>>().into_iter();
        frames.retain(|_| keep.next().unwrap_or(false));
    }
    Ok(frames)
}

/// [`filter_extrema`] with the group/cost keying pass sharded over
/// `pool`. Keying is the per-frame cost of the filter (a term walk per
/// group column plus one for the cost term); the best-per-group fold
/// and the retain stay on the caller. Workers only read frames and
/// build value keys — no interning, no counters — and shard results
/// merge in chunk order, so survivors and their order are identical to
/// the serial filter: within a group, ties all carry the *same* cost
/// value, which makes the chunk-fold of `best` order-insensitive.
pub fn filter_extrema_sharded(
    rule: &Rule,
    mut frames: Vec<Bindings>,
    pool: &WorkerPool,
) -> Result<Vec<Bindings>, EngineError> {
    if !pool.is_parallel() {
        return filter_extrema(rule, frames);
    }
    for lit in &rule.body {
        let (cost_t, group_t, is_least) = match lit {
            Literal::Least { cost, group } => (cost, group, true),
            Literal::Most { cost, group } => (cost, group, false),
            _ => continue,
        };
        let ranges = pool.chunk_ranges(frames.len());
        // Pass 1, sharded: each worker keys a contiguous frame chunk.
        type KeyedChunk = Result<Vec<(Vec<Value>, Value)>, EngineError>;
        let shards: Vec<KeyedChunk> = pool.run(ranges.len(), |ci, _| {
            if ranges.len() > 1 {
                // Fan-out workers only read frames; a single chunk
                // runs inline on the caller, whose thread must keep
                // its intern permission (debug-only guard).
                gbc_storage::dictionary::forbid_intern_on_this_thread(true);
            }
            let (lo, hi) = ranges[ci];
            frames[lo..hi]
                .iter()
                .map(|b| {
                    let group: Vec<Value> = group_t
                        .iter()
                        .map(|t| eval_ground(t, b, rule))
                        .collect::<Result<_, _>>()?;
                    Ok((group, eval_ground(cost_t, b, rule)?))
                })
                .collect()
        });
        let mut best: std::collections::HashMap<Vec<Value>, Value> =
            std::collections::HashMap::new();
        let mut keyed: Vec<(Vec<Value>, Value)> = Vec::with_capacity(frames.len());
        for shard in shards {
            for (group, cost) in shard? {
                match best.get_mut(&group) {
                    Some(cur) => {
                        let better = if is_least { cost < *cur } else { cost > *cur };
                        if better {
                            *cur = cost.clone();
                        }
                    }
                    None => {
                        best.insert(group.clone(), cost.clone());
                    }
                }
                keyed.push((group, cost));
            }
        }
        // Pass 2: retain ties with the best cost, as in the serial path.
        let mut keep =
            keyed.iter().map(|(g, c)| best.get(g) == Some(c)).collect::<Vec<bool>>().into_iter();
        frames.retain(|_| keep.next().unwrap_or(false));
    }
    Ok(frames)
}

/// Evaluate a rule that may contain extrema goals: all body matches,
/// extrema-filtered, heads instantiated (duplicates preserved — the
/// relation insert deduplicates).
pub fn eval_rule_with_extrema(db: &Database, rule: &Rule) -> Result<Vec<Row>, EngineError> {
    let frames = collect_matches(db, rule, None)?;
    let frames = filter_extrema(rule, frames)?;
    frames.iter().map(|b| instantiate_head(rule, b)).collect()
}

/// [`eval_rule_with_extrema`] through a precompiled plan.
pub fn eval_rule_with_extrema_plan(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
) -> Result<Vec<Row>, EngineError> {
    let frames = collect_matches_plan(db, rule, plan, None)?;
    let frames = filter_extrema(rule, frames)?;
    frames.iter().map(|b| instantiate_head(rule, b)).collect()
}

/// [`eval_rule_with_extrema_plan`] returning the surviving binding
/// frames alongside the head rows (aligned index-wise) — the
/// provenance path needs the frames to reconstruct parent rows.
pub fn eval_rule_with_extrema_plan_traced(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
) -> Result<(Vec<Row>, Vec<Bindings>), EngineError> {
    let frames = collect_matches_plan(db, rule, plan, None)?;
    let frames = filter_extrema(rule, frames)?;
    let rows: Vec<Row> =
        frames.iter().map(|b| instantiate_head(rule, b)).collect::<Result<_, _>>()?;
    Ok((rows, frames))
}

/// [`eval_rule_with_extrema_plan`] with the match collection fanned
/// out over `pool`. The extrema filter and head instantiation stay on
/// the calling thread — they are group-global and cheap next to the
/// join.
pub fn eval_rule_with_extrema_plan_pooled(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    pool: &WorkerPool,
    obs: FanoutObs<'_>,
) -> Result<Vec<Row>, EngineError> {
    let frames = collect_matches_plan_pooled(db, rule, plan, pool, obs)?;
    let frames = filter_extrema_sharded(rule, frames, pool)?;
    frames.iter().map(|b| instantiate_head(rule, b)).collect()
}

/// [`eval_rule_with_extrema_plan_traced`] with the match collection
/// fanned out over `pool`.
pub fn eval_rule_with_extrema_plan_traced_pooled(
    db: &Database,
    rule: &Rule,
    plan: &RulePlan,
    pool: &WorkerPool,
    obs: FanoutObs<'_>,
) -> Result<(Vec<Row>, Vec<Bindings>), EngineError> {
    let frames = collect_matches_plan_pooled(db, rule, plan, pool, obs)?;
    let frames = filter_extrema_sharded(rule, frames, pool)?;
    let rows: Vec<Row> =
        frames.iter().map(|b| instantiate_head(rule, b)).collect::<Result<_, _>>()?;
    Ok((rows, frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::term::Expr;
    use gbc_ast::{Atom, CmpOp};

    /// takes(St, Crs, G) facts from the paper's Example 1 (with grades).
    fn takes_db() -> Database {
        let mut db = Database::new();
        for (s, c, g) in
            [("andy", "engl", 4), ("mark", "engl", 2), ("ann", "math", 3), ("mark", "math", 2)]
        {
            db.insert_values("takes", vec![Value::sym(s), Value::sym(c), Value::int(g)]);
        }
        db
    }

    #[test]
    fn paper_bttm_st_example() {
        // bttm_st(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G, Crs).
        let rule = Rule::new(
            Atom::new("bttm_st", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(CmpOp::Gt, Expr::var(2), Expr::int(1)),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let mut rows = eval_rule_with_extrema(&takes_db(), &rule).unwrap();
        rows.sort();
        // Per course: engl → mark (2); math → mark (2).
        assert_eq!(
            rows,
            vec![
                Row::new(vec![Value::sym("mark"), Value::sym("engl"), Value::int(2)]),
                Row::new(vec![Value::sym("mark"), Value::sym("math"), Value::int(2)]),
            ]
        );
    }

    #[test]
    fn global_least_keeps_all_ties() {
        // m(St, Crs, G) <- takes(St, Crs, G), least(G).
        let rule = Rule::new(
            Atom::new("m", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Least { cost: Term::var(2), group: vec![] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let mut rows = eval_rule_with_extrema(&takes_db(), &rule).unwrap();
        rows.sort();
        // Global minimum grade 2 is achieved twice.
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[2] == Value::int(2)));
    }

    #[test]
    fn most_is_the_dual() {
        let rule = Rule::new(
            Atom::new("top", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Most { cost: Term::var(2), group: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let mut rows = eval_rule_with_extrema(&takes_db(), &rule).unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                Row::new(vec![Value::sym("andy"), Value::sym("engl"), Value::int(4)]),
                Row::new(vec![Value::sym("ann"), Value::sym("math"), Value::int(3)]),
            ]
        );
    }

    #[test]
    fn sequential_extrema_compose() {
        // Among per-course minima, take the course(s) with the highest
        // such minimum: least(G, Crs) then most(G).
        let rule = Rule::new(
            Atom::new("x", vec![Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(1)] },
                Literal::Most { cost: Term::var(2), group: vec![] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let rows = eval_rule_with_extrema(&takes_db(), &rule).unwrap();
        // Per-course minima are engl→2, math→2; both tie at the most step.
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn pooled_extrema_matches_serial_at_any_thread_count() {
        // least(G, Crs) over a db large enough to cross the chunking
        // threshold; the pooled result (order included) must equal the
        // serial plan evaluation at every thread count.
        let rule = Rule::new(
            Atom::new("bttm_st", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let mut db = Database::new();
        for i in 0..500i64 {
            db.insert_values(
                "takes",
                vec![Value::int(i), Value::int(i % 23), Value::int((i * 7) % 31)],
            );
        }
        let plan = RulePlan::compile(&rule).unwrap();
        let serial = eval_rule_with_extrema_plan(&db, &rule, &plan).unwrap();
        let (serial_rows, serial_frames) =
            eval_rule_with_extrema_plan_traced(&db, &rule, &plan).unwrap();
        assert_eq!(serial_rows, serial);
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let pooled =
                eval_rule_with_extrema_plan_pooled(&db, &rule, &plan, &pool, FanoutObs::default())
                    .unwrap();
            assert_eq!(pooled, serial, "threads {threads}");
            let (rows, frames) = eval_rule_with_extrema_plan_traced_pooled(
                &db,
                &rule,
                &plan,
                &pool,
                FanoutObs::default(),
            )
            .unwrap();
            assert_eq!(rows, serial, "traced rows, threads {threads}");
            assert_eq!(frames, serial_frames, "traced frames, threads {threads}");
        }
    }

    #[test]
    fn sharded_filter_matches_serial_filter_at_any_thread_count() {
        // Composition of two extrema over enough frames to cross the
        // chunking threshold; survivors (order included) must be
        // byte-identical to the serial filter.
        let rule = Rule::new(
            Atom::new("x", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(1)] },
                Literal::Most { cost: Term::var(2), group: vec![] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let mut db = Database::new();
        for i in 0..700i64 {
            db.insert_values(
                "takes",
                vec![Value::int(i), Value::int(i % 19), Value::int((i * 11) % 29)],
            );
        }
        let plan = RulePlan::compile(&rule).unwrap();
        let frames = collect_matches_plan(&db, &rule, &plan, None).unwrap();
        let serial = filter_extrema(&rule, frames.clone()).unwrap();
        assert!(!serial.is_empty());
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let sharded = filter_extrema_sharded(&rule, frames.clone(), &pool).unwrap();
            assert_eq!(sharded, serial, "threads {threads}");
        }
    }

    #[test]
    fn empty_match_set_survives() {
        let rule = Rule::new(
            Atom::new("m", vec![Term::var(0)]),
            vec![
                Literal::pos("nothing", vec![Term::var(0)]),
                Literal::Least { cost: Term::var(0), group: vec![] },
            ],
            vec!["X".into()],
        );
        let rows = eval_rule_with_extrema(&Database::new(), &rule).unwrap();
        assert!(rows.is_empty());
    }
}
