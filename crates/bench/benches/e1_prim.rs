//! E1 — Section 6, "Prim's Algorithm: Complexity of Example 4".
//!
//! Declarative Prim (alternating stage-choice fixpoint over the (R,Q,L)
//! structure) versus classical binary-heap Prim, on connected random
//! graphs across sizes. The paper's claim: `O(e log e)` declarative vs
//! `O(e log n)` classical — same shape, constant-factor gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbc_baselines::prim::prim_mst;
use gbc_greedy::{prim, workload};

fn bench_prim(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_prim");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[128usize, 256, 512, 1024] {
        let g = workload::connected_graph(n, 3 * n, 1_000_000, 42);
        let e = g.num_edges() as u64;
        group.throughput(Throughput::Elements(e));

        group.bench_with_input(BenchmarkId::new("declarative_rql", n), &g, |b, g| {
            let (compiled, edb) = prim::prepared(g, 0);
            b.iter(|| {
                let run = compiled.run_greedy(&edb).unwrap();
                assert_eq!(run.stats.gamma_steps as usize, g.n - 1);
                run.stats.gamma_steps
            });
        });

        group.bench_with_input(BenchmarkId::new("classical_heap", n), &g, |b, g| {
            b.iter(|| {
                let tree = prim_mst(g.n, &g.edges, 0);
                assert_eq!(tree.len(), g.n - 1);
                tree.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prim);
criterion_main!(benches);
