//! # gbc-ast
//!
//! Abstract syntax for the Datalog dialect of *Greedy by Choice*
//! (Greco, Zaniolo, Ganguly — PODS 1992).
//!
//! The dialect is plain Datalog extended with the paper's meta-level
//! constructs:
//!
//! * [`Literal::Choice`] — `choice(X, Y)`: the functional dependency
//!   `X → Y` must hold in the model (Section 2 of the paper);
//! * [`Literal::Least`] / [`Literal::Most`] — extrema goals
//!   `least(C, G)` / `most(C, G)` selecting, among the bindings that
//!   satisfy the rest of the body, those with the minimal (maximal)
//!   cost `C` per value of the grouping terms `G`;
//! * [`Literal::Next`] — `next(I)`: `I` is a *stage variable*, a fresh
//!   stage number minted once per committed head (Section 3);
//! * negated atoms and arithmetic comparisons.
//!
//! Values ([`value::Value`]) include function symbols (the Huffman
//! program of Example 6 builds `t(X, Y)` tree terms), so the universe is
//! a genuine Herbrand universe, not just flat constants.
//!
//! This crate is purely syntactic: parsing lives in `gbc-parser`,
//! semantics in `gbc-engine` and `gbc-core`.

pub mod diag;
pub mod error;
pub mod literal;
pub mod pretty;
pub mod program;
pub mod rule;
pub mod span;
pub mod symbol;
pub mod term;
pub mod value;

pub use diag::{Diagnostic, Label, Severity};
pub use error::AstError;
pub use literal::{Atom, CmpOp, Literal};
pub use program::Program;
pub use rule::Rule;
pub use span::{LiteralSpans, RuleSpans, SourceMap, Span};
pub use symbol::Symbol;
pub use term::{Expr, Term, VarId};
pub use value::Value;
