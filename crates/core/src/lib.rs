//! # gbc-core — *Greedy by Choice*
//!
//! The primary contribution of Greco, Zaniolo & Ganguly's PODS 1992
//! paper, as a Rust library:
//!
//! * [`rewrite`] — the meta-level rewritings that give `next`, `choice`
//!   and `least`/`most` a first-order, stable-model semantics;
//! * [`analysis`] — compile-time recognition of **stage-stratified**
//!   programs (Section 4): stage-predicate inference, difference-
//!   constraint checking of the strict/weak stage inequalities, clique
//!   classification;
//! * [`exec`] — the **Alternating Stage-Choice Fixpoint** executor over
//!   the (R, Q, L) priority structures of Section 6, delivering
//!   procedural-grade asymptotics for declarative greedy programs;
//! * [`verify`] — Theorem 1 validation: runs are checked to be stable
//!   models of the rewritten negative program (Gelfond–Lifschitz).
//!
//! The one-stop entry point is [`compile`]:
//!
//! ```
//! use gbc_core::{compile, ProgramClass};
//! use gbc_storage::Database;
//! use gbc_ast::Value;
//!
//! let program = gbc_parser::parse_program(
//!     "sp(nil, 0, 0).
//!      sp(X, C, I) <- next(I), p(X, C), least(C, I).",
//! ).unwrap();
//! let compiled = compile(program).unwrap();
//! assert_eq!(*compiled.class(), ProgramClass::StageStratified { alternating: true });
//!
//! let mut edb = Database::new();
//! for (x, c) in [("b", 30), ("a", 10), ("c", 20)] {
//!     edb.insert_values("p", vec![Value::sym(x), Value::int(c)]);
//! }
//! let run = compiled.run(&edb).unwrap();
//! // sp ranks tuples by cost: stage 1 = a(10), 2 = c(20), 3 = b(30).
//! let sp = run.db.facts_of(gbc_ast::Symbol::intern("sp"));
//! assert_eq!(sp.len(), 4); // exit fact + 3 ranked tuples
//! ```

pub mod analysis;
pub mod diag;
pub mod error;
pub mod exec;
pub mod explain;
pub mod rewrite;
pub mod verify;

pub use analysis::{
    classify, Analysis, AnalyzeReport, ProgramClass, StageViolation, ANALYSIS_SCHEMA_VERSION,
};
pub use diag::{check_program, diagnostics_to_json, CheckReport, DIAG_SCHEMA_VERSION};
pub use error::CoreError;
pub use exec::{ChosenRecord, GreedyConfig, GreedyRun, GreedyStats};
pub use rewrite::{rewrite_full, FullRewrite};
pub use verify::verify_stable_model;

use gbc_ast::Program;
use gbc_engine::{ChoiceFixpoint, ChoiceFixpointConfig, DeterministicFirst};
use gbc_storage::Database;
use gbc_telemetry::Telemetry;

/// A compiled program: validated, analysed, `next`-expanded, and — when
/// it is stage-stratified and its next rules fit the Section 6 template
/// — equipped with a greedy execution plan.
#[derive(Clone, Debug)]
pub struct Compiled {
    program: Program,
    expanded: Program,
    analysis: Analysis,
    plans: Vec<exec::NextPlan>,
    plan_error: Option<String>,
}

/// Validate, classify and plan `program`.
pub fn compile(program: Program) -> Result<Compiled, CoreError> {
    program.validate()?;
    let analysis = classify(&program);
    let expanded = rewrite::next::expand_next(&program)?;
    let (plans, plan_error) = match &analysis.class {
        ProgramClass::StageStratified { .. } => {
            match exec::build_plans(&program, &expanded, &analysis.stages) {
                Ok(p) => (p, None),
                Err(e) => (Vec::new(), Some(e.to_string())),
            }
        }
        other => (Vec::new(), Some(format!("not stage-stratified (class {})", other.summary()))),
    };
    Ok(Compiled { program, expanded, analysis, plans, plan_error })
}

impl Compiled {
    /// The original program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The `next`-expanded program (choice/extrema intact).
    pub fn expanded(&self) -> &Program {
        &self.expanded
    }

    /// The analysis result.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// The program class.
    pub fn class(&self) -> &ProgramClass {
        &self.analysis.class
    }

    /// Does a greedy (Section 6) plan exist?
    pub fn has_greedy_plan(&self) -> bool {
        self.plan_error.is_none()
    }

    /// Why no greedy plan exists, when it doesn't.
    pub fn plan_error(&self) -> Option<&str> {
        self.plan_error.as_deref()
    }

    /// The whole-program analysis report (`gbc analyze`): column types,
    /// reachability/dead-rule facts, and the executor specializations
    /// each greedy plan would receive.
    pub fn analyze_report(&self) -> AnalyzeReport {
        analysis::analyze_program(&self.program, &self.analysis.class, &self.plans)
    }

    /// Run with the greedy executor (errors when no plan exists).
    pub fn run_greedy(&self, edb: &Database) -> Result<GreedyRun, CoreError> {
        self.run_greedy_with(edb, GreedyConfig::default())
    }

    /// [`Compiled::run_greedy`] with explicit limits.
    pub fn run_greedy_with(
        &self,
        edb: &Database,
        config: GreedyConfig,
    ) -> Result<GreedyRun, CoreError> {
        self.run_greedy_telemetry(edb, config, &Telemetry::default())
    }

    /// [`Compiled::run_greedy_with`] under an explicit [`Telemetry`]
    /// handle: counters, phase timers and the trace sink are threaded
    /// through every executor layer. The whole executor run is charged
    /// to the `run` phase (its internals appear as `run/...` children).
    pub fn run_greedy_telemetry(
        &self,
        edb: &Database,
        config: GreedyConfig,
        tel: &Telemetry,
    ) -> Result<GreedyRun, CoreError> {
        if let Some(e) = &self.plan_error {
            return Err(CoreError::NoGreedyPlan { detail: e.clone() });
        }
        let mut ex = exec::GreedyExecutor::new(
            &self.program,
            &self.expanded,
            self.plans.clone(),
            edb,
            config,
        );
        ex.set_telemetry(tel.clone());
        tel.phases.time("run", || ex.run())
    }

    /// Run with the generic Choice Fixpoint (`gbc-engine`) on the
    /// expanded program — the reference (and ablation-baseline)
    /// evaluator: correct for every program that is locally stratified
    /// modulo choice, but without the (R,Q,L) asymptotics.
    pub fn run_generic(&self, edb: &Database) -> Result<GreedyRun, CoreError> {
        self.run_generic_telemetry(edb, &Telemetry::default())
    }

    /// [`Compiled::run_generic`] under an explicit [`Telemetry`] handle.
    pub fn run_generic_telemetry(
        &self,
        edb: &Database,
        tel: &Telemetry,
    ) -> Result<GreedyRun, CoreError> {
        let mut fixpoint =
            ChoiceFixpoint::with_config(&self.expanded, edb, ChoiceFixpointConfig::default())?;
        fixpoint.set_telemetry(tel.clone());
        tel.phases.time("run", || fixpoint.run(&mut DeterministicFirst).map(|_| ()))?;
        let chosen = verify::records_from_engine(&fixpoint, &self.expanded);
        let steps = fixpoint.gamma_steps();
        Ok(GreedyRun {
            db: fixpoint.into_database(),
            chosen,
            stats: GreedyStats { gamma_steps: steps, ..GreedyStats::default() },
            snapshot: tel.metrics.snapshot(),
            pool: None,
        })
    }

    /// Run with the best available strategy: greedy when planned,
    /// generic otherwise.
    pub fn run(&self, edb: &Database) -> Result<GreedyRun, CoreError> {
        if self.has_greedy_plan() {
            self.run_greedy(edb)
        } else {
            self.run_generic(edb)
        }
    }

    /// [`Compiled::run`] under an explicit [`Telemetry`] handle.
    pub fn run_telemetry(&self, edb: &Database, tel: &Telemetry) -> Result<GreedyRun, CoreError> {
        if self.has_greedy_plan() {
            self.run_greedy_telemetry(edb, GreedyConfig::default(), tel)
        } else {
            self.run_generic_telemetry(edb, tel)
        }
    }
}
