//! # gbc-bench
//!
//! Benchmark harness for *Greedy by Choice* (PODS 1992). The paper's
//! evaluation is its Section 6 complexity analysis; every claimed bound
//! is regenerated here, either as a Criterion bench (`benches/`) or by
//! the `experiments` binary, which prints the scaling tables recorded
//! in `EXPERIMENTS.md`.
//!
//! This library holds the shared measurement utilities: timed sweeps,
//! scaling-exponent fits, and table rendering.

pub mod measure;
pub mod table;

pub use measure::{fit_exponent, time_once, Sample};
pub use table::render_table;
