//! Stage-predicate inference (Section 4).
//!
//! A predicate defined by a `next` rule is a *stage predicate*; the head
//! position of the `next` variable is its *stage argument*. Stage-ness
//! propagates: when a rule's body contains a stage predicate, the
//! variable at its stage position is a *stage variable* of that rule;
//! stage variables are closed under arithmetic definitions (`I = I1+1`,
//! `I = max(J, K)` — the Huffman program needs the latter); and any head
//! position occupied by a stage variable makes the head predicate a
//! stage predicate at that position.

use std::collections::HashMap;
use std::fmt;

use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::{CmpOp, Literal, Program, Rule, Symbol, Term, VarId};

/// A predicate inferred with two distinct stage positions — e.g. `comp`
/// in the paper's Kruskal program (Example 8), which receives component
/// ids at one position and true stage numbers at another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageConflict {
    /// The conflicted predicate.
    pub pred: Symbol,
    /// The stage position recorded first.
    pub first: usize,
    /// The later, disagreeing position.
    pub second: usize,
}

impl fmt::Display for StageConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicate `{}` inferred with stage arguments {} and {}",
            self.pred, self.first, self.second
        )
    }
}

/// Inferred stage structure of a program.
#[derive(Clone, Debug, Default)]
pub struct StageInfo {
    /// Stage argument position per stage predicate.
    pub stage_arg: HashMap<Symbol, usize>,
    /// Predicates inferred with two distinct stage positions.
    pub conflicts: Vec<StageConflict>,
}

impl StageInfo {
    /// The stage variable of `rule`'s head, if its head predicate is an
    /// (unconflicted) stage predicate and the stage position holds a
    /// variable.
    pub fn head_stage_var(&self, rule: &Rule) -> Option<VarId> {
        let pos = *self.stage_arg.get(&rule.head.pred)?;
        match rule.head.args.get(pos) {
            Some(Term::Var(v)) => Some(*v),
            _ => None,
        }
    }

    /// The stage variables of `rule`'s body: for each positive or
    /// negated body atom over a stage predicate, the variable at its
    /// stage position, tagged with whether the atom was negated.
    pub fn body_stage_vars(&self, rule: &Rule) -> Vec<(VarId, bool)> {
        let mut out = Vec::new();
        for lit in &rule.body {
            let (atom, negated) = match lit {
                Literal::Pos(a) => (a, false),
                Literal::Neg(a) => (a, true),
                _ => continue,
            };
            let Some(&pos) = self.stage_arg.get(&atom.pred) else { continue };
            if let Some(Term::Var(v)) = atom.args.get(pos) {
                out.push((*v, negated));
            }
        }
        out
    }
}

/// Variables of `rule` that carry stage values: those at stage positions
/// of body atoms, the `next` variable, closed under arithmetic equality.
pub fn rule_stage_vars(rule: &Rule, info: &StageInfo) -> Vec<VarId> {
    let mut stage: Vec<VarId> = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Next { var } => stage.push(*var),
            Literal::Pos(a) | Literal::Neg(a) => {
                if let Some(&pos) = info.stage_arg.get(&a.pred) {
                    if let Some(Term::Var(v)) = a.args.get(pos) {
                        stage.push(*v);
                    }
                }
            }
            _ => {}
        }
    }
    // Close under V = f(stage vars) for f ∈ {+, −, max, min} (and bare
    // equality), in either orientation.
    let mut changed = true;
    while changed {
        changed = false;
        for lit in &rule.body {
            let Literal::Compare { op: CmpOp::Eq, lhs, rhs } = lit else { continue };
            for (bare, expr) in [(lhs, rhs), (rhs, lhs)] {
                let Expr::Term(Term::Var(v)) = bare else { continue };
                if stage.contains(v) {
                    continue;
                }
                if expr_is_stage(expr, &stage) {
                    stage.push(*v);
                    changed = true;
                }
            }
        }
    }
    stage.sort_unstable();
    stage.dedup();
    stage
}

/// Is every variable of `e` a stage variable, with only stage-preserving
/// operators applied?
fn expr_is_stage(e: &Expr, stage: &[VarId]) -> bool {
    match e {
        Expr::Term(Term::Var(v)) => stage.contains(v),
        Expr::Term(Term::Const(gbc_ast::Value::Int(_))) => true,
        Expr::Term(_) => false,
        Expr::Binary(op, l, r) => {
            matches!(op, ArithOp::Add | ArithOp::Sub | ArithOp::Max | ArithOp::Min)
                && expr_is_stage(l, stage)
                && expr_is_stage(r, stage)
        }
        Expr::Neg(_) => false,
    }
}

/// Infer all stage predicates of `program` to fixpoint.
pub fn infer_stages(program: &Program) -> StageInfo {
    let mut info = StageInfo::default();

    // Seed: next-rule heads.
    for rule in &program.rules {
        let Some(next_var) = rule.body.iter().find_map(|l| match l {
            Literal::Next { var } => Some(*var),
            _ => None,
        }) else {
            continue;
        };
        if let Some(pos) =
            rule.head.args.iter().position(|t| matches!(t, Term::Var(v) if *v == next_var))
        {
            record(&mut info, rule.head.pred, pos);
        }
    }

    // Propagate through rules.
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            if rule.is_fact() {
                continue;
            }
            let stage_vars = rule_stage_vars(rule, &info);
            if stage_vars.is_empty() {
                continue;
            }
            for (pos, t) in rule.head.args.iter().enumerate() {
                let Term::Var(v) = t else { continue };
                if !stage_vars.contains(v) {
                    continue;
                }
                if info.stage_arg.get(&rule.head.pred) != Some(&pos) {
                    let fresh = !info.stage_arg.contains_key(&rule.head.pred);
                    record(&mut info, rule.head.pred, pos);
                    if fresh {
                        changed = true;
                    }
                }
            }
        }
    }
    info
}

fn record(info: &mut StageInfo, pred: Symbol, pos: usize) {
    match info.stage_arg.get(&pred) {
        Some(&old) if old != pos => {
            let conflict = StageConflict { pred, first: old, second: pos };
            if !info.conflicts.contains(&conflict) {
                info.conflicts.push(conflict);
            }
        }
        Some(_) => {}
        None => {
            info.stage_arg.insert(pred, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_parser::parse_program;

    #[test]
    fn prim_stage_structure() {
        let p = parse_program(
            "prm(nil, a, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
        )
        .unwrap();
        let info = infer_stages(&p);
        assert_eq!(info.stage_arg[&Symbol::intern("prm")], 3);
        assert_eq!(info.stage_arg[&Symbol::intern("new_g")], 3);
        assert!(!info.stage_arg.contains_key(&Symbol::intern("g")));
        assert!(info.conflicts.is_empty());
    }

    #[test]
    fn huffman_stage_flows_through_max() {
        let p = parse_program(
            "h(X, C, 0) <- letter(X, C).
             h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I, least(C),
                                 choice(X, I), choice(Y, I).
             feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
                                        I = max(J, K), X != Y, C = C1 + C2.",
        )
        .unwrap();
        let info = infer_stages(&p);
        assert_eq!(info.stage_arg[&Symbol::intern("h")], 2);
        assert_eq!(
            info.stage_arg[&Symbol::intern("feasible")],
            2,
            "stage-ness must propagate through I = max(J, K)"
        );
        assert!(info.conflicts.is_empty());
    }

    #[test]
    fn kruskal_component_ids_conflict() {
        // comp0's next(K) mints component ids; comp receives them at
        // position 1 but also a true stage at position 2 → conflict,
        // flagging the program as outside the stage class (the paper
        // itself places Example 8 outside strict stage stratification).
        let p = parse_program(
            "kruskal(X, Y, C, I) <- next(I), g(X, Y, C), last_comp(X, J, I1),
                                    last_comp(Y, K, I1), J != K, I1 < I, least(C).
             last_comp(X, J, I) <- comp(X, J, I), most(I, X).
             comp(X, K, 0) <- comp0(X, K).
             comp(X, K, I) <- kruskal(A, B, C, I), last_comp(A, J, I1),
                              last_comp(B, K, I2), last_comp(X, J, I1).
             comp0(nil, 0).
             comp0(X, K) <- next(K), node(X).",
        )
        .unwrap();
        let info = infer_stages(&p);
        assert!(
            !info.conflicts.is_empty(),
            "expected a stage-argument conflict, got {:?}",
            info.stage_arg
        );
    }

    #[test]
    fn sort_program_stages() {
        let p = parse_program(
            "sp(nil, 0, 0).
             sp(X, C, I) <- next(I), p(X, C), least(C, I).",
        )
        .unwrap();
        let info = infer_stages(&p);
        assert_eq!(info.stage_arg[&Symbol::intern("sp")], 2);
        assert_eq!(info.stage_arg.len(), 1);
    }

    #[test]
    fn body_stage_vars_tag_negation() {
        let p = parse_program(
            "h(X, I) <- next(I), src(X).
             q(X, I) <- h(X, I), not h(X, J), J < I.",
        )
        .unwrap();
        let info = infer_stages(&p);
        let vars = info.body_stage_vars(&p.rules[1]);
        assert_eq!(vars.len(), 2);
        assert!(vars.iter().any(|&(_, neg)| neg));
        assert!(vars.iter().any(|&(_, neg)| !neg));
    }
}
