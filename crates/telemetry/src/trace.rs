//! Execution tracing: one event per γ decision.
//!
//! The human-readable rendering mirrors the paper's Section 3 account
//! of `next`: each committed stage prints the tuple ↔ stage pair the
//! bijection associates, each discarded candidate prints why it fell
//! to `R_r`, and flat-rule rounds print their delta sizes.

use std::sync::Mutex;

use crate::json::Json;

/// Why a popped candidate was discarded to `R_r`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscardReason {
    /// A stage comparison (`J < I`, `I = J + 1`, or another guard)
    /// failed against the new stage value.
    StaleStage,
    /// The on-the-fly `diffChoice` test failed: a choice goal's
    /// functional dependency already maps the left tuple elsewhere.
    DiffChoice,
    /// The next-expansion's `choice(W, I)` goal failed: the non-stage
    /// head projection was already committed at an earlier stage.
    StageReuse,
}

impl DiscardReason {
    /// Stable lowercase label (also used in trace lines).
    pub fn label(self) -> &'static str {
        match self {
            DiscardReason::StaleStage => "stale-stage",
            DiscardReason::DiffChoice => "diffchoice",
            DiscardReason::StageReuse => "stage-reuse",
        }
    }
}

/// One observable event in an executor run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A next rule committed `fact` as stage `stage`.
    StageCommit {
        /// Head predicate of the firing rule.
        pred: String,
        /// The committed stage index `I`.
        stage: i64,
        /// The cost the retrieve-least returned (empty when costless).
        cost: String,
        /// The inserted head fact.
        fact: String,
    },
    /// A popped candidate failed a check and moved to `R_r`.
    Discard {
        pred: String,
        reason: DiscardReason,
        /// The popped source row.
        row: String,
    },
    /// An exit choice rule fired.
    ExitCommit { pred: String, fact: String },
    /// One seminaive saturation call finished.
    FlatRound {
        /// Saturation call ordinal within the run.
        round: u64,
        /// Facts derived by the call.
        new_facts: u64,
    },
    /// A flat rule derived new facts during a saturation round.
    RuleFired {
        /// Rule id — index into the original program's rule list.
        rule: usize,
        /// Head predicate of the firing rule.
        pred: String,
        /// Fresh facts the firing inserted (post-deduplication).
        new_facts: u64,
    },
    /// One worker executed one chunk of a parallel saturation round.
    /// Only emitted from the pool's fan-out path, so serial runs never
    /// see it and their trace output stays byte-identical.
    WorkerChunk {
        /// Worker lane index (0-based).
        worker: usize,
        /// Rule id the chunk evaluated.
        rule: usize,
        /// Delta rows the chunk processed.
        items: u64,
        /// Wall-clock the chunk took, in microseconds.
        dur_us: u64,
    },
    /// One γ decision point audited its candidate pool: how many
    /// candidates were weighed and how many fell to `diffChoice` (or a
    /// stage guard) before the commit.
    ChoiceAudit {
        /// Rule id — index into the original program's rule list.
        rule: usize,
        /// Head predicate of the choice rule.
        pred: String,
        /// Candidates considered at this decision point.
        considered: u64,
        /// Candidates rejected before (or instead of) a commit.
        rejected: u64,
    },
}

impl TraceEvent {
    /// The one-line human rendering.
    pub fn render(&self) -> String {
        match self {
            TraceEvent::StageCommit { pred, stage, cost, fact } => {
                if cost.is_empty() {
                    format!("γ stage {stage:>5} ⇐ {pred}{fact}")
                } else {
                    format!("γ stage {stage:>5} ⇐ {pred}{fact}  [cost {cost}]")
                }
            }
            TraceEvent::Discard { pred, reason, row } => {
                format!("  discard [{}] {pred} ⇐ {row}", reason.label())
            }
            TraceEvent::ExitCommit { pred, fact } => format!("γ exit        ⇐ {pred}{fact}"),
            TraceEvent::FlatRound { round, new_facts } => {
                format!("Q∞ round {round:>4}: +{new_facts} facts")
            }
            TraceEvent::RuleFired { rule, pred, new_facts } => {
                format!("  rule #{rule} {pred}: +{new_facts} facts")
            }
            TraceEvent::WorkerChunk { worker, rule, items, dur_us } => {
                format!("  worker {worker} rule #{rule}: {items} rows in {dur_us}µs")
            }
            TraceEvent::ChoiceAudit { rule, pred, considered, rejected } => {
                format!("γ audit rule #{rule} {pred}: {considered} considered, {rejected} rejected")
            }
        }
    }

    /// Stable snake_case event name (the `name` of journal entries and
    /// Chrome trace events).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::StageCommit { .. } => "stage_commit",
            TraceEvent::Discard { .. } => "discard",
            TraceEvent::ExitCommit { .. } => "exit_commit",
            TraceEvent::FlatRound { .. } => "flat_round",
            TraceEvent::RuleFired { .. } => "rule_fired",
            TraceEvent::WorkerChunk { .. } => "worker_chunk",
            TraceEvent::ChoiceAudit { .. } => "choice_audit",
        }
    }

    /// Structured JSON form: every variant is an object tagged with a
    /// `"type"` field equal to [`TraceEvent::kind`].
    pub fn to_json(&self) -> Json {
        let tag = ("type", Json::Str(self.kind().to_owned()));
        match self {
            TraceEvent::StageCommit { pred, stage, cost, fact } => Json::obj(vec![
                tag,
                ("pred", Json::Str(pred.clone())),
                ("stage", Json::Int(*stage)),
                ("cost", Json::Str(cost.clone())),
                ("fact", Json::Str(fact.clone())),
            ]),
            TraceEvent::Discard { pred, reason, row } => Json::obj(vec![
                tag,
                ("pred", Json::Str(pred.clone())),
                ("reason", Json::Str(reason.label().to_owned())),
                ("row", Json::Str(row.clone())),
            ]),
            TraceEvent::ExitCommit { pred, fact } => Json::obj(vec![
                tag,
                ("pred", Json::Str(pred.clone())),
                ("fact", Json::Str(fact.clone())),
            ]),
            TraceEvent::FlatRound { round, new_facts } => Json::obj(vec![
                tag,
                ("round", Json::UInt(*round)),
                ("new_facts", Json::UInt(*new_facts)),
            ]),
            TraceEvent::RuleFired { rule, pred, new_facts } => Json::obj(vec![
                tag,
                ("rule", Json::UInt(*rule as u64)),
                ("pred", Json::Str(pred.clone())),
                ("new_facts", Json::UInt(*new_facts)),
            ]),
            TraceEvent::WorkerChunk { worker, rule, items, dur_us } => Json::obj(vec![
                tag,
                ("worker", Json::UInt(*worker as u64)),
                ("rule", Json::UInt(*rule as u64)),
                ("items", Json::UInt(*items)),
                ("dur_us", Json::UInt(*dur_us)),
            ]),
            TraceEvent::ChoiceAudit { rule, pred, considered, rejected } => Json::obj(vec![
                tag,
                ("rule", Json::UInt(*rule as u64)),
                ("pred", Json::Str(pred.clone())),
                ("considered", Json::UInt(*considered)),
                ("rejected", Json::UInt(*rejected)),
            ]),
        }
    }
}

/// An event consumer. Implementations must be shareable across the
/// executor layers, hence `&self` methods and `Send + Sync`.
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn event(&self, ev: &TraceEvent);
}

/// Renders every event to stderr, one line each.
#[derive(Debug, Default)]
pub struct StderrTrace;

impl TraceSink for StderrTrace {
    fn event(&self, ev: &TraceEvent) {
        eprintln!("{}", ev.render());
    }
}

/// Collects rendered lines in memory (tests, golden files).
#[derive(Debug, Default)]
pub struct BufferTrace {
    lines: Mutex<Vec<String>>,
}

impl BufferTrace {
    /// Empty buffer.
    pub fn new() -> BufferTrace {
        BufferTrace::default()
    }

    /// The rendered lines so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("trace buffer lock").clone()
    }
}

impl TraceSink for BufferTrace {
    fn event(&self, ev: &TraceEvent) {
        self.lines.lock().expect("trace buffer lock").push(ev.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_lines_pair_tuple_and_stage() {
        let ev = TraceEvent::StageCommit {
            pred: "prm".into(),
            stage: 3,
            cost: "7".into(),
            fact: "(0, 4, 7, 3)".into(),
        };
        let line = ev.render();
        assert!(line.contains("stage     3"));
        assert!(line.contains("prm(0, 4, 7, 3)"));
        assert!(line.contains("[cost 7]"));
    }

    #[test]
    fn discard_lines_carry_the_reason() {
        let ev = TraceEvent::Discard {
            pred: "prm".into(),
            reason: DiscardReason::DiffChoice,
            row: "(1, 2, 9)".into(),
        };
        assert!(ev.render().contains("[diffchoice]"));
    }

    #[test]
    fn every_event_serializes_with_a_type_tag() {
        let events = [
            TraceEvent::StageCommit {
                pred: "prm".into(),
                stage: 1,
                cost: String::new(),
                fact: "(0, 1, 2, 1)".into(),
            },
            TraceEvent::Discard {
                pred: "prm".into(),
                reason: DiscardReason::StaleStage,
                row: "(1, 2)".into(),
            },
            TraceEvent::ExitCommit { pred: "mst".into(), fact: "(0, 1)".into() },
            TraceEvent::FlatRound { round: 3, new_facts: 0 },
            TraceEvent::RuleFired { rule: 4, pred: "comp".into(), new_facts: 2 },
            TraceEvent::ChoiceAudit { rule: 0, pred: "kruskal".into(), considered: 7, rejected: 3 },
        ];
        for ev in &events {
            let s = ev.to_json().to_string();
            assert!(s.contains(&format!("\"type\":\"{}\"", ev.kind())), "missing type tag in {s}");
        }
    }

    #[test]
    fn audit_lines_report_both_counts() {
        let ev =
            TraceEvent::ChoiceAudit { rule: 2, pred: "kruskal".into(), considered: 9, rejected: 4 };
        let line = ev.render();
        assert!(line.contains("9 considered"));
        assert!(line.contains("4 rejected"));
        assert!(line.contains("rule #2"));
    }

    #[test]
    fn buffer_trace_collects_in_order() {
        let buf = BufferTrace::new();
        buf.event(&TraceEvent::FlatRound { round: 1, new_facts: 5 });
        buf.event(&TraceEvent::FlatRound { round: 2, new_facts: 0 });
        let lines = buf.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("+5 facts"));
        assert!(lines[1].contains("round    2"));
    }
}
