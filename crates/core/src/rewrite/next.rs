//! The `next(I)` macro-expansion (Section 3 of the paper).
//!
//! ```text
//! p(W, I) <- next(I), rest_of_body.
//! ```
//!
//! becomes
//!
//! ```text
//! p(W, I) <- rest_of_body, p(_, I1), I = I1 + 1,
//!            choice(I, W), choice(W, I).
//! ```
//!
//! The two `choice` goals make `I` a *stage variable*: each committed
//! head gets a fresh stage number, and each stage number names exactly
//! one committed head — the source of the local stratification that the
//! rest of the paper builds on.

use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::{CmpOp, Literal, Program, Rule, Term};

use crate::error::CoreError;
use crate::rewrite::fresh_var;

/// Expand every `next` goal in `program`. Non-next rules pass through
/// untouched; rule order and the numbering of pre-existing variables are
/// preserved (new variables are appended), so downstream bookkeeping can
/// correlate original and expanded rules by index.
pub fn expand_next(program: &Program) -> Result<Program, CoreError> {
    let rules = program
        .rules
        .iter()
        .map(|r| if r.has_next() { expand_rule(r) } else { Ok(r.clone()) })
        .collect::<Result<Vec<Rule>, CoreError>>()?;
    Ok(Program::from_rules(rules))
}

fn expand_rule(rule: &Rule) -> Result<Rule, CoreError> {
    let stage_var = rule
        .body
        .iter()
        .find_map(|l| match l {
            Literal::Next { var } => Some(*var),
            _ => None,
        })
        .expect("caller checked has_next");

    // The stage variable must occupy exactly one head position.
    let stage_positions: Vec<usize> = rule
        .head
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t, Term::Var(v) if *v == stage_var))
        .map(|(i, _)| i)
        .collect();
    if stage_positions.len() != 1 {
        return Err(CoreError::BadNextRule {
            rule: rule.to_string(),
            detail: format!(
                "stage variable must appear exactly once in the head (found {} occurrences)",
                stage_positions.len()
            ),
        });
    }
    let stage_pos = stage_positions[0];

    // W: the non-stage head argument terms.
    let w_terms: Vec<Term> = rule
        .head
        .args
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != stage_pos)
        .map(|(_, t)| t.clone())
        .collect();

    let mut var_names = rule.var_names.clone();
    let i1 = fresh_var(&mut var_names, "I1");

    // p(_, …, I1, …, _): anonymous at every non-stage position.
    let prev_args: Vec<Term> =
        (0..rule.head.arity())
            .map(|i| {
                if i == stage_pos {
                    Term::Var(i1)
                } else {
                    Term::Var(fresh_var(&mut var_names, "_"))
                }
            })
            .collect();

    let mut body: Vec<Literal> =
        rule.body.iter().filter(|l| !matches!(l, Literal::Next { .. })).cloned().collect();
    body.push(Literal::pos(rule.head.pred, prev_args));
    body.push(Literal::cmp(
        CmpOp::Eq,
        Expr::Term(Term::Var(stage_var)),
        Expr::binary(ArithOp::Add, Expr::Term(Term::Var(i1)), Expr::int(1)),
    ));
    body.push(Literal::Choice { left: vec![Term::Var(stage_var)], right: w_terms.clone() });
    body.push(Literal::Choice { left: w_terms, right: vec![Term::Var(stage_var)] });

    Ok(Rule::new(rule.head.clone(), body, var_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Atom;

    /// Example 5 (sorting): sp(X, C, I) <- next(I), p(X, C), least(C, I).
    fn sort_next_rule() -> Rule {
        Rule::new(
            Atom::new("sp", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::Next { var: gbc_ast::VarId(2) },
                Literal::pos("p", vec![Term::var(0), Term::var(1)]),
                Literal::Least { cost: Term::var(1), group: vec![Term::var(2)] },
            ],
            vec!["X".into(), "C".into(), "I".into()],
        )
    }

    #[test]
    fn expansion_matches_the_paper_shape() {
        let p = Program::from_rules(vec![sort_next_rule()]);
        let e = expand_next(&p).unwrap();
        let r = &e.rules[0];
        assert!(!r.has_next());
        assert_eq!(
            r.to_string(),
            "sp(X,C,I) <- p(X,C), least(C,(I)), sp(_,_2,I1), I = (I1 + 1), \
             choice((I),(X,C)), choice((X,C),(I))."
        );
        // Expanded rule is safe and the program still validates.
        assert!(e.validate().is_ok());
    }

    #[test]
    fn original_variable_ids_are_preserved() {
        let p = Program::from_rules(vec![sort_next_rule()]);
        let e = expand_next(&p).unwrap();
        let r = &e.rules[0];
        // Head still uses vars 0..2 with the original names.
        assert_eq!(&r.var_names[0], "X");
        assert_eq!(&r.var_names[1], "C");
        assert_eq!(&r.var_names[2], "I");
        assert!(r.var_names.len() > 3, "new variables appended");
    }

    #[test]
    fn non_next_rules_pass_through() {
        let flat = Rule::new(
            Atom::new("q", vec![Term::var(0)]),
            vec![Literal::pos("e", vec![Term::var(0)])],
            vec!["X".into()],
        );
        let p = Program::from_rules(vec![flat.clone()]);
        let e = expand_next(&p).unwrap();
        assert_eq!(e.rules[0], flat);
    }

    #[test]
    fn stage_var_twice_in_head_is_rejected() {
        let bad = Rule::new(
            Atom::new("p", vec![Term::var(0), Term::var(0)]),
            vec![Literal::Next { var: gbc_ast::VarId(0) }],
            vec!["I".into()],
        );
        let p = Program::from_rules(vec![bad]);
        assert!(matches!(expand_next(&p), Err(CoreError::BadNextRule { .. })));
    }

    #[test]
    fn compound_head_terms_enter_the_w_tuple() {
        // h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I.
        let r = Rule::new(
            Atom::new(
                "h",
                vec![
                    Term::Func("t".into(), vec![Term::var(0), Term::var(1)]),
                    Term::var(2),
                    Term::var(3),
                ],
            ),
            vec![
                Literal::Next { var: gbc_ast::VarId(3) },
                Literal::pos(
                    "feasible",
                    vec![
                        Term::Func("t".into(), vec![Term::var(0), Term::var(1)]),
                        Term::var(2),
                        Term::var(4),
                    ],
                ),
                Literal::cmp(CmpOp::Lt, Expr::var(4), Expr::var(3)),
            ],
            vec!["X".into(), "Y".into(), "C".into(), "I".into(), "J".into()],
        );
        let e = expand_next(&Program::from_rules(vec![r])).unwrap();
        let expanded = &e.rules[0];
        let choice_count =
            expanded.body.iter().filter(|l| matches!(l, Literal::Choice { .. })).count();
        assert_eq!(choice_count, 2);
        // W tuple holds the compound term t(X, Y) and C.
        let Some(Literal::Choice { right, .. }) = expanded
            .body
            .iter()
            .find(|l| matches!(l, Literal::Choice { left, .. } if left.len() == 1))
        else {
            panic!("missing choice(I, W)");
        };
        assert_eq!(right.len(), 2);
        assert!(matches!(&right[0], Term::Func(f, _) if f.as_str() == "t"));
    }
}
