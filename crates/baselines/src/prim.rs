//! Classical Prim with a binary heap — `O(e log n)` (the comparator in
//! the paper's "Prim's Algorithm: Complexity of Example 4").

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Edge;

/// Minimum spanning tree of the connected component of `source`,
/// returned as tree edges `(parent, child, cost)` in insertion order.
///
/// `n` is the node count; `edges` lists *both* orientations of each
/// undirected edge. Ties break on `(cost, to, from)`, matching the
/// row-order tie-breaking of the declarative executor.
pub fn prim_mst(n: usize, edges: &[Edge], source: u32) -> Vec<Edge> {
    // Adjacency lists.
    let mut adj: Vec<Vec<(u32, i64)>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.from as usize].push((e.to, e.cost));
    }

    let mut in_tree = vec![false; n];
    let mut tree = Vec::new();
    // Heap of Reverse((cost, to, from)).
    let mut heap: BinaryHeap<Reverse<(i64, u32, u32)>> = BinaryHeap::new();

    in_tree[source as usize] = true;
    for &(to, c) in &adj[source as usize] {
        heap.push(Reverse((c, to, source)));
    }
    while let Some(Reverse((c, to, from))) = heap.pop() {
        if in_tree[to as usize] {
            continue;
        }
        in_tree[to as usize] = true;
        tree.push(Edge::new(from, to, c));
        for &(next, nc) in &adj[to as usize] {
            if !in_tree[next as usize] {
                heap.push(Reverse((nc, next, to)));
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_cost;

    /// Both orientations of an undirected edge list.
    pub(crate) fn undirected(pairs: &[(u32, u32, i64)]) -> Vec<Edge> {
        pairs.iter().flat_map(|&(a, b, c)| [Edge::new(a, b, c), Edge::new(b, a, c)]).collect()
    }

    #[test]
    fn square_graph_mst() {
        // a-b:1, b-c:2, c-d:3, a-d:4 → MST cost 6.
        let edges = undirected(&[(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 4)]);
        let t = prim_mst(4, &edges, 0);
        assert_eq!(t.len(), 3);
        assert_eq!(total_cost(&t), 6);
    }

    #[test]
    fn single_node_graph() {
        let t = prim_mst(1, &[], 0);
        assert!(t.is_empty());
    }

    #[test]
    fn disconnected_component_is_ignored() {
        let edges = undirected(&[(0, 1, 1), (2, 3, 1)]);
        let t = prim_mst(4, &edges, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], Edge::new(0, 1, 1));
    }

    #[test]
    fn dense_graph_matches_known_mst() {
        // Classic CLRS-style example.
        let edges = undirected(&[
            (0, 1, 4),
            (0, 7, 8),
            (1, 2, 8),
            (1, 7, 11),
            (2, 3, 7),
            (2, 8, 2),
            (2, 5, 4),
            (3, 4, 9),
            (3, 5, 14),
            (4, 5, 10),
            (5, 6, 2),
            (6, 7, 1),
            (6, 8, 6),
            (7, 8, 7),
        ]);
        let t = prim_mst(9, &edges, 0);
        assert_eq!(t.len(), 8);
        assert_eq!(total_cost(&t), 37);
    }
}
