//! E6 — Example 6: Huffman trees.
//!
//! The declarative pick-pair program runs in `O(k log k)` on the
//! (R,Q,L) executor — the same asymptotics as the classical heap
//! construction. Optimality (equal weighted path length) is asserted in
//! tests; here we measure the constant-factor cost of declarativity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbc_baselines::huffman::huffman_tree;
use gbc_greedy::{huffman, workload};

fn bench_huffman(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_huffman");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[8usize, 16, 32, 64] {
        let w = workload::letter_freqs(k, 42);
        group.throughput(Throughput::Elements(k as u64));

        group.bench_with_input(BenchmarkId::new("declarative_rql", k), &w, |b, w| {
            let compiled = huffman::compiled();
            let edb = huffman::edb(w);
            b.iter(|| {
                let run = compiled.run_greedy(&edb).unwrap();
                run.stats.gamma_steps
            });
        });

        group.bench_with_input(BenchmarkId::new("classical_heap", k), &w, |b, w| {
            b.iter(|| huffman_tree(w).map(|t| t.weight()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_huffman);
criterion_main!(benches);
