//! The `gbc check` diagnostics engine.
//!
//! Turns every static check — validation (`GBC002`–`GBC006`), the
//! stratification and stage-stratification analysis of Section 4
//! (`GBC010`–`GBC018`), a semantic lint pass (`GBC020`–`GBC025`) and
//! the whole-program type/reachability analysis (`GBC026`–`GBC032`,
//! see [`crate::analysis::typeinfer`] and
//! [`crate::analysis::reachability`]) — into span-carrying
//! [`Diagnostic`]s that the CLI renders rustc-style or serialises as
//! JSON. The full code registry lives in [`gbc_ast::diag`].
//!
//! Severity policy: anything that makes the program unevaluable
//! (validation failures, unstratified negation) is an **error**; the
//! stage-stratification violations are **warnings**, because such
//! programs are still evaluable by the generic choice fixpoint
//! (Theorem 1) — they merely forfeit the greedy executor's complexity
//! guarantees (Theorem 3). Lints are warnings. GBC032 is a **note** —
//! it reports a fast path the planner takes, not a problem — and
//! notes never trip `--deny-warnings`.

use std::collections::HashMap;

use gbc_ast::{Diagnostic, Literal, Program, Rule, SourceMap, Symbol, Term, VarId};
use gbc_engine::plan::columnar_feed_spec;
use gbc_telemetry::json::Json;

use crate::analysis::classify::{Analysis, ProgramClass, StageViolation};
use crate::analysis::reachability::{self, ReachInfo};
use crate::analysis::stage::rule_stage_vars;
use crate::analysis::typeinfer::{self, TypeInfo};
use crate::classify;

/// Everything `gbc check` needs: the diagnostics plus the analysis they
/// were derived from (for the class/clique summary).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// All diagnostics, in registry-code order of discovery; render
    /// with [`gbc_ast::diag::render_all`] for source order.
    pub diagnostics: Vec<Diagnostic>,
    /// The classification the diagnostics were derived from.
    pub analysis: Analysis,
    /// Whole-program column types (GBC026/029/030 anchors).
    pub types: TypeInfo,
    /// Reachability/emptiness results (GBC027/028/031 anchors).
    pub reach: ReachInfo,
}

impl CheckReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        gbc_ast::diag::error_count(&self.diagnostics)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        gbc_ast::diag::warning_count(&self.diagnostics)
    }

    /// Number of note-severity diagnostics.
    pub fn notes(&self) -> usize {
        gbc_ast::diag::note_count(&self.diagnostics)
    }
}

/// Run every static check over `program`.
///
/// The program need not be pre-validated: validation failures come back
/// as diagnostics rather than errors, so a single `gbc check` pass
/// reports everything at once.
pub fn check_program(program: &Program) -> CheckReport {
    let mut diagnostics = program.diagnostics();
    let analysis = classify(program);

    match &analysis.class {
        ProgramClass::Unstratified { cycle } => {
            diagnostics.push(unstratified_diag(program, cycle));
        }
        ProgramClass::NotStageStratified { violations } => {
            for v in violations {
                diagnostics.push(violation_diag(program, v));
            }
        }
        ProgramClass::StageStratified { alternating: false } => {
            diagnostics.push(non_alternating_diag(program, &analysis));
        }
        _ => {}
    }

    lint_choice_args(program, &mut diagnostics);
    lint_extrema(program, &analysis, &mut diagnostics);
    lint_dead_predicates(program, &mut diagnostics);
    lint_singleton_vars(program, &mut diagnostics);

    let types = typeinfer::infer(program);
    let reach = reachability::analyze(program);
    lint_type_conflicts(program, &types, &mut diagnostics);
    lint_dead_rules(program, &reach, &mut diagnostics);
    lint_unreachable(program, &reach, &mut diagnostics);
    lint_stage_types(program, &analysis, &types, &mut diagnostics);
    lint_extremum_cost_types(program, &types, &mut diagnostics);
    lint_const_comparisons(program, &reach, &mut diagnostics);
    lint_fast_feed(program, &analysis, &mut diagnostics);

    CheckReport { diagnostics, analysis, types, reach }
}

/// Version of the `--diag-json` payload schema. Bump when the shape of
/// [`diagnostics_to_json`]'s output changes incompatibly; consumers
/// should check it before parsing (see DESIGN.md, "JSON schemas").
pub const DIAG_SCHEMA_VERSION: u64 = 1;

/// Serialize diagnostics as the `gbc check --diag-json` payload: an
/// object with `schema_version` and a `diagnostics` array in render
/// (source) order. Each entry carries the code, severity, message,
/// resolved labels (file/line/col/len), notes and helps; labels with
/// dummy spans are dropped, like in the renderer.
pub fn diagnostics_to_json(diags: &[Diagnostic], sm: &SourceMap) -> Json {
    Json::obj(vec![
        ("schema_version", Json::UInt(DIAG_SCHEMA_VERSION)),
        ("diagnostics", diagnostics_array(diags, sm)),
    ])
}

fn diagnostics_array(diags: &[Diagnostic], sm: &SourceMap) -> Json {
    let mut order: Vec<&Diagnostic> = diags.iter().collect();
    order.sort_by_key(|d| d.primary_span().map_or(u32::MAX, |s| s.start));
    Json::Arr(
        order
            .into_iter()
            .map(|d| {
                let labels: Vec<Json> = d
                    .labels
                    .iter()
                    .filter(|l| !l.span.is_dummy())
                    .filter_map(|l| {
                        let loc = sm.locate(l.span.start)?;
                        Some(Json::obj(vec![
                            ("file", Json::Str(loc.file)),
                            ("line", Json::UInt(u64::from(loc.line))),
                            ("col", Json::UInt(u64::from(loc.col))),
                            ("len", Json::UInt(u64::from(l.span.end.saturating_sub(l.span.start)))),
                            ("primary", Json::Bool(l.primary)),
                            ("message", Json::Str(l.message.clone())),
                        ]))
                    })
                    .collect();
                Json::obj(vec![
                    ("code", Json::Str(d.code.to_owned())),
                    (
                        "severity",
                        Json::Str(
                            match d.severity {
                                gbc_ast::Severity::Error => "error",
                                gbc_ast::Severity::Warning => "warning",
                                gbc_ast::Severity::Note => "note",
                            }
                            .to_owned(),
                        ),
                    ),
                    ("message", Json::Str(d.message.clone())),
                    ("labels", Json::Arr(labels)),
                    ("notes", Json::Arr(d.notes.iter().map(|n| Json::Str(n.clone())).collect())),
                    ("helps", Json::Arr(d.helps.iter().map(|h| Json::Str(h.clone())).collect())),
                ])
            })
            .collect(),
    )
}

/// The first rule whose head is `pred`, for anchoring predicate-level
/// diagnostics.
fn rule_defining(program: &Program, pred: Symbol) -> Option<&Rule> {
    program.rules.iter().find(|r| r.head.pred == pred)
}

/// GBC010: unstratified negation/extrema, with the cycle as a
/// predicate trace.
fn unstratified_diag(program: &Program, cycle: &[Symbol]) -> Diagnostic {
    let mut trace: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
    if let Some(first) = trace.first().cloned() {
        trace.push(first);
    }
    let mut d = Diagnostic::error(
        "GBC010",
        "negation or extrema through recursion without stage discipline",
    )
    .with_note(format!("dependency cycle: {}", trace.join(" → ")))
    .with_help(
        "break the cycle, or introduce a `next` stage so each round only \
         negates the previous stage's facts (Section 4)",
    );
    // Anchor: the rule owning the offending dependency (head of the
    // cycle with a negative or extremum edge into it).
    if let Some(head) = cycle.first() {
        let offending = program.rules.iter().find(|r| {
            r.head.pred == *head
                && (r.has_extrema() || r.negated_atoms().any(|a| cycle.contains(&a.pred)))
        });
        if let Some(r) = offending {
            d = d.with_label(r.span(), format!("`{head}` depends on itself through this rule"));
        }
    }
    d
}

/// GBC011–GBC018: one stage-stratification violation as a warning.
fn violation_diag(program: &Program, v: &StageViolation) -> Diagnostic {
    let mut d = Diagnostic::warning(v.code(), v.describe(program));
    match v {
        StageViolation::StageConflict(c) => {
            if let Some(r) = rule_defining(program, c.pred) {
                d = d.with_label(r.head_span(), format!("`{}` first defined here", c.pred));
            }
            d = d.with_note(
                "a stage predicate must carry its stage number at a single, \
                 consistent argument position (Section 4)",
            );
        }
        StageViolation::NoStageArg { pred } => {
            if let Some(r) = rule_defining(program, *pred) {
                d = d.with_label(r.head_span(), "no argument position carries the stage");
            }
            d = d.with_note(
                "every predicate of a stage clique must record the stage number \
                 minted by `next` (Section 4)",
            );
        }
        StageViolation::MixedRuleKinds { rule, .. } => {
            let r = &program.rules[*rule];
            d = d.with_label(r.span(), "second kind of recursive rule here").with_note(
                "all recursive rules defining a predicate must agree: either all \
                 mint stages via `next`, or none do (Section 4's next/flat split)",
            );
        }
        StageViolation::NextRuleNoHeadStageVar { rule } => {
            let r = &program.rules[*rule];
            d = d.with_label(r.head_span(), "stage position holds no variable here").with_note(
                "a next rule's head must hold the minted stage variable at the \
                 predicate's stage position",
            );
        }
        StageViolation::BodyStageNotLess { rule, var, .. } => {
            let r = &program.rules[*rule];
            d = d
                .with_label(
                    r.var_span(*var),
                    format!("`{}` not provably below the new stage", r.var_name(*var)),
                )
                .with_note(
                    "strict stage stratification: every body stage must be provably \
                     `<` the minted stage — add a guard like `J < I` (Section 4)",
                );
        }
        StageViolation::BadNextExtremumGroup { rule, literal, .. } => {
            let r = &program.rules[*rule];
            d = d
                .with_label(r.literal_span(*literal), "group is not the stage variable")
                .with_note(
                    "grouping an extremum by a non-stage variable re-ranks earlier \
                 stages — the paper's `least(C, _)` counter-example (Section 4)",
                );
        }
        StageViolation::FlatStageNotOrdered { rule, var, negated } => {
            let r = &program.rules[*rule];
            d = d
                .with_label(
                    r.var_span(*var),
                    format!(
                        "`{}` not provably {} the head stage",
                        r.var_name(*var),
                        if *negated { "below" } else { "at or below" }
                    ),
                )
                .with_note(
                    "flat rules may read the current stage (`≤`) but may only negate \
                     strictly earlier stages (`<`) — Section 4",
                );
        }
        StageViolation::ExtremumOverClique { rule } => {
            let r = &program.rules[*rule];
            d = d.with_label(r.span(), "extremum ranges over the clique's own facts").with_note(
                "an extremum inside a flat rule re-evaluates as stages accumulate — \
                 the Kruskal situation of Example 8, outside strict stage \
                 stratification",
            );
        }
    }
    d.with_help(
        "the program still runs under the generic choice fixpoint (Theorem 1), \
         but the greedy executor's guarantees (Theorem 3) do not apply",
    )
}

/// GBC020: stage-stratified but with recursive flat rules, so each
/// stage needs `Q^∞` (fixpoint) instead of one `Q` pass.
fn non_alternating_diag(program: &Program, analysis: &Analysis) -> Diagnostic {
    let mut d = Diagnostic::warning(
        "GBC020",
        "stage clique is not alternating: its flat rules are recursive",
    );
    for c in analysis.cliques.iter().filter(|c| c.is_stage_clique && !c.alternating) {
        if let Some(&ri) = c.flat_rules.first() {
            d = d.with_label(program.rules[ri].span(), "flat rules starting here form a cycle");
            break;
        }
    }
    d.with_note(
        "each stage must run the flat rules to fixpoint (Q^∞) instead of a \
         single pass (Section 4's alternating evaluation)",
    )
}

/// GBC021: `choice` tuple elements must be variables. Constants or
/// functor terms in a choice tuple make the functional dependency
/// trivially satisfiable or accidentally over-specific.
fn lint_choice_args(program: &Program, out: &mut Vec<Diagnostic>) {
    for r in &program.rules {
        for (li, lit) in r.body.iter().enumerate() {
            let Literal::Choice { left, right } = lit else { continue };
            for (ai, t) in left.iter().chain(right).enumerate() {
                if !matches!(t, Term::Var(_)) {
                    out.push(
                        Diagnostic::warning(
                            "GBC021",
                            format!(
                                "`choice` argument is not a variable in rule for `{}`",
                                r.head.pred
                            ),
                        )
                        .with_label(
                            r.spans
                                .as_ref()
                                .map(|s| s.literal_arg(li, ai))
                                .unwrap_or_else(|| r.literal_span(li)),
                            "expected a variable",
                        )
                        .with_note(
                            "choice((X), (Y)) declares the functional dependency X → Y \
                             over body-bound variables (Section 2)",
                        ),
                    );
                }
            }
        }
    }
}

/// GBC022 + GBC023: extremum lints. The cost of `least`/`most` must be
/// a data value, not the stage variable itself (GBC022); grouping
/// variables should be visible in the head, else the groups are
/// projected away and the extremum silently collapses (GBC023).
fn lint_extrema(program: &Program, analysis: &Analysis, out: &mut Vec<Diagnostic>) {
    for r in &program.rules {
        if !r.has_extrema() {
            continue;
        }
        let stage_vars = rule_stage_vars(r, &analysis.stages);
        let head_vars: Vec<VarId> = {
            let mut hv = Vec::new();
            for t in &r.head.args {
                t.collect_vars(&mut hv);
            }
            hv
        };
        for (li, lit) in r.body.iter().enumerate() {
            let (cost, group, kw) = match lit {
                Literal::Least { cost, group } => (cost, group, "least"),
                Literal::Most { cost, group } => (cost, group, "most"),
                _ => continue,
            };
            if r.has_next() {
                if let Term::Var(v) = cost {
                    if stage_vars.contains(v) {
                        out.push(
                            Diagnostic::warning(
                                "GBC022",
                                format!(
                                    "stage variable `{}` used as the cost of `{kw}`",
                                    r.var_name(*v)
                                ),
                            )
                            .with_label(
                                r.spans
                                    .as_ref()
                                    .map(|s| s.literal_arg(li, 0))
                                    .unwrap_or_else(|| r.literal_span(li)),
                                "this is the stage counter, not a cost",
                            )
                            .with_note(
                                "in a next rule each stage has a single stage value; \
                                 ranking by it selects nothing",
                            ),
                        );
                    }
                }
            }
            for (gi, g) in group.iter().enumerate() {
                let Term::Var(v) = g else { continue };
                if !head_vars.contains(v) {
                    out.push(
                        Diagnostic::warning(
                            "GBC023",
                            format!(
                                "`{kw}` groups by `{}`, which does not appear in the head",
                                r.var_name(*v)
                            ),
                        )
                        .with_label(
                            r.spans
                                .as_ref()
                                .map(|s| s.literal_arg(li, 1 + gi))
                                .unwrap_or_else(|| r.literal_span(li)),
                            "group variable projected away",
                        )
                        .with_note(
                            "per-group winners are indistinguishable in the result when \
                             the group is not part of the head",
                        ),
                    );
                }
            }
        }
    }
}

/// GBC024: a predicate defined only by plain (meta-free) proper rules
/// that is never read by any rule body. Fact-only predicates are
/// exempt (they are EDB-style inputs), as are heads of rules using
/// `choice`/`next`/`least`/`most` (those are the program's answers).
fn lint_dead_predicates(program: &Program, out: &mut Vec<Diagnostic>) {
    let mut referenced: Vec<Symbol> = Vec::new();
    for r in &program.rules {
        for l in &r.body {
            if let Literal::Pos(a) | Literal::Neg(a) = l {
                if !referenced.contains(&a.pred) {
                    referenced.push(a.pred);
                }
            }
        }
    }
    // pred → (has proper rule, every defining proper rule is meta-free).
    let mut defined: HashMap<Symbol, bool> = HashMap::new();
    for r in program.proper_rules() {
        let meta_free = !r.body.iter().any(Literal::is_meta);
        defined
            .entry(r.head.pred)
            .and_modify(|all_plain| *all_plain &= meta_free)
            .or_insert(meta_free);
    }
    let mut dead: Vec<Symbol> = defined
        .into_iter()
        .filter(|&(p, plain)| plain && !referenced.contains(&p))
        .map(|(p, _)| p)
        .collect();
    dead.sort();
    for p in dead {
        let r = rule_defining(program, p).expect("defined predicate has a rule");
        out.push(
            Diagnostic::warning("GBC024", format!("predicate `{p}` is defined but never used"))
                .with_label(r.head_span(), "defined here")
                .with_help("remove the rule(s), or reference the predicate somewhere"),
        );
    }
}

/// GBC025: a named variable occurring exactly once in its rule. Usually
/// a typo (`I1` vs `I`); write `_` when the position is intentionally
/// unconstrained.
fn lint_singleton_vars(program: &Program, out: &mut Vec<Diagnostic>) {
    for r in &program.rules {
        let mut occurrences: Vec<VarId> = Vec::new();
        for t in &r.head.args {
            t.collect_vars(&mut occurrences);
        }
        for l in &r.body {
            l.collect_vars(&mut occurrences);
        }
        let mut counts: HashMap<VarId, usize> = HashMap::new();
        for v in &occurrences {
            *counts.entry(*v).or_insert(0) += 1;
        }
        let mut singles: Vec<VarId> = counts
            .into_iter()
            .filter(|&(v, n)| n == 1 && !r.var_name(v).starts_with('_'))
            .map(|(v, _)| v)
            .collect();
        singles.sort_by_key(|v| v.index());
        for v in singles {
            out.push(
                Diagnostic::warning(
                    "GBC025",
                    format!(
                        "variable `{}` occurs only once in rule for `{}`",
                        r.var_name(v),
                        r.head.pred
                    ),
                )
                .with_label(r.var_span(v), "appears only here")
                .with_help("use `_` if the value is intentionally ignored"),
            );
        }
    }
}

/// GBC026: a type conflict at an interpreted position — arithmetic
/// over a provably non-integer variable, or a comparison between two
/// concretely different shapes. Only concrete-vs-concrete mismatches
/// warn: `any` (unknown EDB data) stays silent.
fn lint_type_conflicts(program: &Program, types: &TypeInfo, out: &mut Vec<Diagnostic>) {
    for c in &types.conflicts {
        let r = &program.rules[c.rule];
        let span = match (c.var, c.lit) {
            (Some(v), _) => r.var_span(v),
            (None, Some(li)) => r.literal_span(li),
            (None, None) => r.span(),
        };
        out.push(
            Diagnostic::warning(
                "GBC026",
                format!("type conflict in rule for `{}`: {}", r.head.pred, c.message),
            )
            .with_label(span, "conflicting use here")
            .with_note(
                "column types are inferred from facts and rule heads to fixpoint; \
                 run `gbc analyze` to see them",
            ),
        );
    }
}

/// GBC027: a proper rule whose body is provably unsatisfiable — it
/// reads a provably-empty predicate or carries a constant-false
/// comparison. The compiler prunes such rules from execution.
fn lint_dead_rules(program: &Program, reach: &ReachInfo, out: &mut Vec<Diagnostic>) {
    for d in &reach.dead_rules {
        let r = &program.rules[d.rule];
        let span = d.lit.map(|li| r.literal_span(li)).unwrap_or_else(|| r.span());
        out.push(
            Diagnostic::warning(
                "GBC027",
                format!("rule for `{}` can never fire: {}", r.head.pred, d.reason),
            )
            .with_label(span, "unsatisfiable because of this")
            .with_help("the rule is pruned from execution; remove it or fix its body"),
        );
    }
}

/// GBC028: a predicate that is defined *and referenced* but never
/// (transitively) feeds a program answer — derivation work spent on it
/// is wasted. Disjoint from GBC024, which requires *unreferenced*.
fn lint_unreachable(program: &Program, reach: &ReachInfo, out: &mut Vec<Diagnostic>) {
    for &p in &reach.unreachable {
        let Some(r) = rule_defining(program, p) else { continue };
        out.push(
            Diagnostic::warning("GBC028", format!("predicate `{p}` never feeds a program answer"))
                .with_label(r.head_span(), "defined here")
                .with_note(format!(
                    "the program's answers are {}",
                    reach.roots.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ")
                ))
                .with_help("remove it, or route its facts into an answer predicate"),
        );
    }
}

/// GBC029: a head term at a predicate's stage position with a concrete
/// non-integer type. Stage numbers are minted by `next`; a non-integer
/// there fails the executor's stage scan at run time.
fn lint_stage_types(
    program: &Program,
    analysis: &Analysis,
    types: &TypeInfo,
    out: &mut Vec<Diagnostic>,
) {
    for r in &program.rules {
        let Some(&pos) = analysis.stages.stage_arg.get(&r.head.pred) else { continue };
        let Some(term) = r.head.args.get(pos) else { continue };
        let Some(env) = typeinfer::final_env(program, types, r) else { continue };
        let ty = typeinfer::head_term_type(&env, term);
        if ty.base.is_concrete() && ty.base != typeinfer::Base::Int {
            out.push(
                Diagnostic::warning(
                    "GBC029",
                    format!("head of `{}` carries `{ty}` at its stage position", r.head.pred),
                )
                .with_label(
                    r.spans.as_ref().map(|s| s.head_arg(pos)).unwrap_or_else(|| r.head_span()),
                    format!("inferred type `{ty}`"),
                )
                .with_note(
                    "stage numbers are minted by `next` and must be integers; anything \
                     else fails the executor's stage scan at run time",
                ),
            );
        }
    }
}

/// GBC030: an extremum whose cost is concretely typed but not provably
/// pure `int`. The extremum still works through the dictionary's value
/// order, but forfeits the decode-free `Int` cost heap.
fn lint_extremum_cost_types(program: &Program, types: &TypeInfo, out: &mut Vec<Diagnostic>) {
    for r in &program.rules {
        if !r.has_extrema() {
            continue;
        }
        let Some(env) = typeinfer::final_env(program, types, r) else { continue };
        for (li, lit) in r.body.iter().enumerate() {
            let (cost, kw) = match lit {
                Literal::Least { cost, .. } => (cost, "least"),
                Literal::Most { cost, .. } => (cost, "most"),
                _ => continue,
            };
            let ty = typeinfer::head_term_type(&env, cost);
            if ty.base.is_concrete() && !ty.is_int() {
                out.push(
                    Diagnostic::warning(
                        "GBC030",
                        format!(
                            "`{kw}` in rule for `{}` ranks by a cost of type `{ty}`, \
                             not provably `int`",
                            r.head.pred
                        ),
                    )
                    .with_label(
                        r.spans
                            .as_ref()
                            .map(|s| s.literal_arg(li, 0))
                            .unwrap_or_else(|| r.literal_span(li)),
                        format!("cost has type `{ty}`"),
                    )
                    .with_note(
                        "the extremum still works through the dictionary's value order, \
                         but forfeits the decode-free `Int` cost heap",
                    ),
                );
            }
        }
    }
}

/// GBC031: a comparison whose two sides are ground, so its outcome is
/// known at compile time. Always-true checks are baked out of join
/// plans; always-false ones kill their rule (see GBC027).
fn lint_const_comparisons(program: &Program, reach: &ReachInfo, out: &mut Vec<Diagnostic>) {
    for c in &reach.const_comparisons {
        let r = &program.rules[c.rule];
        let outcome = if c.value { "true" } else { "false" };
        let d = Diagnostic::warning(
            "GBC031",
            format!("comparison in rule for `{}` is always {outcome}", r.head.pred),
        )
        .with_label(r.literal_span(c.lit), format!("always {outcome}"));
        out.push(if c.value {
            d.with_help("the check is baked out of the join plan; remove it from the source")
        } else {
            d.with_help("the rule can never fire; remove it")
        });
    }
}

/// GBC032 (note): a `next` rule eligible for the bindings-free feed
/// fast path — one positive source atom whose arguments are all
/// distinct variables, no negation, no comparison gating the feed
/// ahead of the stage guard, and every extremum cost / `choice`
/// element readable straight off a source column. The planner streams
/// such rules into their queues by column ids alone.
fn lint_fast_feed(program: &Program, analysis: &Analysis, out: &mut Vec<Diagnostic>) {
    if !matches!(analysis.class, ProgramClass::StageStratified { .. }) {
        return;
    }
    for r in &program.rules {
        if !r.has_next() || r.has_negation() {
            continue;
        }
        let Some(stage_var) = r.body.iter().find_map(|l| match l {
            Literal::Next { var } => Some(*var),
            _ => None,
        }) else {
            continue;
        };
        let atoms: Vec<_> = r.positive_atoms().collect();
        if atoms.len() != 1 {
            continue;
        }
        let vs: Vec<VarId> = atoms[0].vars();
        let mut eligible = true;
        let mut pre_checks: Vec<Literal> = Vec::new();
        for lit in &r.body {
            match lit {
                Literal::Compare { .. } => {
                    let lvars = lit.vars();
                    if lvars.iter().any(|v| *v != stage_var && !vs.contains(v)) {
                        eligible = false;
                    } else if !lvars.contains(&stage_var) {
                        // Stage-free comparisons gate the feed per row;
                        // they qualify iff they compile to columnar
                        // checks (below).
                        pre_checks.push(lit.clone());
                    }
                }
                Literal::Least { cost, .. } | Literal::Most { cost, .. } if !matches!(cost, Term::Var(v) if vs.contains(v)) =>
                {
                    eligible = false;
                }
                Literal::Choice { left, right } => {
                    for t in left.iter().chain(right) {
                        if !matches!(t, Term::Var(v) if vs.contains(v) || *v == stage_var) {
                            eligible = false;
                        }
                    }
                }
                _ => {}
            }
        }
        // Mirror of the executor's eligibility test: the source args
        // and the stage-free comparisons must compile to the columnar
        // check sequence the feed kernel evaluates per row.
        if !eligible || columnar_feed_spec(&atoms[0].args, &pre_checks).is_none() {
            continue;
        }
        let si = r.body.iter().position(|l| matches!(l, Literal::Pos(_))).expect("source atom");
        out.push(
            Diagnostic::note(
                "GBC032",
                format!("rule for `{}` feeds its queue without binding frames", r.head.pred),
            )
            .with_label(r.literal_span(si), "rows stream into the queue by column ids alone")
            .with_note(
                "every source argument and feed-gating comparison reduces to \
                 column reads and baked constants, so the planner skips \
                 per-row `Bindings` entirely and streams rows by id",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_parser::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let p = parse_program(src).unwrap();
        let mut codes: Vec<&'static str> =
            check_program(&p).diagnostics.iter().map(|d| d.code).collect();
        codes.sort();
        codes.dedup();
        codes
    }

    #[test]
    fn clean_programs_produce_no_diagnostics() {
        let report = check_program(
            &parse_program(
                "prm(nil, a, 0, 0).
                 prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
                 new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
            )
            .unwrap(),
        );
        assert_eq!(report.errors(), 0, "{:#?}", report.diagnostics);
        assert_eq!(report.warnings(), 0, "{:#?}", report.diagnostics);
        // The prim-style next rule earns the fast-feed note, nothing else.
        assert!(report.diagnostics.iter().all(|d| d.code == "GBC032"), "{:#?}", report.diagnostics);
        assert_eq!(report.analysis.class, ProgramClass::StageStratified { alternating: true });
    }

    #[test]
    fn arithmetic_over_symbols_warns_gbc026() {
        let cs = codes("p(a).\nr(Y, I) <- next(I), p(X), Y = X + 1, least(Y, I).");
        assert!(cs.contains(&"GBC026"), "{cs:?}");
    }

    #[test]
    fn provably_empty_body_warns_gbc027() {
        let cs = codes("a(X) <- b(X).\nb(X) <- a(X).\nseed(1).\nout(X) <- a(X), seed(X).");
        assert!(cs.contains(&"GBC027"), "{cs:?}");
    }

    #[test]
    fn predicate_off_the_answer_path_warns_gbc028() {
        let cs = codes(
            "src(1). src(2).
             out(X, I) <- next(I), src(X), least(X, I).
             helper(X) <- src(X), X > 1.
             aux(X) <- helper(X).",
        );
        assert!(cs.contains(&"GBC028"), "{cs:?}");
    }

    #[test]
    fn non_integer_stage_position_warns_gbc029() {
        let cs = codes(
            "seed(0). src(1).
             h(X, I) <- next(I), src(X), least(X, I).
             h(X, first) <- seed(X).",
        );
        assert!(cs.contains(&"GBC029"), "{cs:?}");
    }

    #[test]
    fn symbolic_extremum_cost_warns_gbc030() {
        let cs = codes(
            "item(apple). item(banana).
             pick(X, I) <- next(I), item(X), least(X, I).",
        );
        assert!(cs.contains(&"GBC030"), "{cs:?}");
        // An integer cost is silent.
        let clean = codes(
            "item(a, 3). item(b, 1).
             pick(X, C, I) <- next(I), item(X, C), least(C, I).",
        );
        assert!(!clean.contains(&"GBC030"), "{clean:?}");
    }

    #[test]
    fn constant_comparison_warns_gbc031() {
        let cs = codes(
            "p(1). p(2).
             q(X, I) <- next(I), p(X), 1 < 2, least(X, I).",
        );
        assert!(cs.contains(&"GBC031"), "{cs:?}");
    }

    #[test]
    fn fast_feed_eligibility_notes_gbc032() {
        let noted = codes(
            "p(pear, 30). p(apple, 10).
             sp(X, C, I) <- next(I), p(X, C), least(C, I).",
        );
        assert!(noted.contains(&"GBC032"), "{noted:?}");
        // Stage-free comparisons over source columns and constants
        // compile to columnar checks — still bindings-free.
        let precheck = codes(
            "p(pear, 30). p(apple, 10).
             sp(X, C, I) <- next(I), p(X, C), C > 15, least(C, I).",
        );
        assert!(precheck.contains(&"GBC032"), "{precheck:?}");
        // Arithmetic over a source variable needs a binding frame: the
        // note stays silent.
        let silent = codes(
            "p(pear, 30). p(apple, 10).
             sp(X, C, I) <- next(I), p(X, C), C + 1 > 15, least(C, I).",
        );
        assert!(!silent.contains(&"GBC032"), "{silent:?}");
    }

    #[test]
    fn unstratified_negation_is_gbc010_with_trace() {
        let p = parse_program("win(X) <- move(X, Y), not win(Y).").unwrap();
        let report = check_program(&p);
        let d = report.diagnostics.iter().find(|d| d.code == "GBC010").expect("GBC010");
        assert_eq!(d.severity, gbc_ast::Severity::Error);
        assert!(d.notes.iter().any(|n| n.contains("win → win")), "{:?}", d.notes);
    }

    #[test]
    fn missing_guard_warns_gbc015() {
        assert!(codes(
            "prm(nil, a, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), least(C, I), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C)."
        )
        .contains(&"GBC015"));
    }

    #[test]
    fn papers_least_underscore_counterexample_warns_gbc016() {
        // least(C, X) groups by a non-stage variable.
        assert!(codes(
            "prm(nil, a, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, X), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C)."
        )
        .contains(&"GBC016"));
    }

    #[test]
    fn choice_over_constants_warns_gbc021() {
        assert!(codes("p(X, I) <- next(I), q(X), choice(a, X).").contains(&"GBC021"));
    }

    #[test]
    fn stage_cost_warns_gbc022() {
        assert!(codes("sp(X, I) <- next(I), p(X), least(I).").contains(&"GBC022"));
    }

    #[test]
    fn projected_group_warns_gbc023() {
        assert!(codes("sp(C, I) <- next(I), p(X, C), least(C, (X, I)).").contains(&"GBC023"));
    }

    #[test]
    fn dead_predicate_warns_gbc024_but_facts_are_exempt() {
        let cs = codes("e(a, b).\ntc(X, Y) <- e(X, Y).");
        assert!(cs.contains(&"GBC024"), "{cs:?}"); // tc unused
        let clean = codes("e(a, b).\ntc(X, Y) <- e(X, Y), least(Y).");
        assert!(!clean.contains(&"GBC024"), "{clean:?}"); // extremum head = answer
    }

    #[test]
    fn singleton_variable_warns_gbc025() {
        let cs = codes("p(X) <- q(X, Y), least(X).");
        assert!(cs.contains(&"GBC025"), "{cs:?}");
        let clean = codes("p(X) <- q(X, _), least(X).");
        assert!(!clean.contains(&"GBC025"), "{clean:?}");
    }

    #[test]
    fn validation_failures_are_collected_not_fatal() {
        // Arity clash + unsafe variable in one pass.
        let cs = codes("p(a).\np(a, b).\nq(X) <- r(Y).");
        assert!(cs.contains(&"GBC002"), "{cs:?}");
        assert!(cs.contains(&"GBC003"), "{cs:?}");
    }
}
