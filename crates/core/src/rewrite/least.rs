//! The `least`/`most` → negation rewriting (Section 2).
//!
//! ```text
//! r: h(T) <- B, least(C, G).
//! ```
//!
//! becomes
//!
//! ```text
//! h(T)         <- B, ¬better_r(G, C).
//! better_r(G, C) <- B, B′, C′ < C.          (B′ = B with fresh variables,
//!                                            G′ componentwise equal to G)
//! ```
//!
//! `better_r(G, C)` witnesses "some other instantiation of the body has
//! the same group but a smaller cost" — the negated conjunction the
//! paper writes inline (it cannot be a single safe rule, hence the
//! auxiliary predicate). `most` flips the comparison. Multiple extrema
//! in one rule are applied sequentially: each later extremum's body
//! copies include the earlier `¬better` filters, matching the engine's
//! sequential filter semantics.

use std::collections::HashMap;

use gbc_ast::term::Expr;
use gbc_ast::{CmpOp, Literal, Program, Rule, Symbol, Term, VarId};

use crate::rewrite::{fresh_pred, fresh_var};

/// Output of the extrema rewriting.
#[derive(Clone, Debug)]
pub struct LeastRewrite {
    /// The rewritten program (extrema-free).
    pub program: Program,
    /// Head symbols of the auxiliary `better_*` rules.
    pub better_preds: Vec<Symbol>,
}

/// Rewrite every `least`/`most` goal in `program`.
pub fn rewrite_least(program: &Program) -> LeastRewrite {
    let mut taken: Vec<Symbol> =
        program.signature().map(|sig| sig.keys().copied().collect()).unwrap_or_default();
    let mut rules = Vec::new();
    let mut aux = Vec::new();
    let mut better_preds = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        if !rule.has_extrema() {
            rules.push(rule.clone());
            continue;
        }
        rules.push(rewrite_one(rule, ri, &mut taken, &mut aux, &mut better_preds));
    }
    rules.extend(aux);
    LeastRewrite { program: Program::from_rules(rules), better_preds }
}

fn rewrite_one(
    rule: &Rule,
    ri: usize,
    taken: &mut Vec<Symbol>,
    aux: &mut Vec<Rule>,
    better_preds: &mut Vec<Symbol>,
) -> Rule {
    // Base body: everything except extrema goals.
    let base: Vec<Literal> = rule
        .body
        .iter()
        .filter(|l| !matches!(l, Literal::Least { .. } | Literal::Most { .. }))
        .cloned()
        .collect();

    // Current body accumulates ¬better goals as extrema are processed.
    let mut current = base.clone();
    let mut k = 0usize;
    for lit in &rule.body {
        let (cost, group, is_least) = match lit {
            Literal::Least { cost, group } => (cost, group, true),
            Literal::Most { cost, group } => (cost, group, false),
            _ => continue,
        };
        let better = fresh_pred(&format!("better_{ri}_{k}"), taken);
        better_preds.push(better);
        k += 1;

        // better(G, C) <- current, current′, C′ cmp C, G′ = G.
        let mut var_names = rule.var_names.clone();
        let mut prime: HashMap<VarId, VarId> = HashMap::new();
        let mut all_vars = Vec::new();
        for l in &current {
            l.collect_vars(&mut all_vars);
        }
        all_vars.sort_unstable();
        all_vars.dedup();
        for &v in &all_vars {
            let hint = format!("{}_c", rule.var_name(v));
            prime.insert(v, fresh_var(&mut var_names, &hint));
        }
        let copy: Vec<Literal> = current.iter().map(|l| rename_literal(l, &prime)).collect();

        let mut head_args: Vec<Term> = group.clone();
        head_args.push(cost.clone());

        let mut body = current.clone();
        body.extend(copy);
        // Group equality, componentwise.
        for g in group {
            body.push(Literal::cmp(
                CmpOp::Eq,
                Expr::Term(rename_term(g, &prime)),
                Expr::Term(g.clone()),
            ));
        }
        // Cost comparison: a strictly better instantiation exists.
        let cmp = if is_least { CmpOp::Lt } else { CmpOp::Gt };
        body.push(Literal::cmp(
            cmp,
            Expr::Term(rename_term(cost, &prime)),
            Expr::Term(cost.clone()),
        ));
        aux.push(Rule::new(gbc_ast::Atom::new(better, head_args.clone()), body, var_names));

        current.push(Literal::neg(better, head_args));
    }

    Rule::new(rule.head.clone(), current, rule.var_names.clone())
}

fn rename_term(t: &Term, prime: &HashMap<VarId, VarId>) -> Term {
    match t {
        Term::Var(v) => Term::Var(prime.get(v).copied().unwrap_or(*v)),
        Term::Const(c) => Term::Const(c.clone()),
        Term::Func(f, args) => Term::Func(*f, args.iter().map(|a| rename_term(a, prime)).collect()),
    }
}

fn rename_expr(e: &Expr, prime: &HashMap<VarId, VarId>) -> Expr {
    match e {
        Expr::Term(t) => Expr::Term(rename_term(t, prime)),
        Expr::Binary(op, l, r) => {
            Expr::Binary(*op, Box::new(rename_expr(l, prime)), Box::new(rename_expr(r, prime)))
        }
        Expr::Neg(inner) => Expr::Neg(Box::new(rename_expr(inner, prime))),
    }
}

fn rename_literal(l: &Literal, prime: &HashMap<VarId, VarId>) -> Literal {
    match l {
        Literal::Pos(a) => Literal::Pos(gbc_ast::Atom::new(
            a.pred,
            a.args.iter().map(|t| rename_term(t, prime)).collect(),
        )),
        Literal::Neg(a) => Literal::Neg(gbc_ast::Atom::new(
            a.pred,
            a.args.iter().map(|t| rename_term(t, prime)).collect(),
        )),
        Literal::Compare { op, lhs, rhs } => {
            Literal::Compare { op: *op, lhs: rename_expr(lhs, prime), rhs: rename_expr(rhs, prime) }
        }
        Literal::Choice { left, right } => Literal::Choice {
            left: left.iter().map(|t| rename_term(t, prime)).collect(),
            right: right.iter().map(|t| rename_term(t, prime)).collect(),
        },
        Literal::Least { cost, group } => Literal::Least {
            cost: rename_term(cost, prime),
            group: group.iter().map(|t| rename_term(t, prime)).collect(),
        },
        Literal::Most { cost, group } => Literal::Most {
            cost: rename_term(cost, prime),
            group: group.iter().map(|t| rename_term(t, prime)).collect(),
        },
        Literal::Next { var } => Literal::Next { var: prime.get(var).copied().unwrap_or(*var) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{Atom, Value};
    use gbc_storage::Database;

    /// bttm(St, Crs, G) <- takes(St, Crs, G), G > 1, least(G, Crs).
    fn bttm_rule() -> Rule {
        Rule::new(
            Atom::new("bttm", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(CmpOp::Gt, Expr::var(2), Expr::int(1)),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        )
    }

    fn takes_edb() -> Database {
        let mut db = Database::new();
        for (s, c, g) in
            [("andy", "engl", 4), ("mark", "engl", 2), ("ann", "math", 3), ("mark", "math", 2)]
        {
            db.insert_values("takes", vec![Value::sym(s), Value::sym(c), Value::int(g)]);
        }
        db
    }

    #[test]
    fn rewritten_program_is_extrema_free_and_valid() {
        let out = rewrite_least(&Program::from_rules(vec![bttm_rule()]));
        assert!(out.program.rules.iter().all(|r| !r.has_extrema()));
        assert!(out.program.validate().is_ok(), "{}", out.program);
        assert_eq!(out.better_preds.len(), 1);
    }

    #[test]
    fn rewritten_program_computes_the_same_answers() {
        // Stratified evaluation of the rewritten program must agree with
        // the engine's direct extrema implementation.
        let direct =
            gbc_engine::extrema::eval_rule_with_extrema(&takes_edb(), &bttm_rule()).unwrap();
        let out = rewrite_least(&Program::from_rules(vec![bttm_rule()]));
        let m = gbc_engine::evaluate_stratified(&out.program, &takes_edb()).unwrap();
        let mut rewritten = m.facts_of(Symbol::intern("bttm"));
        rewritten.sort();
        let mut direct = direct;
        direct.sort();
        assert_eq!(rewritten, direct);
    }

    #[test]
    fn most_flips_the_comparison() {
        let rule = Rule::new(
            Atom::new("top", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Most { cost: Term::var(2), group: vec![] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let out = rewrite_least(&Program::from_rules(vec![rule]));
        let m = gbc_engine::evaluate_stratified(&out.program, &takes_edb()).unwrap();
        let rows = m.facts_of(Symbol::intern("top"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::int(4), "global maximum grade");
    }

    #[test]
    fn sequential_extrema_chain_their_filters() {
        // least(G, Crs) then most(G): per-course minima, then the max of those.
        let rule = Rule::new(
            Atom::new("x", vec![Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::Least { cost: Term::var(2), group: vec![Term::var(1)] },
                Literal::Most { cost: Term::var(2), group: vec![] },
            ],
            vec!["St".into(), "Crs".into(), "G".into()],
        );
        let out = rewrite_least(&Program::from_rules(vec![rule]));
        assert_eq!(out.better_preds.len(), 2);
        // The second better rule's body must reference the first better
        // predicate (negatively) — the sequential-filter semantics.
        let second = out.program.rules.iter().find(|r| r.head.pred == out.better_preds[1]).unwrap();
        let refs_first = second.negated_atoms().any(|a| a.pred == out.better_preds[0]);
        assert!(refs_first, "{second}");
    }
}
