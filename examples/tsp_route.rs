//! Greedy TSP chains (the paper's "computation of sub-optimals"): a
//! declarative Hamiltonian-path heuristic over a random set of cities,
//! compared with nearest-neighbour.
//!
//! ```sh
//! cargo run --example tsp_route
//! ```

use gbc_baselines::total_cost;
use gbc_baselines::tsp::{is_hamiltonian_path, nearest_neighbour};
use gbc_greedy::{tsp, workload};

fn main() {
    let g = workload::complete_geometric(20, 3);
    println!("{} cities, {} arcs", g.n, g.num_edges());

    let route = tsp::run_greedy(&g).expect("tsp run");
    assert!(is_hamiltonian_path(g.n, &route), "must visit every city once");

    println!("\ndeclarative greedy chain (stage order):");
    for (i, e) in route.iter().enumerate() {
        println!("  step {:>2}: city {:>2} → city {:>2}  (cost {})", i + 1, e.from, e.to, e.cost);
    }
    let decl_cost = total_cost(&route);

    let nn = nearest_neighbour(g.n, &g.edges, 0);
    println!("\ntotal cost: greedy chain {decl_cost}, nearest-neighbour {}", total_cost(&nn));
    println!("both are heuristics; neither dominates in general.");
}
