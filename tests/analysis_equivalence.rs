//! Analysis-specialization equivalence sweep — the PR 8 contract,
//! extended by PR 10: whole-program analysis (dead-rule pruning, folded
//! constants, the decode-free `Int` cost heap, the bindings-free feed)
//! and the batched γ feed kernel are pure optimizations. Every shipped
//! program must produce byte-identical results with analysis on and off
//! (`GBC_NO_ANALYZE=1` territory) and with the batch kernel on and off
//! (`GBC_NO_GAMMA_BATCH=1` territory), across worker thread counts —
//! same canonical relation dump, same chosen records, same semantic
//! counters.
//!
//! Two counters *may* differ, one per switch: `heap_int_fast_compares`
//! (the point of the Int-heap specialization) and `heap_batch_pushes`
//! (the point of the batch kernel). Both are zeroed on both sides
//! before the snapshot comparison and asserted positive/zero where the
//! switch pins them.

use gbc_core::{ChosenRecord, GreedyConfig};
use gbc_storage::Database;
use gbc_telemetry::{Snapshot, Telemetry};

/// The ci.sh observability groupings: every shipped program with the
/// EDB file(s) it runs against.
const PROGRAMS: [&[&str]; 9] = [
    &["programs/prim.dl", "programs/graph_small.dl"],
    &["programs/spanning.dl", "programs/graph_small.dl"],
    &["programs/kruskal.dl", "programs/graph_small.dl"],
    &["programs/sort.dl"],
    &["programs/matching.dl"],
    &["programs/huffman.dl"],
    &["programs/scheduling.dl"],
    &["programs/tsp.dl"],
    &["programs/assignment.dl"],
];

/// Everything that must be invariant under the analysis and batch
/// switches, plus the two counters that are allowed to move.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    canonical: String,
    chosen: Vec<ChosenRecord>,
    snapshot: Snapshot,
}

/// The raw values of the two which-path counters, zeroed inside the
/// fingerprint so the equality assertion pins everything else.
struct PathCounters {
    int_fast: u64,
    batch_pushes: u64,
}

fn compile_group(files: &[&str]) -> gbc_core::Compiled {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut source = String::new();
    for f in files {
        let path = format!("{root}/{f}");
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        source.push_str(&text);
        source.push('\n');
    }
    let program = gbc_parser::parse_program(&source).expect("shipped program parses");
    gbc_core::compile(program).expect("shipped program compiles")
}

/// Run one group, mirroring `gbc run`: greedy when planned, generic
/// otherwise.
fn run_group(
    files: &[&str],
    threads: usize,
    analyze: bool,
    gamma_batch: bool,
) -> (RunFingerprint, PathCounters) {
    let compiled = compile_group(files);
    let edb = Database::new();
    let tel = Telemetry::enabled();
    let (db, chosen) = if compiled.has_greedy_plan() {
        let config = GreedyConfig { threads, analyze, gamma_batch, ..GreedyConfig::default() };
        let run = compiled.run_greedy_telemetry(&edb, config, &tel).expect("greedy run");
        (run.db, run.chosen)
    } else {
        // The generic fixpoint has no analysis-gated specializations;
        // it anchors the sweep so every shipped program is covered.
        let mut fixpoint =
            gbc_engine::ChoiceFixpoint::new(compiled.expanded(), &edb).expect("fixpoint");
        fixpoint.set_telemetry(tel.clone());
        fixpoint.run(&mut gbc_engine::DeterministicFirst).expect("fixpoint run");
        let chosen = gbc_core::verify::records_from_engine(&fixpoint, compiled.expanded());
        (fixpoint.into_database(), chosen)
    };
    let mut snapshot = tel.snapshot();
    let raw = PathCounters {
        int_fast: snapshot.heap_int_fast_compares,
        batch_pushes: snapshot.heap_batch_pushes,
    };
    snapshot.heap_int_fast_compares = 0;
    snapshot.heap_batch_pushes = 0;
    (RunFingerprint { canonical: db.canonical_form(), chosen, snapshot }, raw)
}

#[test]
fn analysis_specializations_change_nothing_observable() {
    for files in PROGRAMS {
        for threads in [1, 4] {
            let (on, _) = run_group(files, threads, true, true);
            let (off, off_raw) = run_group(files, threads, false, true);
            assert!(!on.canonical.is_empty(), "{files:?} produced no facts");
            assert_eq!(
                on, off,
                "{files:?} diverged between analysis on/off at {threads} thread(s)"
            );
            assert_eq!(
                off_raw.int_fast, 0,
                "{files:?}: analysis off must never take the Int heap fast path"
            );
            // The batch kernel rides on the analysis-gated fast feed,
            // so analysis off also forces the sequential insert path.
            assert_eq!(
                off_raw.batch_pushes, 0,
                "{files:?}: analysis off must never take the batch feed path"
            );
        }
    }
}

#[test]
fn gamma_batch_kernel_changes_nothing_observable() {
    for files in PROGRAMS {
        for threads in [1, 2, 4, 8] {
            let (on, _) = run_group(files, threads, true, true);
            let (off, off_raw) = run_group(files, threads, true, false);
            assert!(!on.canonical.is_empty(), "{files:?} produced no facts");
            assert_eq!(on, off, "{files:?} diverged between batch on/off at {threads} thread(s)");
            assert_eq!(
                off_raw.batch_pushes, 0,
                "{files:?}: batch off must never take the batch feed path"
            );
        }
    }
}

#[test]
fn batch_kernel_engages_on_fast_feed_programs() {
    // prim's feed (source scan + `Y != 0` pre-check) compiles to
    // columnar checks, so the batch kernel must actually run.
    let (_, raw) = run_group(&["programs/prim.dl", "programs/graph_small.dl"], 1, true, true);
    assert!(raw.batch_pushes > 0, "prim: fast feed is columnar, the batch kernel should engage");
}

#[test]
fn int_cost_heap_engages_on_integer_cost_programs() {
    for files in [&["programs/prim.dl", "programs/graph_small.dl"][..], &["programs/sort.dl"][..]] {
        let (_, raw) = run_group(files, 1, true, true);
        assert!(
            raw.int_fast > 0,
            "{files:?}: cost column is provably int, the fast heap should engage"
        );
    }
}

#[test]
fn no_analyze_env_var_flips_the_default() {
    // The env var is read at `GreedyConfig::default()` time; exercise
    // both explicit values instead of mutating the process environment
    // (tests run concurrently).
    let on = GreedyConfig { analyze: true, ..GreedyConfig::default() };
    let off = GreedyConfig { analyze: false, ..GreedyConfig::default() };
    assert!(on.analyze && !off.analyze);
    assert_eq!(on.max_steps, off.max_steps);
}

#[test]
fn no_gamma_batch_env_var_flips_the_default() {
    // Same pattern as `no_analyze_env_var_flips_the_default`: explicit
    // construction, never mutate the process environment.
    let on = GreedyConfig { gamma_batch: true, ..GreedyConfig::default() };
    let off = GreedyConfig { gamma_batch: false, ..GreedyConfig::default() };
    assert!(on.gamma_batch && !off.gamma_batch);
    assert_eq!(on.max_steps, off.max_steps);
}
