//! Plan-compile-time constant interning: executing a compiled plan
//! performs **no** dictionary encodes, so the encoding cost of a rule's
//! baked constants is independent of how many rows the scans visit.
//!
//! This file deliberately holds a single `#[test]`: the dictionary
//! counters are process-global, and integration tests get their own
//! process — concurrent `#[test]` threads would pollute the deltas.

use gbc_ast::{Atom, Literal, Rule, Term, Value};
use gbc_engine::eval::{instantiate_head, Focus};
use gbc_engine::plan::{for_each_match_plan, RulePlan};
use gbc_storage::dictionary::dict_stats;
use gbc_storage::{ColumnBuf, Database};

/// `p(X) <- e(X, k), f(X, m).` — two scans, each keyed by one baked
/// symbol constant.
fn rule() -> Rule {
    Rule::new(
        Atom::new("p", vec![Term::var(0)]),
        vec![
            Literal::pos("e", vec![Term::var(0), Term::Const(Value::sym("k"))]),
            Literal::pos("f", vec![Term::var(0), Term::Const(Value::sym("m"))]),
        ],
        vec!["X".into()],
    )
}

fn db_with(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert_values("e", vec![Value::int(i), Value::sym("k")]);
        db.insert_values("e", vec![Value::int(i), Value::sym("j")]); // non-matching
        db.insert_values("f", vec![Value::int(i), Value::sym("m")]);
    }
    db
}

fn run(db: &Database, plan: &RulePlan, rule: &Rule, focus: Option<Focus<'_>>) -> usize {
    let mut n = 0;
    for_each_match_plan(db, None, rule, plan, focus, &mut |b| {
        let _ = instantiate_head(rule, b)?;
        n += 1;
        Ok(true)
    })
    .unwrap();
    n
}

#[test]
fn plan_constants_encode_independent_of_row_count() {
    let rule = rule();
    let small = db_with(8);
    let large = db_with(512);

    // Every value the rule's constants name is interned by the EDB
    // loads above, so compilation only *hits* the dictionary — once per
    // baked key constant per variant, and row counts cannot enter the
    // picture. The base variant bakes both constants; each focused
    // variant bakes only the *other* literal's constant (the focused
    // occurrence iterates delta rows and compares ids directly).
    let c0 = dict_stats();
    let plan = RulePlan::compile(&rule).unwrap();
    let compiled = dict_stats().since(&c0);
    assert_eq!(compiled.dict_entries, 0, "compile must not mint new ids here");
    assert_eq!(compiled.encode_hits, 4, "2 consts in base + 1 in each focused variant");

    // Base-plan execution: zero dictionary encodes, whatever the size.
    let b0 = dict_stats();
    let n_small = run(&small, &plan, &rule, None);
    let d_small = dict_stats().since(&b0);
    let b1 = dict_stats();
    let n_large = run(&large, &plan, &rule, None);
    let d_large = dict_stats().since(&b1);
    assert_eq!((n_small, n_large), (8, 512));
    assert_eq!(d_small.encode_hits, d_large.encode_hits, "encodes must not scale with rows");
    assert_eq!(d_small.encode_hits, 0, "constants are pre-encoded at compile time");
    assert_eq!(d_large.dict_entries, 0);

    // The focused (delta) variant bakes its constants at compile time
    // too: driving it over a delta performs no encodes either.
    let mut delta = ColumnBuf::new();
    delta.push_values(&[Value::int(3), Value::sym("k")]);
    delta.push_values(&[Value::int(5), Value::sym("k")]);
    let f0 = dict_stats();
    let n_focused = run(&large, &plan, &rule, Some(Focus { literal: 0, rows: delta.view() }));
    let d_focused = dict_stats().since(&f0);
    assert_eq!(n_focused, 2);
    assert_eq!(d_focused.encode_hits, 0, "delta variant also uses pre-encoded constants");
    assert_eq!(d_focused.dict_entries, 0);
}
