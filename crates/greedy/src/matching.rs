//! Example 7 — greedy min-cost maximal matching.
//!
//! ```text
//! matching(nil, nil, 0, 0).
//! matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
//!                         choice(Y, X), choice(X, Y).
//! ```
//!
//! The two FDs make sources and targets pairwise distinct; `least`
//! with the stage group picks the cheapest remaining arc each step —
//! greedy matching, `O(e log e)` with the (R,Q,L) structure (Section 6).

use gbc_ast::Symbol;
use gbc_baselines::Edge;
use gbc_core::{compile, Compiled, CoreError, GreedyRun};

use crate::graph::{decode_edges, Graph};

/// The paper's matching program, verbatim.
pub const PROGRAM: &str = "matching(nil, nil, 0, 0).
matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I), choice(Y, X), choice(X, Y).";

/// Compile the matching program.
pub fn compiled() -> Compiled {
    let program = gbc_parser::parse_program(PROGRAM).expect("static program text");
    compile(program).expect("matching is stage-stratified")
}

/// Extract the matching (the `nil` exit fact is dropped).
pub fn decode(run: &GreedyRun) -> Vec<Edge> {
    decode_edges(&run.db.facts_of(Symbol::intern("matching")))
}

/// Greedy matching on `graph`'s arcs via the (R,Q,L) executor.
pub fn run_greedy(graph: &Graph) -> Result<Vec<Edge>, CoreError> {
    let run = compiled().run_greedy(&graph.to_edb())?;
    Ok(decode(&run))
}

/// Generic-fixpoint run (ablation baseline).
pub fn run_generic(graph: &Graph) -> Result<Vec<Edge>, CoreError> {
    let run = compiled().run_generic(&graph.to_edb())?;
    Ok(decode(&run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::matching::{greedy_matching, is_matching, is_maximal};
    use gbc_baselines::total_cost;
    use gbc_core::ProgramClass;

    #[test]
    fn classifies_and_plans() {
        let c = compiled();
        assert_eq!(*c.class(), ProgramClass::StageStratified { alternating: true });
        assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    }

    #[test]
    fn small_graph_matches_baseline() {
        let g = Graph::new(
            4,
            vec![Edge::new(0, 1, 1), Edge::new(0, 2, 2), Edge::new(3, 1, 3), Edge::new(3, 2, 4)],
        );
        let decl = run_greedy(&g).unwrap();
        let base = greedy_matching(g.n, &g.edges);
        let mut d = decl.clone();
        let mut b = base;
        d.sort_unstable();
        b.sort_unstable();
        assert_eq!(d, b);
    }

    #[test]
    fn random_arcs_give_maximal_matchings_matching_baseline() {
        for seed in 0..5 {
            let g = crate::workload::random_arcs(20, 60, seed);
            let mut decl = run_greedy(&g).unwrap();
            let mut base = greedy_matching(g.n, &g.edges);
            decl.sort_unstable();
            base.sort_unstable();
            assert!(is_matching(&decl), "seed {seed}");
            assert!(is_maximal(g.n, &g.edges, &decl), "seed {seed}");
            assert_eq!(decl, base, "unique costs ⇒ identical greedy run (seed {seed})");
            assert_eq!(total_cost(&decl), total_cost(&base));
        }
    }

    #[test]
    fn empty_graph_matches_nothing() {
        let g = Graph::new(3, vec![]);
        assert!(run_greedy(&g).unwrap().is_empty());
    }
}
