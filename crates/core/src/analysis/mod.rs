//! Compile-time analysis: stage-variable inference and the
//! stage-stratification checker of Section 4 — the paper's claim that
//! greedy programs form "a syntactic class … easily recognized at
//! compile time".

pub mod classify;
pub mod cliques;
pub mod constraints;
pub mod reachability;
pub mod report;
pub mod stage;
pub mod typeinfer;

pub use classify::{classify, Analysis, CliqueInfo, ProgramClass, StageViolation};
pub use cliques::{feed_groups, FeedGroups};
pub use constraints::Constraints;
pub use reachability::{ConstComparison, DeadRule, ReachInfo};
pub use report::{analyze_program, AnalyzeReport, PlanFacts, ANALYSIS_SCHEMA_VERSION};
pub use stage::{infer_stages, StageConflict, StageInfo};
pub use typeinfer::{Base, ColType, TypeConflict, TypeInfo};
