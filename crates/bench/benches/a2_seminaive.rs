//! A2 — ablation: seminaive versus naive flat-rule saturation.
//!
//! The paper's fixpoint machinery assumes "seminaive refinements"
//! (Section 1). We measure transitive closure over chains — the
//! canonical case where naive evaluation re-derives the whole relation
//! every round (`O(n³)`-ish work) while seminaive touches only deltas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbc_ast::Value;
use gbc_engine::seminaive::Seminaive;
use gbc_engine::eval::eval_rule_plain;
use gbc_storage::Database;

fn tc_rules() -> Vec<gbc_ast::Rule> {
    gbc_parser::parse_program(
        "tc(X, Y) <- e(X, Y).
         tc(X, Z) <- tc(X, Y), e(Y, Z).",
    )
    .unwrap()
    .rules
}

fn chain_db(n: i64) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert_values("e", vec![Value::int(i), Value::int(i + 1)]);
    }
    db
}

/// Naive evaluation: every rule fully re-evaluated each round.
fn naive_saturate(db: &mut Database, rules: &[gbc_ast::Rule]) {
    loop {
        let mut new_facts = 0u64;
        for rule in rules {
            for row in eval_rule_plain(db, rule, None).unwrap() {
                if db.insert(rule.head.pred, row) {
                    new_facts += 1;
                }
            }
        }
        if new_facts == 0 {
            break;
        }
    }
}

fn bench_seminaive(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_seminaive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[32i64, 64, 128] {
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, &n| {
            b.iter(|| {
                let mut db = chain_db(n);
                Seminaive::new(tc_rules()).saturate(&mut db).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| {
                let mut db = chain_db(n);
                naive_saturate(&mut db, &tc_rules());
                db.total_facts()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seminaive);
criterion_main!(benches);
