//! Property tests for the core pipeline: the rewritings preserve
//! answers, and the stage-stratification checker accepts/rejects the
//! right perturbations of the paper's programs.

use gbc_ast::Value;
use gbc_core::{classify, rewrite_full, ProgramClass};
use gbc_storage::Database;
use gbc_telemetry::rng::Rng;

/// For extrema-only programs (no choice), the full rewriting to
/// negation computes the same answers under stratified evaluation
/// as the engine's direct extrema implementation.
#[test]
fn least_rewrite_preserves_answers() {
    let mut rng = Rng::new(0x5EED_0005);
    for case in 0..48 {
        let n_rows = 1 + rng.below_usize(15);
        let rows: Vec<(u8, u8, i64)> = (0..n_rows)
            .map(|_| (rng.below(5) as u8, rng.below(5) as u8, rng.range_i64(1, 8)))
            .collect();

        let program =
            gbc_parser::parse_program("best(S, C, G) <- takes(S, C, G), least(G, C).").unwrap();
        let mut edb = Database::new();
        for &(s, c, g) in &rows {
            edb.insert_values(
                "takes",
                vec![Value::int(s.into()), Value::int(c.into()), Value::int(g)],
            );
        }

        // Direct path.
        let direct = gbc_engine::evaluate_stratified(&program, &edb).unwrap();

        // Rewritten path.
        let fr = rewrite_full(&program).unwrap();
        let rewritten = gbc_engine::evaluate_stratified(&fr.program, &edb).unwrap();

        let best = gbc_ast::Symbol::intern("best");
        let mut a = direct.facts_of(best);
        let mut b = rewritten.facts_of(best);
        a.sort();
        b.sort();
        assert_eq!(a, b, "case {case}");
    }
}

/// Classification is stable under fact injection: adding EDB facts
/// to a stage-stratified program never changes its class (the check
/// is purely syntactic, as the paper claims).
#[test]
fn classification_ignores_facts() {
    let mut rng = Rng::new(0x5EED_0006);
    for case in 0..48 {
        let n_extra = rng.below_usize(12);
        let mut text = String::from(
            "prm(nil, 0, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).\n",
        );
        for _ in 0..n_extra {
            let (a, b, c) = (rng.below(9), rng.below(9), rng.range_i64(1, 98));
            text.push_str(&format!("g({a}, {b}, {c}).\n"));
        }
        let p = gbc_parser::parse_program(&text).unwrap();
        assert_eq!(
            classify(&p).class,
            ProgramClass::StageStratified { alternating: true },
            "case {case}"
        );
    }
}

#[test]
fn dropping_the_stage_guard_breaks_strictness() {
    // Remove J < I from Prim: no longer provably stage-stratified.
    let p = gbc_parser::parse_program(
        "prm(nil, 0, 0, 0).
         prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
    )
    .unwrap();
    assert!(matches!(classify(&p).class, ProgramClass::NotStageStratified { .. }));
}

#[test]
fn weakening_the_guard_to_le_breaks_strictness() {
    // J <= I is not strict: next rules demand strict stage descent.
    let p = gbc_parser::parse_program(
        "prm(nil, 0, 0, 0).
         prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J <= I, least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
    )
    .unwrap();
    assert!(matches!(classify(&p).class, ProgramClass::NotStageStratified { .. }));
}

#[test]
fn rewrite_full_output_is_negation_only_and_valid() {
    // Prim's program (with the root guard); programs from gbc-greedy
    // get the same treatment in tests/integration_pipeline.rs.
    let p = gbc_parser::parse_program(
        "prm(nil, 0, 0, 0).
         prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, Y != 0,
                            least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
    )
    .unwrap();
    let fr = rewrite_full(&p).unwrap();
    for r in &fr.program.rules {
        assert!(!r.has_choice(), "{r}");
        assert!(!r.has_next(), "{r}");
        assert!(!r.has_extrema(), "{r}");
    }
    fr.program
        .validate()
        .unwrap_or_else(|e| panic!("rewritten program must validate: {e}\n{}", fr.program));
}
