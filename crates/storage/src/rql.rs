//! The paper's **D_r = (R_r, Q_r, L_r)** structure (Section 6).
//!
//! For a next rule `r` with body
//! `next(I), p(X̄, J), [J < I, least(C, I)], [choice …]`, the engine
//! maintains one [`Rql`] per rule:
//!
//! * `Q_r` — a priority queue of the candidate solutions to the `least`
//!   predicate, holding **at most one fact per r-congruence class**
//!   (two `p`-facts are r-congruent when they agree on every argument
//!   except the stage argument, the cost argument, and the attributes
//!   functionally determined by `choice`);
//! * `L_r` — the facts that have fired the rule (the memo of *chosen*
//!   facts);
//! * `R_r` — the redundant facts, which can never fire the rule again.
//!
//! The insertion operation implements the paper's case analysis
//! verbatim; both insertion and retrieve-least are `O(log |Q|)` thanks
//! to the handle-indexed heap.
//!
//! Since the columnar rework, keys, costs and rows are **dictionary
//! ids** (`u32` / `Vec<u32>`): heap maintenance hashes and moves dense
//! integers, and the ordering contract is [`dictionary::cmp_ids`] —
//! ids order by their *decoded* value, so pop order is byte-identical
//! to the pre-columnar value representation, including non-integer
//! (symbolic) costs.
//!
//! The structure is agnostic about how congruence keys and costs are
//! derived from facts — the executor in `gbc-core` projects them out of
//! rows — which keeps this module reusable for all of the paper's
//! greedy programs.

use std::cell::Cell;
use std::sync::Arc;

use gbc_telemetry::Metrics;

use crate::dictionary::{self, cmp_id_rows, cmp_ids};
use crate::fx::FxHashMap;
use crate::heap::{Handle, IndexedHeap};

thread_local! {
    /// Comparisons served by the decode-free `Int` cost fast path.
    /// Thread-local rather than a global atomic so concurrent runs in
    /// one process (parallel `cargo test`) never cross-contaminate;
    /// heap operations happen on the coordinator thread, so the owning
    /// `Rql` reads a coherent before/after delta around each op.
    static INT_FAST_COMPARES: Cell<u64> = const { Cell::new(0) };
}

fn int_fast_compares() -> u64 {
    INT_FAST_COMPARES.with(Cell::get)
}

fn bump_int_fast() {
    INT_FAST_COMPARES.with(|c| c.set(c.get() + 1));
}

/// Congruence-class key: the projection of a fact onto the arguments
/// that are neither stage, nor cost, nor choice-determined. Encoded.
pub type CongKey = Vec<u32>;

/// Result of an [`Rql::insert`], mirroring the paper's case analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RqlOutcome {
    /// No congruent fact was queued or used: the fact entered `Q_r`.
    Queued,
    /// A congruent fact with *higher* cost sat in `Q_r`; it moved to
    /// `R_r` and this fact took its place in `Q_r`.
    ReplacedQueued,
    /// A congruent fact with lower-or-equal cost sits in `Q_r`; this
    /// fact went straight to `R_r`.
    DominatedInQueue,
    /// A congruent fact already fired the rule (`∈ L_r`); this fact is
    /// redundant.
    CongruentUsed,
}

/// An entry popped from `Q_r`, pending classification by the caller:
/// [`Rql::commit`] moves it to `L_r`, [`Rql::discard`] to `R_r`
/// (the paper's treatment of facts that fail the choice conditions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Popped {
    pub key: CongKey,
    /// Encoded cost id.
    pub cost: u32,
    /// Encoded fact row.
    pub row: Vec<u32>,
}

/// Heap cost wrapper: ascending for `least`, descending for `most`
/// (the paper's dual — `retrieve least` becomes `retrieve most`). A
/// single [`Rql`] instance never mixes variants. The generic variants
/// order through the dictionary ([`cmp_ids`]), never by id magnitude;
/// the `Int` variants carry the decoded `i64` and compare it directly
/// — sound only when type analysis proves the cost column pure `int`,
/// where the raw integer order coincides with `cmp_ids`.
#[derive(Clone, Debug, PartialEq, Eq)]
enum HeapCost {
    Asc(u32),
    Desc(u32),
    AscInt { id: u32, val: i64 },
    DescInt { id: u32, val: i64 },
}

impl HeapCost {
    fn id(&self) -> u32 {
        match self {
            HeapCost::Asc(v) | HeapCost::Desc(v) => *v,
            HeapCost::AscInt { id, .. } | HeapCost::DescInt { id, .. } => *id,
        }
    }
}

impl Ord for HeapCost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (HeapCost::Asc(a), HeapCost::Asc(b)) => cmp_ids(*a, *b),
            (HeapCost::Desc(a), HeapCost::Desc(b)) => cmp_ids(*b, *a),
            (HeapCost::AscInt { val: a, .. }, HeapCost::AscInt { val: b, .. }) => {
                bump_int_fast();
                a.cmp(b)
            }
            (HeapCost::DescInt { val: a, .. }, HeapCost::DescInt { val: b, .. }) => {
                bump_int_fast();
                b.cmp(a)
            }
            _ => {
                debug_assert!(
                    false,
                    "a single Rql never mixes heap-cost variants: {self:?} vs {other:?}"
                );
                std::cmp::Ordering::Equal
            }
        }
    }
}

impl PartialOrd for HeapCost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An encoded row ordered by its decoded values ([`cmp_id_rows`]) —
/// the row tiebreak of the heap's `(cost, row)` composite key, exactly
/// the `Ord` the pre-columnar `Row` had.
#[derive(Clone, Debug, PartialEq, Eq)]
struct OrdRow(Vec<u32>);

impl Ord for OrdRow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_id_rows(&self.0, &other.0)
    }
}

impl PartialOrd for OrdRow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The (R,Q,L) structure. See the module docs.
#[derive(Debug, Default)]
pub struct Rql {
    /// Descending (max-first) retrieval for `most` rules.
    descending: bool,
    /// Costs are proved pure `int`: wrap them in the decode-free
    /// variants. Set by the executor when type analysis licenses it.
    int_costs: bool,
    heap: IndexedHeap<(HeapCost, OrdRow)>,
    /// `Q_r` membership: congruence key → heap handle.
    queued: FxHashMap<CongKey, Handle>,
    /// Inverse of `queued`, needed when popping.
    key_of: FxHashMap<Handle, CongKey>,
    /// `L_r`: congruence keys (with their winning row) that fired the rule.
    used: FxHashMap<CongKey, Vec<u32>>,
    /// |R_r|. The paper keeps `R_r` only to argue redundant tuples are
    /// never revisited; a count suffices operationally.
    redundant: u64,
    /// Optional audit copy of `R_r` for tests.
    audit: Option<Vec<Vec<u32>>>,
    /// Shared counter registry; heap/congruence traffic is reported
    /// here when attached.
    metrics: Option<Arc<Metrics>>,
}

impl Rql {
    /// New structure. `audit` retains the contents of `R_r` (tests only;
    /// costs memory proportional to |R_r|).
    pub fn new() -> Rql {
        Rql::default()
    }

    /// New structure that records `R_r` contents for inspection.
    pub fn with_audit() -> Rql {
        Rql { audit: Some(Vec::new()), ..Rql::default() }
    }

    /// A structure whose retrieve operation yields the *maximum* cost —
    /// the dual used by `most` rules (the paper notes `most` is "the
    /// dual of least", Example 8).
    pub fn new_descending() -> Rql {
        Rql { descending: true, ..Rql::default() }
    }

    /// Attach a counter registry. Subsequent operations report heap
    /// inserts/replaces/pops, congruence outcomes and the queue
    /// high-water mark to it.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Switch cost wrapping to the decode-free `Int` variants.
    ///
    /// Only sound when **every** cost subsequently inserted decodes to
    /// `Value::Int`: within a pure-`int` column the raw `i64` order
    /// coincides with the dictionary order, so pop order is unchanged.
    /// The executor sets this only when whole-program type analysis
    /// proves the extremum's cost column `int`. Must be called while
    /// the queue is empty (variants never mix inside one heap).
    pub fn set_int_costs(&mut self, on: bool) {
        debug_assert!(self.heap.is_empty(), "cannot change cost representation mid-run");
        self.int_costs = on;
    }

    fn wrap(&self, cost: u32) -> HeapCost {
        if self.int_costs {
            let val = match dictionary::decode_ref(cost) {
                gbc_ast::Value::Int(v) => *v,
                other => {
                    debug_assert!(false, "int-cost mode but cost decodes to {other:?}");
                    i64::MIN
                }
            };
            if self.descending {
                HeapCost::DescInt { id: cost, val }
            } else {
                HeapCost::AscInt { id: cost, val }
            }
        } else if self.descending {
            HeapCost::Desc(cost)
        } else {
            HeapCost::Asc(cost)
        }
    }

    /// The paper's insertion operation, over encoded ids.
    pub fn insert(&mut self, key: CongKey, cost: u32, row: Vec<u32>) -> RqlOutcome {
        let fast_before = int_fast_compares();
        let outcome = self.insert_inner(key, cost, row);
        if let Some(m) = &self.metrics {
            match outcome {
                RqlOutcome::Queued => m.heap_inserts.inc(),
                RqlOutcome::ReplacedQueued => {
                    m.heap_replaces.inc();
                    m.congruence_replacements.inc();
                }
                RqlOutcome::DominatedInQueue => m.rql_dominated.inc(),
                RqlOutcome::CongruentUsed => m.rql_used_blocked.inc(),
            }
            m.queue_peak.observe(self.heap.len() as u64);
            m.heap_int_fast_compares.add(int_fast_compares() - fast_before);
        }
        outcome
    }

    /// The fused batch form of [`Rql::insert`]: push every `(key,
    /// cost, row)` triple of one feed scan in a single pass. The queue
    /// contents after the call are **identical** to `items.len()`
    /// sequential [`Rql::insert`] calls — each triple still runs the
    /// paper's full case analysis against the live queue state, so
    /// intra-batch congruence (two congruent rows in one batch) resolves
    /// exactly as it would row by row.
    ///
    /// What the batch saves is the per-row bookkeeping around the sift:
    /// outcome counters accumulate in locals and flush once, the
    /// `Int`-fast-compare delta is read once, and the queue high-water
    /// mark is observed once at the end — sound because insertion never
    /// shrinks `Q_r`, so the post-batch length *is* the running maximum.
    /// The only new observable is `heap_batch_pushes`, which counts the
    /// rows that arrived through this kernel (the batch analogue of
    /// `heap_int_fast_compares`: a which-path counter, not a
    /// what-result counter).
    pub fn extend_batch(&mut self, items: impl IntoIterator<Item = (CongKey, u32, Vec<u32>)>) {
        let fast_before = int_fast_compares();
        let (mut queued, mut replaced, mut dominated, mut used_blocked) = (0u64, 0u64, 0u64, 0u64);
        let mut pushed = 0u64;
        for (key, cost, row) in items {
            pushed += 1;
            match self.insert_inner(key, cost, row) {
                RqlOutcome::Queued => queued += 1,
                RqlOutcome::ReplacedQueued => replaced += 1,
                RqlOutcome::DominatedInQueue => dominated += 1,
                RqlOutcome::CongruentUsed => used_blocked += 1,
            }
        }
        if let Some(m) = &self.metrics {
            m.heap_inserts.add(queued);
            m.heap_replaces.add(replaced);
            m.congruence_replacements.add(replaced);
            m.rql_dominated.add(dominated);
            m.rql_used_blocked.add(used_blocked);
            m.queue_peak.observe(self.heap.len() as u64);
            m.heap_int_fast_compares.add(int_fast_compares() - fast_before);
            m.heap_batch_pushes.add(pushed);
        }
    }

    fn insert_inner(&mut self, key: CongKey, cost: u32, row: Vec<u32>) -> RqlOutcome {
        if self.used.contains_key(&key) {
            self.mark_redundant(row);
            return RqlOutcome::CongruentUsed;
        }
        let cost = self.wrap(cost);
        let row = OrdRow(row);
        if let Some(&h) = self.queued.get(&key) {
            let old = self.heap.get(h).expect("queued handle is live");
            if (&cost, &row) < (&old.0, &old.1) {
                let (_, old_row) = self.heap.update(h, (cost, row)).expect("handle just probed");
                self.mark_redundant(old_row.0);
                RqlOutcome::ReplacedQueued
            } else {
                self.mark_redundant(row.0);
                RqlOutcome::DominatedInQueue
            }
        } else {
            let h = self.heap.push((cost, row));
            self.queued.insert(key.clone(), h);
            self.key_of.insert(h, key);
            RqlOutcome::Queued
        }
    }

    /// Pop the best candidate from `Q_r` (minimum cost, or maximum for
    /// a descending structure). The entry is detached from the queue
    /// but belongs to neither `L_r` nor `R_r` until the caller
    /// classifies it with [`Rql::commit`] or [`Rql::discard`].
    pub fn pop_least(&mut self) -> Option<Popped> {
        let fast_before = int_fast_compares();
        let (h, (cost, row)) = self.heap.pop_min()?;
        if let Some(m) = &self.metrics {
            m.heap_pops.inc();
            m.heap_int_fast_compares.add(int_fast_compares() - fast_before);
        }
        let key = self.key_of.remove(&h).expect("popped handle has a key");
        self.queued.remove(&key);
        Some(Popped { key, cost: cost.id(), row: row.0 })
    }

    /// Peek at the best candidate without removing it.
    pub fn peek_least(&self) -> Option<(u32, &[u32])> {
        self.heap.peek_min().map(|(_, (c, r))| (c.id(), r.0.as_slice()))
    }

    /// Record a popped entry as *chosen*: it moves to `L_r`, blocking
    /// every future congruent fact.
    pub fn commit(&mut self, popped: Popped) {
        self.used.insert(popped.key, popped.row);
    }

    /// Record a popped entry as *redundant* (`R_r`): it failed the
    /// choice conditions. A congruent fact may be queued again later.
    pub fn discard(&mut self, popped: Popped) {
        self.mark_redundant(popped.row);
    }

    fn mark_redundant(&mut self, row: Vec<u32>) {
        self.redundant += 1;
        if let Some(audit) = &mut self.audit {
            audit.push(row);
        }
    }

    /// |Q_r|.
    pub fn queue_len(&self) -> usize {
        self.heap.len()
    }

    /// |L_r|.
    pub fn used_len(&self) -> usize {
        self.used.len()
    }

    /// |R_r|.
    pub fn redundant_count(&self) -> u64 {
        self.redundant
    }

    /// True when `Q_r` is exhausted.
    pub fn is_queue_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Is a congruent fact already in `L_r`?
    pub fn key_used(&self, key: &[u32]) -> bool {
        self.used.contains_key(key)
    }

    /// The audit copy of `R_r`, if enabled (encoded rows).
    pub fn redundant_rows(&self) -> Option<&[Vec<u32>]> {
        self.audit.as_deref()
    }
}

/// Encode a value-level cost for insertion — convenience for callers
/// that sit on the value side of the boundary.
pub fn encode_cost(v: &gbc_ast::Value) -> u32 {
    dictionary::encode(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Value;

    fn row(vals: &[i64]) -> Vec<u32> {
        vals.iter().map(|&v| dictionary::encode(&Value::int(v))).collect()
    }

    fn key(vals: &[i64]) -> CongKey {
        row(vals)
    }

    fn cost(v: i64) -> u32 {
        dictionary::encode(&Value::int(v))
    }

    #[test]
    fn keeps_one_representative_per_congruence_class() {
        let mut d = Rql::new();
        // Two facts congruent on key [7]: the cheaper survives in Q.
        assert_eq!(d.insert(key(&[7]), cost(10), row(&[7, 10])), RqlOutcome::Queued);
        assert_eq!(d.insert(key(&[7]), cost(3), row(&[7, 3])), RqlOutcome::ReplacedQueued);
        assert_eq!(d.insert(key(&[7]), cost(5), row(&[7, 5])), RqlOutcome::DominatedInQueue);
        assert_eq!(d.queue_len(), 1);
        assert_eq!(d.redundant_count(), 2);
        let p = d.pop_least().unwrap();
        assert_eq!(p.cost, cost(3));
    }

    #[test]
    fn used_class_blocks_future_inserts() {
        let mut d = Rql::new();
        d.insert(key(&[1]), cost(4), row(&[1, 4]));
        let p = d.pop_least().unwrap();
        d.commit(p);
        assert!(d.key_used(&key(&[1])));
        assert_eq!(d.insert(key(&[1]), cost(1), row(&[1, 1])), RqlOutcome::CongruentUsed);
        assert_eq!(d.queue_len(), 0);
        assert_eq!(d.used_len(), 1);
    }

    #[test]
    fn discarded_class_can_requeue() {
        let mut d = Rql::new();
        d.insert(key(&[2]), cost(9), row(&[2, 9]));
        let p = d.pop_least().unwrap();
        d.discard(p);
        // Not used — a congruent fact can enter the queue again.
        assert_eq!(d.insert(key(&[2]), cost(8), row(&[2, 8])), RqlOutcome::Queued);
        assert_eq!(d.redundant_count(), 1);
    }

    #[test]
    fn pop_order_is_by_cost_then_row() {
        let mut d = Rql::new();
        d.insert(key(&[1]), cost(5), row(&[1, 5]));
        d.insert(key(&[2]), cost(3), row(&[2, 3]));
        d.insert(key(&[3]), cost(5), row(&[0, 5])); // same cost as class 1
        let costs: Vec<(u32, Vec<u32>)> =
            std::iter::from_fn(|| d.pop_least()).map(|p| (p.cost, p.row)).collect();
        assert_eq!(
            costs,
            vec![
                (cost(3), row(&[2, 3])),
                (cost(5), row(&[0, 5])), // row tiebreak: (0,5) < (1,5)
                (cost(5), row(&[1, 5])),
            ]
        );
    }

    #[test]
    fn audit_mode_records_redundant_rows() {
        let mut d = Rql::with_audit();
        d.insert(key(&[1]), cost(2), row(&[1, 2]));
        d.insert(key(&[1]), cost(1), row(&[1, 1])); // replaces; (1,2) redundant
        assert_eq!(d.redundant_rows().unwrap(), &[row(&[1, 2])]);
    }

    #[test]
    fn descending_mode_pops_maxima_and_keeps_class_maxima() {
        let mut d = Rql::new_descending();
        d.insert(key(&[1]), cost(5), row(&[1, 5]));
        assert_eq!(
            d.insert(key(&[1]), cost(9), row(&[1, 9])),
            RqlOutcome::ReplacedQueued,
            "larger cost replaces in descending mode"
        );
        assert_eq!(d.insert(key(&[1]), cost(7), row(&[1, 7])), RqlOutcome::DominatedInQueue);
        d.insert(key(&[2]), cost(8), row(&[2, 8]));
        let p1 = d.pop_least().unwrap();
        assert_eq!(p1.cost, cost(9));
        d.commit(p1);
        let p2 = d.pop_least().unwrap();
        assert_eq!(p2.cost, cost(8));
    }

    #[test]
    fn metrics_observe_every_outcome() {
        let m = Arc::new(Metrics::new());
        let mut d = Rql::new();
        d.set_metrics(Arc::clone(&m));
        d.insert(key(&[1]), cost(5), row(&[1, 5])); // queued
        d.insert(key(&[1]), cost(3), row(&[1, 3])); // replaces
        d.insert(key(&[1]), cost(4), row(&[1, 4])); // dominated
        d.insert(key(&[2]), cost(8), row(&[2, 8])); // queued
        let p = d.pop_least().unwrap();
        d.commit(p);
        d.insert(key(&[1]), cost(1), row(&[1, 1])); // used-blocked
        let s = m.snapshot();
        assert_eq!(s.heap_inserts, 2);
        assert_eq!(s.heap_replaces, 1);
        assert_eq!(s.congruence_replacements, 1);
        assert_eq!(s.rql_dominated, 1);
        assert_eq!(s.rql_used_blocked, 1);
        assert_eq!(s.heap_pops, 1);
        assert_eq!(s.queue_peak, 2);
    }

    #[test]
    fn extend_batch_is_counter_identical_to_sequential_inserts() {
        // Same triples — covering all four outcomes plus a used class —
        // through insert() one at a time and through one extend_batch().
        let triples = || {
            vec![
                (key(&[1]), cost(5), row(&[1, 5])), // queued
                (key(&[1]), cost(3), row(&[1, 3])), // replaces within the batch
                (key(&[1]), cost(4), row(&[1, 4])), // dominated within the batch
                (key(&[2]), cost(8), row(&[2, 8])), // queued
                (key(&[9]), cost(0), row(&[9, 0])), // used-blocked (committed below)
            ]
        };
        let prime = |d: &mut Rql| {
            d.insert(key(&[9]), cost(1), row(&[9, 1]));
            let p = d.pop_least().unwrap();
            d.commit(p);
        };
        let m_seq = Arc::new(Metrics::new());
        let mut seq = Rql::new();
        seq.set_metrics(Arc::clone(&m_seq));
        prime(&mut seq);
        for (k, c, r) in triples() {
            seq.insert(k, c, r);
        }
        let m_bat = Arc::new(Metrics::new());
        let mut bat = Rql::new();
        bat.set_metrics(Arc::clone(&m_bat));
        prime(&mut bat);
        bat.extend_batch(triples());
        let pops = |d: &mut Rql| -> Vec<(u32, Vec<u32>)> {
            std::iter::from_fn(|| d.pop_least()).map(|p| (p.cost, p.row)).collect()
        };
        assert_eq!(pops(&mut seq), pops(&mut bat));
        let (mut a, mut b) = (m_seq.snapshot(), m_bat.snapshot());
        assert_eq!(b.heap_batch_pushes, 5);
        assert_eq!(a.heap_batch_pushes, 0);
        // Everything except the which-path counter matches exactly.
        a.heap_batch_pushes = 0;
        b.heap_batch_pushes = 0;
        assert_eq!(a, b);
    }

    #[test]
    fn int_mode_pops_in_the_same_order_as_the_generic_heap() {
        let mut generic = Rql::new();
        let mut fast = Rql::new();
        fast.set_int_costs(true);
        // Interleave magnitudes and signs so id order ≠ value order.
        for (i, c) in [(1, 50), (2, -3), (3, 0), (4, 50), (5, 7)] {
            generic.insert(key(&[i]), cost(c), row(&[i, c]));
            fast.insert(key(&[i]), cost(c), row(&[i, c]));
        }
        let pops = |d: &mut Rql| -> Vec<(u32, Vec<u32>)> {
            std::iter::from_fn(|| d.pop_least()).map(|p| (p.cost, p.row)).collect()
        };
        assert_eq!(pops(&mut generic), pops(&mut fast));
    }

    #[test]
    fn int_mode_reports_fast_compares_to_metrics() {
        let m = Arc::new(Metrics::new());
        let mut d = Rql::new();
        d.set_int_costs(true);
        d.set_metrics(Arc::clone(&m));
        d.insert(key(&[1]), cost(5), row(&[1, 5]));
        d.insert(key(&[2]), cost(3), row(&[2, 3]));
        d.insert(key(&[1]), cost(2), row(&[1, 2])); // replace: compares against old
        while d.pop_least().is_some() {}
        let s = m.snapshot();
        assert!(s.heap_int_fast_compares > 0, "{s:?}");
        // The generic heap reports none.
        let m2 = Arc::new(Metrics::new());
        let mut g = Rql::new();
        g.set_metrics(Arc::clone(&m2));
        g.insert(key(&[1]), cost(5), row(&[1, 5]));
        g.insert(key(&[2]), cost(3), row(&[2, 3]));
        while g.pop_least().is_some() {}
        assert_eq!(m2.snapshot().heap_int_fast_compares, 0);
    }

    #[test]
    fn descending_int_mode_pops_maxima() {
        let mut d = Rql::new_descending();
        d.set_int_costs(true);
        d.insert(key(&[1]), cost(5), row(&[1, 5]));
        d.insert(key(&[2]), cost(9), row(&[2, 9]));
        d.insert(key(&[3]), cost(-2), row(&[3, -2]));
        assert_eq!(d.pop_least().unwrap().cost, cost(9));
        assert_eq!(d.pop_least().unwrap().cost, cost(5));
        assert_eq!(d.pop_least().unwrap().cost, cost(-2));
    }

    #[test]
    fn costs_need_not_be_integers() {
        // Symbolic costs order lexicographically (via the dictionary's
        // decoded ordering, not id magnitude) — exercised by sorting
        // relations on symbolic keys. Interning "zebra" first gives it
        // the *smaller id*, so this also proves ids don't order the heap.
        let mut d = Rql::new();
        let zebra = dictionary::encode(&Value::sym("zebra"));
        let ant = dictionary::encode(&Value::sym("ant"));
        d.insert(key(&[1]), zebra, row(&[1]));
        d.insert(key(&[2]), ant, row(&[2]));
        assert_eq!(d.pop_least().unwrap().cost, ant);
    }
}
