//! Per-rule wall-clock profiling.
//!
//! A [`RuleProfiler`] accumulates, per rule id, the number of firings,
//! the tuples derived, the cumulative evaluation time, and the plan-
//! cache hits. Rule ids are indices into the *original* program's rule
//! list (the `next`-expansion is 1:1, so the same ids work on both
//! sides); the CLI resolves them to `file:line` locations through the
//! program's `RuleSpans` and the `SourceMap`.
//!
//! Like [`crate::span::Phases`], a disabled profiler (the default)
//! never touches the clock: [`RuleProfiler::start`] returns `None`
//! without an `Instant::now` call, and every recording method returns
//! immediately, so the instrumentation is safe to leave in hot loops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;

/// Accumulated per-rule figures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleProf {
    /// Rule evaluations (flat rules) or γ commits (choice/next rules).
    pub firings: u64,
    /// Facts the rule derived (post-deduplication inserts).
    pub tuples: u64,
    /// Cumulative wall-clock time charged to the rule, in nanoseconds.
    pub nanos: u64,
    /// Evaluations served by a cached compiled join plan.
    pub plan_hits: u64,
}

impl RuleProf {
    /// Charged time in seconds.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// The per-rule profile registry. Shared via `Arc`; methods take
/// `&self`.
#[derive(Debug, Default)]
pub struct RuleProfiler {
    enabled: bool,
    /// Slot per rule id, grown on demand.
    rules: Mutex<Vec<RuleProf>>,
    /// Executor bookkeeping charged outside any single rule (seminaive
    /// round snapshots, mark advances, delta accounting), in
    /// nanoseconds — so the profile accounts for run time the per-rule
    /// rows cannot claim.
    overhead_nanos: AtomicU64,
    /// Per-worker busy time of the parallel evaluation lanes (slot per
    /// worker id), in nanoseconds. Lanes measure work done *inside* the
    /// coordinator's per-rule wall-clock intervals, so they are
    /// reported alongside the rules rather than added to
    /// [`RuleProfiler::total_secs`] — summing both would double-count.
    lane_nanos: Mutex<Vec<u64>>,
    /// Coordinator time spent merging per-worker buffers and inserting
    /// the merged rows after a parallel round barrier, in nanoseconds.
    /// Counted toward [`RuleProfiler::total_secs`] like the overhead
    /// bucket; stays 0 on serial runs.
    merge_nanos: AtomicU64,
}

impl RuleProfiler {
    /// A disabled profiler: every method is a cheap no-op.
    pub fn disabled() -> RuleProfiler {
        RuleProfiler::default()
    }

    /// An enabled profiler.
    pub fn enabled() -> RuleProfiler {
        RuleProfiler { enabled: true, ..RuleProfiler::default() }
    }

    /// Is profiling on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begin a timing interval. Returns `None` — without reading the
    /// clock — when disabled; pair with [`RuleProfiler::finish`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Close an interval opened by [`RuleProfiler::start`], charging
    /// the elapsed time (plus `firings`/`tuples`) to `rule`.
    #[inline]
    pub fn finish(&self, t0: Option<Instant>, rule: usize, firings: u64, tuples: u64) {
        if let Some(t0) = t0 {
            self.record(rule, firings, tuples, t0.elapsed());
        }
    }

    /// Charge `dur` (plus `firings`/`tuples`) to `rule` directly.
    pub fn record(&self, rule: usize, firings: u64, tuples: u64, dur: Duration) {
        if !self.enabled {
            return;
        }
        let mut rules = self.rules.lock().expect("profiler lock");
        if rules.len() <= rule {
            rules.resize(rule + 1, RuleProf::default());
        }
        let p = &mut rules[rule];
        p.firings += firings;
        p.tuples += tuples;
        p.nanos += dur.as_nanos() as u64;
    }

    /// Count one plan-cache hit for `rule`.
    pub fn record_plan_hit(&self, rule: usize) {
        if !self.enabled {
            return;
        }
        let mut rules = self.rules.lock().expect("profiler lock");
        if rules.len() <= rule {
            rules.resize(rule + 1, RuleProf::default());
        }
        rules[rule].plan_hits += 1;
    }

    /// Close an interval opened by [`RuleProfiler::start`], charging
    /// the elapsed time to the executor-overhead bucket instead of a
    /// rule.
    #[inline]
    pub fn finish_overhead(&self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.add_overhead(t0.elapsed());
        }
    }

    /// Charge `dur` to the executor-overhead bucket directly.
    #[inline]
    pub fn add_overhead(&self, dur: Duration) {
        if self.enabled {
            self.overhead_nanos.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Executor bookkeeping time charged outside any rule, in seconds.
    pub fn overhead_secs(&self) -> f64 {
        self.overhead_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Begin a worker-lane interval. Like [`RuleProfiler::start`] but
    /// intended for use *on* a pool worker; pair with
    /// [`RuleProfiler::record_lane`].
    #[inline]
    pub fn lane_start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Charge `dur` of busy time to `worker`'s lane. Lanes are
    /// informational (they show how evenly a parallel round spread) and
    /// do not feed [`RuleProfiler::total_secs`] — the coordinator's
    /// per-rule intervals already cover the same wall-clock span.
    pub fn record_lane(&self, worker: usize, dur: Duration) {
        if !self.enabled {
            return;
        }
        let mut lanes = self.lane_nanos.lock().expect("profiler lock");
        if lanes.len() <= worker {
            lanes.resize(worker + 1, 0);
        }
        lanes[worker] += dur.as_nanos() as u64;
    }

    /// Per-worker lane busy time in seconds, indexed by worker id.
    /// Empty unless a parallel round ran with profiling on.
    pub fn lane_secs(&self) -> Vec<f64> {
        self.lane_nanos.lock().expect("profiler lock").iter().map(|&n| n as f64 / 1e9).collect()
    }

    /// Charge `dur` to the parallel merge bucket (coordinator time
    /// spent concatenating per-worker buffers and inserting the merged
    /// rows after a round barrier).
    #[inline]
    pub fn add_merge(&self, dur: Duration) {
        if self.enabled {
            self.merge_nanos.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Parallel merge/insert time, in seconds. 0 on serial runs.
    pub fn merge_secs(&self) -> f64 {
        self.merge_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// `(rule_id, profile)` pairs for every rule with recorded
    /// activity, in rule-id order.
    pub fn entries(&self) -> Vec<(usize, RuleProf)> {
        self.rules
            .lock()
            .expect("profiler lock")
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != RuleProf::default())
            .map(|(i, p)| (i, p.clone()))
            .collect()
    }

    /// Total charged time across all rules, in seconds — excluding the
    /// executor-overhead bucket.
    pub fn rules_secs(&self) -> f64 {
        self.rules.lock().expect("profiler lock").iter().map(RuleProf::secs).sum()
    }

    /// Everything the profile accounts for: per-rule time plus the
    /// executor-overhead and parallel-merge buckets, in seconds. Worker
    /// lanes are excluded — they overlap the per-rule intervals.
    pub fn total_secs(&self) -> f64 {
        self.rules_secs() + self.overhead_secs() + self.merge_secs()
    }

    /// `{rules: [{rule, firings, tuples, secs, plan_hits}, …],
    /// overhead_secs}`, plus `workers`/`merge_secs` fields when a
    /// parallel round recorded lane or merge time (serial output is
    /// unchanged byte for byte).
    pub fn to_json(&self) -> Json {
        let rules = Json::Arr(
            self.entries()
                .into_iter()
                .map(|(rule, p)| {
                    Json::obj(vec![
                        ("rule", Json::UInt(rule as u64)),
                        ("firings", Json::UInt(p.firings)),
                        ("tuples", Json::UInt(p.tuples)),
                        ("secs", Json::Float(p.secs())),
                        ("plan_hits", Json::UInt(p.plan_hits)),
                    ])
                })
                .collect(),
        );
        let mut fields =
            vec![("rules", rules), ("overhead_secs", Json::Float(self.overhead_secs()))];
        let lanes = self.lane_secs();
        if lanes.iter().any(|&s| s > 0.0) {
            let workers = lanes
                .into_iter()
                .enumerate()
                .map(|(w, busy)| {
                    Json::obj(vec![
                        ("worker", Json::UInt(w as u64)),
                        ("busy_secs", Json::Float(busy)),
                    ])
                })
                .collect();
            fields.push(("workers", Json::Arr(workers)));
        }
        if self.merge_nanos.load(Ordering::Relaxed) > 0 {
            fields.push(("merge_secs", Json::Float(self.merge_secs())));
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = RuleProfiler::disabled();
        assert!(p.start().is_none(), "disabled start must not read the clock");
        p.record(3, 1, 5, Duration::from_millis(1));
        p.record_plan_hit(3);
        assert!(p.entries().is_empty());
        assert_eq!(p.total_secs(), 0.0);
    }

    #[test]
    fn enabled_profiler_accumulates_per_rule() {
        let p = RuleProfiler::enabled();
        p.record(2, 1, 10, Duration::from_millis(2));
        p.record(2, 1, 5, Duration::from_millis(1));
        p.record(0, 1, 0, Duration::from_millis(4));
        p.record_plan_hit(2);
        let e = p.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].0, 0);
        assert_eq!(e[1].0, 2);
        assert_eq!(e[1].1.firings, 2);
        assert_eq!(e[1].1.tuples, 15);
        assert_eq!(e[1].1.plan_hits, 1);
        assert!((p.total_secs() - 0.007).abs() < 1e-9);
    }

    #[test]
    fn start_finish_charges_elapsed_time() {
        let p = RuleProfiler::enabled();
        let t0 = p.start();
        assert!(t0.is_some());
        p.finish(t0, 1, 1, 3);
        let e = p.entries();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].1.firings, 1);
        assert_eq!(e[0].1.tuples, 3);
    }

    #[test]
    fn overhead_bucket_counts_toward_the_total() {
        let p = RuleProfiler::enabled();
        p.record(0, 1, 1, Duration::from_millis(2));
        let t0 = p.start();
        p.finish_overhead(t0);
        assert!(p.overhead_secs() > 0.0);
        assert!(p.total_secs() > p.rules_secs());
        assert!(p.to_json().to_string().contains("\"overhead_secs\":"));
    }

    #[test]
    fn lanes_and_merge_stay_silent_on_serial_runs() {
        let p = RuleProfiler::enabled();
        p.record(0, 1, 1, Duration::from_millis(1));
        let s = p.to_json().to_string();
        assert!(!s.contains("\"workers\""), "no lanes recorded: {s}");
        assert!(!s.contains("\"merge_secs\""), "no merge recorded: {s}");

        p.record_lane(1, Duration::from_millis(2));
        p.add_merge(Duration::from_millis(3));
        let s = p.to_json().to_string();
        assert!(s.contains("\"workers\""));
        assert!(s.contains("\"busy_secs\""));
        assert!(s.contains("\"merge_secs\""));
        assert_eq!(p.lane_secs().len(), 2);
        // Merge counts toward the accounted total; lanes do not.
        assert!((p.total_secs() - 0.004).abs() < 1e-9);
    }

    #[test]
    fn disabled_profiler_ignores_lanes_and_merge() {
        let p = RuleProfiler::disabled();
        assert!(p.lane_start().is_none());
        p.record_lane(0, Duration::from_millis(1));
        p.add_merge(Duration::from_millis(1));
        assert!(p.lane_secs().is_empty());
        assert_eq!(p.merge_secs(), 0.0);
    }

    #[test]
    fn json_lists_only_active_rules() {
        let p = RuleProfiler::enabled();
        p.record(5, 2, 7, Duration::from_micros(10));
        let s = p.to_json().to_string();
        assert!(s.contains("\"rule\":5"));
        assert!(s.contains("\"firings\":2"));
        assert!(!s.contains("\"rule\":0"), "untouched slots are elided: {s}");
    }
}
