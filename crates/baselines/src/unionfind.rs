//! Disjoint sets with union by rank and path compression — the
//! "classical procedural method" the paper's Kruskal analysis alludes
//! to ("merge the smallest component into the largest").

/// Union-find over dense ids `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n], components: n }
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_and_count() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 2);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(0, 3));
        assert!(uf.same(1, 2));
        assert_eq!(uf.components(), 1);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
    }
}
