//! Body literals: atoms, negated atoms, comparisons, and the paper's
//! meta-level goals (`choice`, `least`, `most`, `next`).

use crate::symbol::Symbol;
use crate::term::{Expr, Term, VarId};

/// A (possibly non-ground) atom `p(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name. Arity is `args.len()`; `gbc-ast` validation
    /// checks each predicate is used with a single arity program-wide.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(pred: impl Into<Symbol>, args: Vec<Term>) -> Atom {
        Atom { pred: pred.into(), args }
    }

    /// Predicate arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// All variables in the atom, first-occurrence order, deduplicated.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for t in &self.args {
            t.collect_vars(&mut out);
        }
        let mut seen: Vec<VarId> = Vec::with_capacity(out.len());
        out.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(*v);
                true
            }
        });
        out
    }

    /// True when every argument is ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }
}

/// Comparison operators. `Eq` doubles as assignment when one side is a
/// single unbound variable at evaluation time (LDL convention: the goal
/// `I = I1 + 1` binds `I`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its arguments swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate the operator on a concrete ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// A body literal.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Positive atom `p(…)`.
    Pos(Atom),
    /// Negated atom `¬p(…)` (stratified negation).
    Neg(Atom),
    /// Comparison / assignment `lhs op rhs` over arithmetic expressions.
    Compare { op: CmpOp, lhs: Expr, rhs: Expr },
    /// `choice(L, R)` — the FD `L → R` must hold in the model. Both
    /// sides are term tuples; either may be empty (`choice((), (X, Y))`
    /// as in the TSP exit rule, meaning "exactly one `(X, Y)` overall").
    Choice { left: Vec<Term>, right: Vec<Term> },
    /// `least(C, G)` — among bindings satisfying the rest of the body,
    /// keep those minimal in `cost` for each value of the `group` tuple.
    /// `least(C)` is the empty-group form.
    Least { cost: Term, group: Vec<Term> },
    /// `most(C, G)` — dual of `least`.
    Most { cost: Term, group: Vec<Term> },
    /// `next(I)` — stage goal; macro-expands per Section 3 of the paper.
    Next { var: VarId },
}

impl Literal {
    /// Positive-atom constructor.
    pub fn pos(pred: impl Into<Symbol>, args: Vec<Term>) -> Literal {
        Literal::Pos(Atom::new(pred, args))
    }

    /// Negated-atom constructor.
    pub fn neg(pred: impl Into<Symbol>, args: Vec<Term>) -> Literal {
        Literal::Neg(Atom::new(pred, args))
    }

    /// Comparison constructor.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Literal {
        Literal::Compare { op, lhs, rhs }
    }

    /// Is this one of the meta-level goals (`choice`, `least`, `most`,
    /// `next`) rather than a first-order literal?
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            Literal::Choice { .. }
                | Literal::Least { .. }
                | Literal::Most { .. }
                | Literal::Next { .. }
        )
    }

    /// All variables mentioned by the literal (first-occurrence order,
    /// deduplicated).
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        let mut seen: Vec<VarId> = Vec::with_capacity(out.len());
        out.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(*v);
                true
            }
        });
        out
    }

    /// The variables of each top-level sub-term, in the same order the
    /// parser records argument spans ([`crate::span::LiteralSpans`]):
    /// atom arguments; `lhs`, `rhs` of a comparison; left then right
    /// tuple elements of `choice`; cost then group terms of an
    /// extremum; the `next` variable. Index `i` of the result aligns
    /// with `LiteralSpans::arg(i)`.
    pub fn arg_vars(&self) -> Vec<Vec<VarId>> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.args.iter().map(Term::vars).collect(),
            Literal::Compare { lhs, rhs, .. } => vec![lhs.vars(), rhs.vars()],
            Literal::Choice { left, right } => left.iter().chain(right).map(Term::vars).collect(),
            Literal::Least { cost, group } | Literal::Most { cost, group } => {
                std::iter::once(cost.vars()).chain(group.iter().map(Term::vars)).collect()
            }
            Literal::Next { var } => vec![vec![*var]],
        }
    }

    /// Append all variable occurrences to `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => {
                for t in &a.args {
                    t.collect_vars(out);
                }
            }
            Literal::Compare { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Literal::Choice { left, right } => {
                for t in left.iter().chain(right) {
                    t.collect_vars(out);
                }
            }
            Literal::Least { cost, group } | Literal::Most { cost, group } => {
                cost.collect_vars(out);
                for t in group {
                    t.collect_vars(out);
                }
            }
            Literal::Next { var } => out.push(*var),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_eval_table() {
        assert!(CmpOp::Eq.eval(Ordering::Equal));
        assert!(!CmpOp::Eq.eval(Ordering::Less));
        assert!(CmpOp::Ne.eval(Ordering::Greater));
        assert!(CmpOp::Lt.eval(Ordering::Less));
        assert!(!CmpOp::Lt.eval(Ordering::Equal));
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(CmpOp::Ge.eval(Ordering::Greater));
        assert!(!CmpOp::Gt.eval(Ordering::Equal));
    }

    #[test]
    fn cmp_op_flip_is_involutive_and_correct() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
    }

    #[test]
    fn literal_vars_cover_choice_tuples() {
        let l =
            Literal::Choice { left: vec![Term::var(3)], right: vec![Term::var(1), Term::var(3)] };
        assert_eq!(l.vars(), vec![VarId(3), VarId(1)]);
    }

    #[test]
    fn atom_vars_dedup() {
        let a = Atom::new("g", vec![Term::var(0), Term::var(1), Term::var(0)]);
        assert_eq!(a.vars(), vec![VarId(0), VarId(1)]);
        assert!(!a.is_ground());
    }

    #[test]
    fn meta_classification() {
        assert!(Literal::Next { var: VarId(0) }.is_meta());
        assert!(!Literal::pos("g", vec![]).is_meta());
    }
}
