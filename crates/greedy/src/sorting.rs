//! Example 5 — sorting a relation.
//!
//! ```text
//! sp(nil, 0, 0).
//! sp(X, C, I) <- next(I), p(X, C), least(C, I).
//! ```
//!
//! `sp(x, c, i)` ranks tuple `(x, c)` at position `i`; Section 6 notes
//! that although the program reads like insertion sort, the fixpoint
//! with the (R,Q,L) structure *runs heap-sort* — which experiment E2
//! measures.

use gbc_ast::{Symbol, Value};
use gbc_core::{compile, Compiled, CoreError, GreedyRun};
use gbc_storage::Database;

/// The paper's sort program, verbatim.
pub const PROGRAM: &str = "sp(nil, 0, 0).
sp(X, C, I) <- next(I), p(X, C), least(C, I).";

/// Compile the sort program.
pub fn compiled() -> Compiled {
    let program = gbc_parser::parse_program(PROGRAM).expect("static program text");
    compile(program).expect("sorting is stage-stratified")
}

/// Encode `(id, cost)` items as `p(X, C)` facts.
pub fn edb(items: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(x, c) in items {
        db.insert_values("p", vec![Value::int(x), Value::int(c)]);
    }
    db
}

/// Decode a run: `(id, cost, rank)` sorted by rank (the exit fact is
/// dropped).
pub fn decode(run: &GreedyRun) -> Vec<(i64, i64, i64)> {
    let mut out: Vec<(i64, i64, i64)> = run
        .db
        .facts_of(Symbol::intern("sp"))
        .iter()
        .filter_map(|r| Some((r[0].as_int()?, r[1].as_int()?, r[2].as_int()?)))
        .collect();
    out.sort_by_key(|&(_, _, i)| i);
    out
}

/// Sort `items` by cost with the greedy executor.
pub fn run_greedy(items: &[(i64, i64)]) -> Result<Vec<(i64, i64, i64)>, CoreError> {
    let run = compiled().run_greedy(&edb(items))?;
    Ok(decode(&run))
}

/// Sort with the generic choice fixpoint (A1 ablation baseline —
/// quadratic re-scan of candidates per step).
pub fn run_generic(items: &[(i64, i64)]) -> Result<Vec<(i64, i64, i64)>, CoreError> {
    let run = compiled().run_generic(&edb(items))?;
    Ok(decode(&run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_core::ProgramClass;

    #[test]
    fn classifies_as_stage_stratified() {
        let c = compiled();
        assert_eq!(*c.class(), ProgramClass::StageStratified { alternating: true });
        assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    }

    #[test]
    fn ranks_follow_costs() {
        let items = [(10, 30), (11, 10), (12, 20)];
        let sorted = run_greedy(&items).unwrap();
        assert_eq!(sorted, vec![(11, 10, 1), (12, 20, 2), (10, 30, 3)]);
    }

    #[test]
    fn random_permutations_sort_correctly() {
        let items = crate::workload::random_items(200, 42);
        let sorted = run_greedy(&items).unwrap();
        assert_eq!(sorted.len(), 200);
        // Ranks are 1..=n and costs ascend with rank.
        for (k, &(_, c, i)) in sorted.iter().enumerate() {
            assert_eq!(i, k as i64 + 1);
            assert_eq!(c, k as i64 + 1, "costs are a permutation of 1..=n");
        }
    }

    #[test]
    fn duplicate_costs_each_get_a_rank() {
        // Distinct ids with equal costs: Example 5's spec demands
        // i ≤ j ⟺ c ≤ c′ — ties in either rank order.
        let items = [(1, 5), (2, 5), (3, 1)];
        let sorted = run_greedy(&items).unwrap();
        assert_eq!(sorted.len(), 3);
        assert_eq!(sorted[0], (3, 1, 1));
        let costs: Vec<i64> = sorted.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(costs, vec![1, 5, 5]);
    }

    #[test]
    fn generic_path_agrees() {
        let items = crate::workload::random_items(24, 7);
        assert_eq!(run_greedy(&items).unwrap(), run_generic(&items).unwrap());
    }

    #[test]
    fn empty_relation_sorts_to_nothing() {
        assert!(run_greedy(&[]).unwrap().is_empty());
    }
}
