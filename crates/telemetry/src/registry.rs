//! A concurrent, named metrics registry for long-running processes —
//! the `gbc serve` observability plane.
//!
//! [`crate::metrics::Metrics`] is a *per-run* counter bundle: one
//! instance per evaluation, snapshotted when the run ends, and part of
//! the determinism contract (DESIGN.md §9) — its values must be
//! byte-identical at any thread count. A server needs the opposite
//! shape: *process-lifetime* series that accumulate across thousands of
//! runs, are scraped mid-flight, and may carry timing (which the §9
//! contract forbids in run counters). [`MetricsRegistry`] is that
//! second plane, kept deliberately separate so scraping it can never
//! perturb a run's pinned counters:
//!
//! * [`Counter`](crate::metrics::Counter)s and [`Gauge`]s are relaxed
//!   atomics — increments from request workers never take a lock;
//! * latency series are **shard-merged histograms** ([`SharedHist`]):
//!   each recording thread hashes to one of a fixed set of
//!   `Mutex<Histogram>` shards, so concurrent requests contend only
//!   rarely, and a scrape merges the shards into one exact aggregate
//!   ([`Histogram::merge`] is exact on a shared bucket grid);
//! * everything is registered by name (get-or-create, idempotent) and
//!   rendered in the Prometheus text exposition format by
//!   [`MetricsRegistry::render_prometheus`].
//!
//! Metric names follow the Prometheus conventions: `snake_case`, a
//! `gbc_` namespace prefix, unit suffixes (`_total` for counters,
//! `_seconds`/`_nanoseconds` spelled out). Labels are baked into the
//! registration key (`name{label="v"}`) — the cardinality is tiny
//! (endpoints, tenants), so a flat map beats a label tree.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::hist::Histogram;
use crate::json::Json;
use crate::metrics::Counter;

/// Number of histogram shards. Recording threads hash to a shard, so
/// this bounds worst-case lock contention; 8 covers the request
/// concurrency the in-tree pool reaches while keeping scrape-time
/// merging trivial.
const HIST_SHARDS: usize = 8;

/// A settable instantaneous value (pool occupancy, sessions loaded,
/// dictionary size). Unlike [`Counter`] it can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sharded, mergeable histogram: concurrent writers spread over
/// [`HIST_SHARDS`] mutex-protected shards; readers merge the shards
/// into one exact [`Histogram`] snapshot.
#[derive(Debug)]
pub struct SharedHist {
    shards: Vec<Mutex<Histogram>>,
}

impl Default for SharedHist {
    fn default() -> SharedHist {
        SharedHist { shards: (0..HIST_SHARDS).map(|_| Mutex::new(Histogram::default())).collect() }
    }
}

impl SharedHist {
    /// Record one value, taking only the recording thread's shard lock.
    pub fn record(&self, value: u64) {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let shard = (h.finish() as usize) % self.shards.len();
        self.shards[shard].lock().expect("hist shard").record(value);
    }

    /// Merge one whole histogram in (e.g. a finished run's per-γ-round
    /// latency histogram). Lands in shard 0; merge is exact either way.
    pub fn merge(&self, other: &Histogram) {
        self.shards[0].lock().expect("hist shard").merge(other);
    }

    /// The shard-merged aggregate. Exact: all shards share the default
    /// bucket grid, so this equals one histogram having recorded every
    /// value.
    pub fn snapshot(&self) -> Histogram {
        let mut all = Histogram::default();
        for shard in &self.shards {
            all.merge(&shard.lock().expect("hist shard"));
        }
        all
    }
}

/// One registered metric family, in registration order.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<SharedHist>),
}

/// The process-lifetime metrics plane: named counters, gauges, and
/// sharded histograms, renderable as Prometheus text.
///
/// Registration is get-or-create and idempotent; the hot path
/// (increment / record on an already-held `Arc`) never touches the
/// registry lock. Scraping takes the read lock plus each histogram's
/// shard locks one at a time — never any lock a request writer holds
/// for more than one bucket increment.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<Vec<(String, String, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        pick: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        if let Some(found) = self
            .metrics
            .read()
            .expect("registry lock")
            .iter()
            .find(|(n, _, _)| n == name)
            .and_then(|(_, _, m)| pick(m))
        {
            return found;
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        // Double-checked: another thread may have registered between
        // the read unlock and the write lock.
        if let Some(found) =
            metrics.iter().find(|(n, _, _)| n == name).and_then(|(_, _, m)| pick(m))
        {
            return found;
        }
        assert!(
            !metrics.iter().any(|(n, _, _)| n == name),
            "metric `{name}` already registered with a different type"
        );
        let (handle, metric) = make();
        metrics.push((name.to_owned(), help.to_owned(), metric));
        handle
    }

    /// Get or register a counter.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            |m| if let Metric::Counter(c) = m { Some(Arc::clone(c)) } else { None },
            || {
                let c = Arc::new(Counter::default());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// Get or register a gauge.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            |m| if let Metric::Gauge(g) = m { Some(Arc::clone(g)) } else { None },
            || {
                let g = Arc::new(Gauge::default());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// Get or register a sharded histogram.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric type.
    pub fn hist(&self, name: &str, help: &str) -> Arc<SharedHist> {
        self.get_or_insert(
            name,
            help,
            |m| if let Metric::Hist(h) = m { Some(Arc::clone(h)) } else { None },
            || {
                let h = Arc::new(SharedHist::default());
                (Arc::clone(&h), Metric::Hist(h))
            },
        )
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format, in registration order. Histograms render as summaries:
    /// `{quantile="..."}` series plus `_sum` and `_count`, which is the
    /// scrape-side convention for client-computed quantiles.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, metric) in self.metrics.read().expect("registry lock").iter() {
            // A labelled key (`name{l="v"}`) shares the family metadata
            // of its base name; emit HELP/TYPE against the base.
            let base = name.split('{').next().unwrap_or(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} counter\n"));
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} gauge\n"));
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Metric::Hist(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("# HELP {base} {help}\n# TYPE {base} summary\n"));
                    for (q, v) in [
                        ("0.5", snap.p50()),
                        ("0.9", snap.p90()),
                        ("0.99", snap.p99()),
                        ("0.999", snap.p999()),
                    ] {
                        out.push_str(&format!("{base}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{base}_sum {}\n", snap.sum()));
                    out.push_str(&format!("{base}_count {}\n", snap.count()));
                }
            }
        }
        out
    }

    /// The registry as one JSON object (`name -> value`), for the
    /// machine-readable side of the introspection plane. Histograms
    /// render through [`Histogram::to_json`].
    pub fn to_json(&self) -> Json {
        let fields = self
            .metrics
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, _, metric)| {
                let value = match metric {
                    Metric::Counter(c) => Json::UInt(c.get()),
                    Metric::Gauge(g) => Json::Int(g.get()),
                    Metric::Hist(h) => h.snapshot().to_json(),
                };
                (name.clone(), value)
            })
            .collect();
        Json::Obj(fields)
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.metrics.read().expect("registry lock");
        f.debug_struct("MetricsRegistry").field("metrics", &metrics.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shares_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("gbc_requests_total", "requests");
        let b = reg.counter("gbc_requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same counter");
        let g = reg.gauge("gbc_sessions", "sessions");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("gbc_sessions", "sessions").get(), 3);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn name_collisions_across_types_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("gbc_thing", "a counter");
        reg.gauge("gbc_thing", "now a gauge");
    }

    #[test]
    fn sharded_histogram_snapshot_merges_every_shard() {
        let reg = MetricsRegistry::new();
        let h = reg.hist("gbc_latency_ns", "latency");
        // Record from several threads so multiple shards are hit.
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..100u64 {
                        h.record(1000 * t + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 400, "no sample may be lost to sharding");
        assert!(snap.max() >= 3000);
    }

    #[test]
    fn merge_folds_a_whole_histogram_in() {
        let reg = MetricsRegistry::new();
        let h = reg.hist("gbc_rounds_ns", "rounds");
        let mut run = Histogram::default();
        run.record(10);
        run.record(20);
        h.merge(&run);
        h.merge(&run);
        assert_eq!(h.snapshot().count(), 4);
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_series() {
        let reg = MetricsRegistry::new();
        reg.counter("gbc_http_requests_total{endpoint=\"/run\"}", "HTTP requests").add(7);
        reg.gauge("gbc_pool_workers", "worker threads").set(4);
        let h = reg.hist("gbc_request_nanoseconds", "request latency");
        h.record(1000);
        h.record(2000);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP gbc_http_requests_total HTTP requests\n"));
        assert!(text.contains("# TYPE gbc_http_requests_total counter\n"));
        assert!(text.contains("gbc_http_requests_total{endpoint=\"/run\"} 7\n"));
        assert!(text.contains("# TYPE gbc_pool_workers gauge\n"));
        assert!(text.contains("gbc_pool_workers 4\n"));
        assert!(text.contains("# TYPE gbc_request_nanoseconds summary\n"));
        assert!(text.contains("gbc_request_nanoseconds{quantile=\"0.5\"}"));
        assert!(text.contains("gbc_request_nanoseconds_count 2\n"));
        assert!(text.contains("gbc_request_nanoseconds_sum 3000\n"));
    }

    #[test]
    fn json_rendering_carries_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a").inc();
        reg.gauge("b", "b").set(-2);
        reg.hist("c_ns", "c").record(5);
        let json = reg.to_json();
        assert_eq!(json.get("a_total"), Some(&Json::UInt(1)));
        assert_eq!(json.get("b"), Some(&Json::Int(-2)));
        assert_eq!(json.get("c_ns").and_then(|h| h.get("count")).and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn scraping_while_recording_loses_nothing_recorded_before_the_scrape() {
        // The mid-run-scrape contract: a snapshot taken concurrently
        // with recording sees a prefix of the stream (all samples
        // recorded-before), and the final snapshot sees everything.
        let reg = Arc::new(MetricsRegistry::new());
        let h = reg.hist("gbc_live_ns", "live");
        let c = reg.counter("gbc_live_total", "live");
        std::thread::scope(|s| {
            let hw = Arc::clone(&h);
            let cw = Arc::clone(&c);
            let writer = s.spawn(move || {
                for i in 0..2000u64 {
                    hw.record(i + 1);
                    cw.inc();
                }
            });
            for _ in 0..20 {
                let seen = h.snapshot().count();
                assert!(seen <= 2000);
                let _ = reg.render_prometheus();
            }
            writer.join().unwrap();
        });
        assert_eq!(h.snapshot().count(), 2000);
        assert_eq!(c.get(), 2000);
    }
}
