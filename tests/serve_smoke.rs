//! Real-TCP smoke test for `gbc serve` — the server is bound on an
//! ephemeral port and every interaction goes through `std::net` sockets
//! via the in-tree HTTP client, exactly as an external client would.
//!
//! The contract under test is the PR's acceptance bar:
//!
//! * a program loaded over `POST /load` and evaluated by **concurrent**
//!   `/run` sessions returns results **byte-identical** to `gbc run
//!   --threads N` on the same files, with identical pinned semantic
//!   counters on every request;
//! * a `GET /metrics` scrape taken **while runs are in flight** changes
//!   neither results nor counters (the DESIGN.md §9 determinism
//!   contract survives observation), and the scrape itself carries the
//!   §13 metric families;
//! * `/stats`, `/journal`, `/programs`, `/healthz` answer, and
//!   malformed requests are a structured 400, not a hang or a crash.

use std::path::PathBuf;

use gbc_serve::{client, Server, Session};
use gbc_storage::Database;
use gbc_telemetry::Json;

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; fixtures live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

/// What `gbc run programs/prim.dl programs/graph_small.dl --threads 2`
/// prints (minus the trailing newline), plus its counter snapshot —
/// computed in-process through the same layers the CLI uses.
fn expected_prim_run() -> (String, Json) {
    let root = repo_root();
    let mut source = String::new();
    for f in ["programs/prim.dl", "programs/graph_small.dl"] {
        source.push_str(&std::fs::read_to_string(root.join(f)).unwrap());
        source.push('\n');
    }
    let program = gbc_parser::parse_program(&source).unwrap();
    let compiled = gbc_core::compile(program).unwrap();
    let tel = gbc_telemetry::Telemetry::enabled();
    let run = compiled
        .run_greedy_telemetry(&Database::new(), gbc_core::GreedyConfig::with_threads(2), &tel)
        .unwrap();
    (run.db.canonical_form(), tel.snapshot().to_json())
}

fn start_server() -> (String, gbc_serve::ServerHandle) {
    let server = Server::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, server.spawn(4))
}

fn load_prim(addr: &str) {
    let root = repo_root();
    let body = format!(
        "{{\"name\": \"prim\", \"files\": [\"{}\", \"{}\"]}}",
        root.join("programs/prim.dl").display(),
        root.join("programs/graph_small.dl").display()
    );
    let (status, reply) = client::post_json(addr, "/load", &body).expect("POST /load");
    assert_eq!(status, 200, "load failed: {reply}");
    let json = Json::parse(reply.trim()).unwrap();
    assert_eq!(json.get("greedy_plan"), Some(&Json::Bool(true)));
}

#[test]
fn concurrent_runs_match_gbc_run_byte_for_byte() {
    let (expected_result, expected_counters) = expected_prim_run();
    let (addr, handle) = start_server();
    load_prim(&addr);

    // Four concurrent clients, each issuing two /run requests at
    // --threads 2, with a /metrics scrape racing them from a fifth
    // thread mid-run.
    let results: Vec<(String, Json)> = std::thread::scope(|s| {
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..2 {
                        let (status, reply) = client::post_json(
                            &addr,
                            "/run",
                            "{\"session\": \"prim\", \"threads\": 2}",
                        )
                        .expect("POST /run");
                        assert_eq!(status, 200, "{reply}");
                        let json = Json::parse(reply.trim()).unwrap();
                        out.push((
                            json.get("result").and_then(|r| r.as_str()).unwrap().to_owned(),
                            json.get("counters").unwrap().clone(),
                        ));
                    }
                    out
                })
            })
            .collect();
        let scraper = {
            let addr = addr.clone();
            s.spawn(move || {
                for _ in 0..10 {
                    let (status, text) = client::get(&addr, "/metrics").expect("GET /metrics");
                    assert_eq!(status, 200);
                    assert!(text.contains("# TYPE gbc_runs_total counter"), "{text}");
                }
            })
        };
        scraper.join().unwrap();
        clients.into_iter().flat_map(|c| c.join().unwrap()).collect()
    });

    assert_eq!(results.len(), 8);
    for (result, counters) in &results {
        assert_eq!(result, &expected_result, "server result differs from `gbc run`");
        let pinned = ["gamma_steps", "heap_pops", "tuples_derived", "flat_rounds"];
        for key in pinned {
            assert_eq!(
                counters.get(key),
                expected_counters.get(key),
                "pinned counter `{key}` drifted under concurrency + mid-run scrape"
            );
        }
    }

    // After the storm: the metrics plane saw every run.
    let (status, text) = client::get(&addr, "/metrics").expect("GET /metrics");
    assert_eq!(status, 200);
    assert!(text.contains("gbc_runs_total 8\n"), "{text}");
    assert!(text.contains("gbc_http_requests_total{endpoint=\"/run\"} 8\n"));
    assert!(text.contains("gbc_gamma_round_nanoseconds_count"));
    assert!(text.contains("gbc_sessions_loaded 1\n"));
    handle.shutdown();
}

#[test]
fn introspection_endpoints_answer_over_tcp() {
    let (addr, handle) = start_server();
    load_prim(&addr);
    let (status, reply) =
        client::post_json(&addr, "/run", "{\"session\": \"prim\", \"journal\": true}").unwrap();
    assert_eq!(status, 200, "{reply}");

    let (status, body) = client::get(&addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));

    let (status, body) = client::get(&addr, "/programs").unwrap();
    assert_eq!(status, 200);
    let json = Json::parse(body.trim()).unwrap();
    let programs = json.get("programs").and_then(|p| p.as_arr()).unwrap();
    assert_eq!(programs.len(), 1);
    assert_eq!(programs[0].get("name").and_then(|n| n.as_str()), Some("prim"));
    assert_eq!(programs[0].get("runs").and_then(|r| r.as_u64()), Some(1));

    let (status, body) = client::get(&addr, "/stats?session=prim").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(body.trim()).unwrap();
    assert_eq!(
        stats.get("schema_version").and_then(|v| v.as_u64()),
        Some(gbc_telemetry::STATS_SCHEMA_VERSION)
    );
    assert!(stats.get("counters").is_some() && stats.get("latency").is_some());
    assert!(stats.get("dictionary").is_some() && stats.get("journal").is_some());

    let (status, jsonl) = client::get(&addr, "/journal?session=prim").unwrap();
    assert_eq!(status, 200);
    let lines: Vec<&str> = jsonl.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "journaled run produced no events");
    for line in &lines {
        Json::parse(line).unwrap_or_else(|e| panic!("journal line not JSON ({e}): {line}"));
    }
    assert!(lines.iter().any(|l| l.contains("\"type\":\"stage_commit\"")), "{jsonl:?}");
    handle.shutdown();
}

#[test]
fn error_paths_are_structured_not_fatal() {
    let (addr, handle) = start_server();

    let (status, body) = client::post_json(&addr, "/run", "{\"session\": \"ghost\"}").unwrap();
    assert_eq!(status, 404);
    assert!(body.contains("\"error\""));

    let (status, body) = client::post_json(&addr, "/run", "{not json").unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""));

    // The depth-limited JSON parser guards the request body path.
    let bomb = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    let (status, body) = client::post_json(&addr, "/run", &bomb).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("nesting deeper than"), "{body}");

    let (status, _) = client::get(&addr, "/nowhere").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(&addr, "DELETE", "/metrics", None).unwrap();
    assert_eq!(status, 405);

    // A raw non-HTTP payload answers 400 (the server survives garbage).
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // And the server still answers normally afterwards.
    let (status, _) = client::get(&addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn load_rejects_bad_programs_with_rendered_diagnostics() {
    let (addr, handle) = start_server();
    let (status, body) =
        client::post_json(&addr, "/load", "{\"name\": \"broken\", \"program\": \"p(X) <- q(Y).\"}")
            .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("\"error\""), "{body}");

    let session = Session::new(
        "ok",
        "<inline>",
        gbc_core::compile(gbc_parser::parse_program("p(1).").unwrap()).unwrap(),
        Database::new(),
    );
    drop(session); // Session construction stays available to embedders.
    handle.shutdown();
}
