//! Compile-time analysis: stage-variable inference and the
//! stage-stratification checker of Section 4 — the paper's claim that
//! greedy programs form "a syntactic class … easily recognized at
//! compile time".

pub mod classify;
pub mod constraints;
pub mod stage;

pub use classify::{classify, Analysis, CliqueInfo, ProgramClass, StageViolation};
pub use constraints::Constraints;
pub use stage::{infer_stages, StageConflict, StageInfo};
