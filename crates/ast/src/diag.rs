//! Compiler-grade diagnostics: stable error codes, severities, labeled
//! spans, and a rustc-style source-snippet renderer.
//!
//! Every static check in the pipeline (parser, AST validation, the
//! Section 4 stage-stratification analysis, the semantic lint pass)
//! reports through this type, so `gbc check` can point at the exact
//! offending literal and name the violated paper condition.
//!
//! # Error-code registry
//!
//! | code   | severity | meaning |
//! |--------|----------|---------|
//! | GBC001 | error    | syntax error (lexer or parser) |
//! | GBC002 | error    | predicate used with inconsistent arities |
//! | GBC003 | error    | unsafe (non-range-restricted) variable |
//! | GBC004 | error    | fact with a non-ground head |
//! | GBC005 | error    | `next(I)` stage variable missing from the rule head |
//! | GBC006 | error    | more than one `next` goal in a rule |
//! | GBC010 | error    | negation/extrema through recursion (unstratified) |
//! | GBC011 | warning  | predicate inferred with conflicting stage positions |
//! | GBC012 | warning  | stage-clique predicate has no stage argument |
//! | GBC013 | warning  | predicate defined by both next and flat recursive rules |
//! | GBC014 | warning  | next rule has no head stage variable |
//! | GBC015 | warning  | next-rule body stage variable not provably `<` the head stage |
//! | GBC016 | warning  | next-rule extremum group is neither empty nor the stage variable |
//! | GBC017 | warning  | flat-rule body stage variable not provably `≤`/`<` the head stage |
//! | GBC018 | warning  | flat rule applies an extremum over clique predicates |
//! | GBC020 | warning  | flat rules are recursive: alternation defeated (`Q^∞` needed) |
//! | GBC021 | warning  | `choice` argument is not a variable |
//! | GBC022 | warning  | stage variable used as an extremum cost |
//! | GBC023 | warning  | extremum group variable does not appear in the rule head |
//! | GBC024 | warning  | dead predicate: defined by plain rules, never used |
//! | GBC025 | warning  | singleton variable (occurs once; use `_`) |
//! | GBC026 | warning  | type conflict at an interpreted position (comparison/arithmetic) |
//! | GBC027 | warning  | dead rule: body is provably unsatisfiable |
//! | GBC028 | warning  | unreachable predicate: never feeds a program answer |
//! | GBC029 | warning  | head term at a stage position has a non-`Int` type |
//! | GBC030 | warning  | extremum cost column inferred as non-`Int` (no fast heap) |
//! | GBC031 | warning  | constant-foldable comparison (always true or always false) |
//! | GBC032 | note     | next rule eligible for the bindings-free feed fast path |
//!
//! Codes GBC011–GBC018 are warnings, not errors: a program that fails
//! stage stratification is still evaluable by the generic choice
//! fixpoint (Theorem 1 holds outside the greedy class); the diagnostics
//! explain why the Section 6 executor will not be used. GBC026–GBC031
//! come from the whole-program type/reachability analysis (`gbc
//! analyze`); GBC032 is a note — purely informational, never counted
//! against `--deny-warnings`.

use std::fmt;

use crate::span::{SourceMap, Span};

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational (e.g. a fast path the planner will take);
    /// never counted by `--deny-warnings`.
    Note,
    /// Advisory; execution proceeds (possibly on a fallback path).
    Warning,
    /// The program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A labeled span inside a diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Label {
    /// What the label points at.
    pub span: Span,
    /// Short message rendered next to the underline.
    pub message: String,
    /// Primary labels are underlined with `^`, secondary with `-`.
    pub primary: bool,
}

/// A single diagnostic: stable code, severity, primary message, labeled
/// spans, and free-form notes/help lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from the GBC0xx registry (see module docs).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Headline message.
    pub message: String,
    /// Labeled spans; the first primary label is the diagnostic's anchor.
    pub labels: Vec<Label>,
    /// `= note:` lines (background: which paper condition is violated).
    pub notes: Vec<String>,
    /// `= help:` lines (what to change).
    pub helps: Vec<String>,
}

impl Diagnostic {
    /// New error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
            helps: Vec::new(),
        }
    }

    /// New warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(code, message) }
    }

    /// New note diagnostic (informational only).
    pub fn note(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Note, ..Diagnostic::error(code, message) }
    }

    /// Attach the primary label.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label { span, message: message.into(), primary: true });
        self
    }

    /// Attach a secondary label.
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label { span, message: message.into(), primary: false });
        self
    }

    /// Attach a `= note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attach a `= help:` line.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.helps.push(help.into());
        self
    }

    /// The span of the first primary label (the diagnostic's anchor).
    pub fn primary_span(&self) -> Option<Span> {
        self.labels.iter().find(|l| l.primary).or(self.labels.first()).map(|l| l.span)
    }

    /// Render the diagnostic as a rustc-style snippet block.
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}[{}]: {}\n", self.severity, self.code, self.message));

        // Gutter width: widest line number among rendered labels.
        let locs: Vec<_> = self
            .labels
            .iter()
            .filter(|l| !l.span.is_dummy())
            .filter_map(|l| sm.locate(l.span.start).map(|loc| (l, loc)))
            .collect();
        let gutter = locs.iter().map(|(_, loc)| loc.line.to_string().len()).max().unwrap_or(1);
        let pad = " ".repeat(gutter);

        let mut last_rendered: Option<(String, u32)> = None;
        for (i, (label, loc)) in locs.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!("{pad}--> {}:{}:{}\n", loc.file, loc.line, loc.col));
                out.push_str(&format!("{pad} |\n"));
            }
            // Re-print the source line unless the previous label already did.
            let key = (loc.file.clone(), loc.line);
            if last_rendered.as_ref() != Some(&key) {
                if i > 0 {
                    out.push_str(&format!("{pad} |\n"));
                    if last_rendered.as_ref().map(|(f, _)| f) != Some(&loc.file) {
                        out.push_str(&format!("{pad}--> {}:{}:{}\n", loc.file, loc.line, loc.col));
                        out.push_str(&format!("{pad} |\n"));
                    }
                }
                out.push_str(&format!("{:>gutter$} | {}\n", loc.line, loc.line_text));
                last_rendered = Some(key);
            }
            // Underline, clamped to the rendered line.
            let width = (label.span.end.saturating_sub(label.span.start) as usize)
                .min(loc.line_text.len().saturating_sub((loc.col as usize).saturating_sub(1)))
                .max(1);
            let mark = if label.primary { "^" } else { "-" };
            out.push_str(&format!(
                "{pad} | {}{}{}{}\n",
                " ".repeat((loc.col as usize).saturating_sub(1)),
                mark.repeat(width),
                if label.message.is_empty() { "" } else { " " },
                label.message,
            ));
        }
        if !locs.is_empty() && (!self.notes.is_empty() || !self.helps.is_empty()) {
            out.push_str(&format!("{pad} |\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("{pad} = note: {n}\n"));
        }
        for h in &self.helps {
            out.push_str(&format!("{pad} = help: {h}\n"));
        }
        out
    }
}

/// Render a batch of diagnostics (sorted by primary span, errors and
/// warnings interleaved in source order), separated by blank lines.
pub fn render_all(diags: &[Diagnostic], sm: &SourceMap) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| d.primary_span().map(|s| s.start).unwrap_or(u32::MAX));
    let mut out = String::new();
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&d.render(sm));
    }
    out
}

/// Count of errors in a batch.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.severity == Severity::Error).count()
}

/// Count of warnings in a batch.
pub fn warning_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.severity == Severity::Warning).count()
}

/// Count of notes in a batch.
pub fn note_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.severity == Severity::Note).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_single_label_snippet() {
        let sm = SourceMap::single("t.dl", "p(X) <- q(X), r(Y).\n");
        let d = Diagnostic::error("GBC003", "unsafe variable `Y`")
            .with_label(Span::new(16, 17), "only occurrence")
            .with_note("every variable must be bound by a positive body atom");
        let r = d.render(&sm);
        assert!(r.contains("error[GBC003]: unsafe variable `Y`"), "{r}");
        assert!(r.contains("--> t.dl:1:17"), "{r}");
        assert!(r.contains("1 | p(X) <- q(X), r(Y)."), "{r}");
        assert!(r.contains("^ only occurrence"), "{r}");
        assert!(r.contains("= note: every variable"), "{r}");
    }

    #[test]
    fn secondary_labels_use_dashes_and_share_lines() {
        let sm = SourceMap::single("t.dl", "p(X, I) <- next(I), q(X, J).\n");
        let d = Diagnostic::warning("GBC015", "missing stage guard")
            .with_label(Span::new(20, 27), "stage variable `J` bound here")
            .with_secondary(Span::new(11, 18), "new stage minted here");
        let r = d.render(&sm);
        assert!(r.contains("^^^^^^^ stage variable `J` bound here"), "{r}");
        assert!(r.contains("------- new stage minted here"), "{r}");
        // The source line renders once, not per label.
        assert_eq!(r.matches("p(X, I) <- next(I)").count(), 1, "{r}");
    }

    #[test]
    fn render_all_sorts_by_span() {
        let sm = SourceMap::single("t.dl", "a(x).\nb(y).\n");
        let d1 = Diagnostic::warning("GBC025", "later").with_label(Span::new(6, 7), "");
        let d2 = Diagnostic::error("GBC002", "earlier").with_label(Span::new(0, 1), "");
        let all = render_all(&[d1, d2], &sm);
        let first = all.find("earlier").unwrap();
        let second = all.find("later").unwrap();
        assert!(first < second, "{all}");
        assert_eq!(error_count(&[Diagnostic::error("GBC002", "x")]), 1);
        assert_eq!(warning_count(&[Diagnostic::warning("GBC025", "x")]), 1);
    }

    #[test]
    fn dummy_spans_render_without_snippets() {
        let sm = SourceMap::single("t.dl", "p(x).\n");
        let d = Diagnostic::error("GBC010", "whole-program condition")
            .with_note("no location for this one");
        let r = d.render(&sm);
        assert!(r.contains("error[GBC010]: whole-program condition"), "{r}");
        assert!(r.contains("= note: no location"), "{r}");
        assert!(!r.contains("-->"), "{r}");
    }
}
