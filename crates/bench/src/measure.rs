//! Timing and scaling-fit utilities.

use std::time::Instant;

/// One measurement: problem size and elapsed seconds.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Problem size (n, e, …).
    pub size: u64,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// Time one execution of `f`, returning `(result, seconds)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Least-squares slope of `log(time)` against `log(size)` — the
/// empirical scaling exponent. `O(n)` ⇒ ≈1, `O(n log n)` ⇒ slightly
/// above 1, `O(n²)` ⇒ ≈2.
pub fn fit_exponent(samples: &[Sample]) -> f64 {
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.secs > 0.0 && s.size > 0)
        .map(|s| ((s.size as f64).ln(), s.secs.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(f: impl Fn(f64) -> f64) -> Vec<Sample> {
        [1024u64, 4096, 16384, 65536]
            .iter()
            .map(|&size| Sample { size, secs: f(size as f64) })
            .collect()
    }

    #[test]
    fn linear_fits_to_one() {
        let e = fit_exponent(&samples(|n| 3e-6 * n));
        assert!((e - 1.0).abs() < 0.01, "{e}");
    }

    #[test]
    fn quadratic_fits_to_two() {
        let e = fit_exponent(&samples(|n| 1e-9 * n * n));
        assert!((e - 2.0).abs() < 0.01, "{e}");
    }

    #[test]
    fn nlogn_fits_between() {
        let e = fit_exponent(&samples(|n| 1e-7 * n * n.ln()));
        assert!(e > 1.05 && e < 1.25, "{e}");
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(fit_exponent(&[]).is_nan());
        assert!(fit_exponent(&[Sample { size: 8, secs: 1.0 }]).is_nan());
    }

    #[test]
    fn time_once_returns_the_value() {
        let (v, secs) = time_once(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
