//! Theorem 1 outside the greedy class: a program with stage cliques
//! that fail stage stratification still runs under the generic choice
//! fixpoint, and the run is a stable model of the rewritten negative
//! program. The greedy executor's complexity guarantees (Theorem 3) do
//! not apply — `gbc check` reports that as warnings — but correctness
//! does.

use gbc_core::{check_program, compile, verify_stable_model, ProgramClass};
use gbc_storage::Database;

/// Prim without the `J < I` stage guard: not stage-stratified
/// (GBC015), evaluated by the generic fixpoint.
const NOT_STAGE_STRATIFIED: &str = "
prm(nil, a, 0, 0).
prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), least(C, I), choice(Y, X).
new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
g(a, b, 10). g(b, a, 10).
g(a, c, 30). g(c, a, 30).
g(b, c, 20). g(c, b, 20).
";

#[test]
fn generic_fixpoint_run_is_a_stable_model_outside_the_greedy_class() {
    let program = gbc_parser::parse_program(NOT_STAGE_STRATIFIED).unwrap();

    // The check pass classifies it out of the greedy class…
    let report = check_program(&program);
    assert!(
        matches!(report.analysis.class, ProgramClass::NotStageStratified { .. }),
        "{:?}",
        report.analysis.class
    );
    assert!(report.diagnostics.iter().any(|d| d.code == "GBC015"));
    assert_eq!(report.errors(), 0, "stage violations are warnings, not errors");

    // …so compile() has no greedy plan and run() falls back to the
    // generic choice fixpoint.
    let compiled = compile(program.clone()).unwrap();
    assert!(!compiled.has_greedy_plan());
    let edb = Database::new();
    let run = compiled.run_generic(&edb).unwrap();
    assert!(!run.chosen.is_empty(), "choice rules fired");

    // Theorem 1: the run is a stable model of the negative program.
    let ok = verify_stable_model(&program, &edb, &run).unwrap();
    assert!(ok, "generic choice fixpoint must produce a stable model");
}
