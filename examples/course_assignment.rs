//! Example 1 of the paper: assign one student per course and one course
//! per student with two `choice` goals, then enumerate *all* choice
//! models (the paper lists exactly three).
//!
//! ```sh
//! cargo run --example course_assignment
//! ```

use gbc_ast::Symbol;
use gbc_engine::{ChoiceFixpoint, SeededRandom};
use gbc_greedy::student;

fn main() {
    let program = gbc_parser::parse_program(student::PROGRAM).expect("parse");
    let facts = student::paper_facts();
    println!("program:\n{program}");

    // One run, seeded: a single non-deterministically chosen model.
    let mut fixpoint = ChoiceFixpoint::new(&program, &facts).expect("fixpoint");
    let model = fixpoint.run(&mut SeededRandom::new(7)).expect("run");
    println!("one choice model (seed 7):");
    for row in model.facts_of(Symbol::intern("a_st")) {
        println!("  a_st{row}");
    }

    // All models, exhaustively (Lemma 1/2 completeness).
    let models = student::enumerate_models().expect("enumerate");
    println!("\nall {} choice models:", models.len());
    for (i, m) in models.iter().enumerate() {
        let assignments: Vec<String> = m
            .facts_of(Symbol::intern("a_st"))
            .iter()
            .map(|r| format!("{}→{}", r[1], r[0]))
            .collect();
        println!("  M{}: {}", i + 1, assignments.join(", "));
    }
    assert_eq!(models.len(), 3, "the paper lists M1, M2, M3");
}
