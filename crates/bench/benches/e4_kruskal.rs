//! E4 — Section 6, "Kruskal: Complexity of Example 8".
//!
//! The declarative evaluation relabels a component table per accepted
//! edge — `O(e·n)` — while the classical union-find method runs in
//! `O(e log e)`. The paper: "The difference is due to the fact that the
//! classical algorithm 'merges' the smallest component into the
//! 'largest'." The gap must therefore *grow with n*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbc_baselines::kruskal::{kruskal_mst, kruskal_relabel};
use gbc_greedy::{kruskal, workload};

fn bench_kruskal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_kruskal");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[256usize, 512, 1024, 2048] {
        let g = workload::connected_graph(n, 3 * n, 1_000_000, 42);
        group.throughput(Throughput::Elements(g.num_edges() as u64));

        group.bench_with_input(BenchmarkId::new("declarative_stage_views", n), &g, |b, g| {
            b.iter(|| kruskal::run_stage_views(g).tree.len());
        });

        group.bench_with_input(BenchmarkId::new("relabel_model", n), &g, |b, g| {
            b.iter(|| kruskal_relabel(g.n, &g.edges).len());
        });

        group.bench_with_input(BenchmarkId::new("classical_union_find", n), &g, |b, g| {
            b.iter(|| kruskal_mst(g.n, &g.edges).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kruskal);
criterion_main!(benches);
