//! Program classification: the compile-time recognition of
//! stage-stratified programs (Section 4).

use std::collections::{HashMap, VecDeque};

use gbc_ast::{Literal, Program, Rule, Symbol, Term, VarId};
use gbc_engine::graph::DiGraph;

use crate::analysis::constraints::Constraints;
use crate::analysis::stage::{infer_stages, StageConflict, StageInfo};

/// One way a stage clique fails the Section 4 stage-stratification
/// conditions. Rule/literal fields are indices into `program.rules` and
/// the rule's body, so the diagnostic renderer can point at the exact
/// source span. Variants map 1:1 onto the `GBC011`–`GBC018` codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageViolation {
    /// GBC011: a predicate was inferred with two distinct stage
    /// positions (Kruskal's `comp`, Example 8).
    StageConflict(StageConflict),
    /// GBC012: a clique predicate has no stage argument at all.
    NoStageArg { pred: Symbol },
    /// GBC013: a predicate is defined by both next and flat recursive
    /// rules; `rule` is the second-kind rule that exposed the mix.
    MixedRuleKinds { pred: Symbol, rule: usize },
    /// GBC014: a next rule whose head does not hold the stage variable
    /// at the stage position.
    NextRuleNoHeadStageVar { rule: usize },
    /// GBC015: a next rule's body stage variable is not provably `<`
    /// the head stage variable (strict stage stratification).
    BodyStageNotLess { rule: usize, var: VarId, negated: bool },
    /// GBC016: a next-rule extremum whose group is neither empty nor
    /// the stage variable — the paper's `least(C, _)` counter-example.
    BadNextExtremumGroup { rule: usize, literal: usize, least: bool },
    /// GBC017: a flat rule's body stage variable is not provably `≤`
    /// (`<` under negation) the head stage variable.
    FlatStageNotOrdered { rule: usize, var: VarId, negated: bool },
    /// GBC018: a flat rule applies an extremum over clique predicates
    /// (the Kruskal situation, outside strict stage stratification).
    ExtremumOverClique { rule: usize },
}

impl StageViolation {
    /// The diagnostic code this violation renders under.
    pub fn code(&self) -> &'static str {
        match self {
            StageViolation::StageConflict(_) => "GBC011",
            StageViolation::NoStageArg { .. } => "GBC012",
            StageViolation::MixedRuleKinds { .. } => "GBC013",
            StageViolation::NextRuleNoHeadStageVar { .. } => "GBC014",
            StageViolation::BodyStageNotLess { .. } => "GBC015",
            StageViolation::BadNextExtremumGroup { .. } => "GBC016",
            StageViolation::FlatStageNotOrdered { .. } => "GBC017",
            StageViolation::ExtremumOverClique { .. } => "GBC018",
        }
    }

    /// The index of the rule the violation is anchored to, when any.
    pub fn rule(&self) -> Option<usize> {
        match self {
            StageViolation::StageConflict(_) | StageViolation::NoStageArg { .. } => None,
            StageViolation::MixedRuleKinds { rule, .. }
            | StageViolation::NextRuleNoHeadStageVar { rule }
            | StageViolation::BodyStageNotLess { rule, .. }
            | StageViolation::BadNextExtremumGroup { rule, .. }
            | StageViolation::FlatStageNotOrdered { rule, .. }
            | StageViolation::ExtremumOverClique { rule } => Some(*rule),
        }
    }

    /// A one-line human-readable explanation (the old free-text note).
    pub fn describe(&self, program: &Program) -> String {
        let rule = |ri: &usize| &program.rules[*ri];
        match self {
            StageViolation::StageConflict(c) => c.to_string(),
            StageViolation::NoStageArg { pred } => {
                format!("clique predicate `{pred}` has no stage argument")
            }
            StageViolation::MixedRuleKinds { pred, .. } => {
                format!("predicate `{pred}` is defined by both next and flat recursive rules")
            }
            StageViolation::NextRuleNoHeadStageVar { rule: ri } => {
                format!("next rule `{}` has no head stage variable", rule(ri))
            }
            StageViolation::BodyStageNotLess { rule: ri, var, negated } => format!(
                "next rule `{}`: body stage variable `{}`{} is not provably < the \
                 head stage variable",
                rule(ri),
                rule(ri).var_name(*var),
                if *negated { " (negated atom)" } else { "" },
            ),
            StageViolation::BadNextExtremumGroup { rule: ri, least, .. } => format!(
                "next rule `{}`: the group of `{}` must be empty or the stage \
                 variable (the paper's least(C, _) counter-example loses stage \
                 stratification)",
                rule(ri),
                if *least { "least" } else { "most" },
            ),
            StageViolation::FlatStageNotOrdered { rule: ri, var, negated } => format!(
                "flat rule `{}`: body stage variable `{}`{} is not provably {} the \
                 head stage variable",
                rule(ri),
                rule(ri).var_name(*var),
                if *negated { " (negated atom)" } else { "" },
                if *negated { "<" } else { "≤" },
            ),
            StageViolation::ExtremumOverClique { rule: ri } => format!(
                "flat rule `{}` applies an extremum over clique predicates \
                 (the Kruskal situation — Example 8 is outside strict stage \
                 stratification)",
                rule(ri)
            ),
        }
    }
}

/// The syntactic class of a program, per the paper's taxonomy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramClass {
    /// Horn Datalog: no negation, no meta constructs.
    Horn,
    /// Negation/extrema present, stratified — evaluable by the perfect-
    /// model procedure.
    Stratified,
    /// `choice` goals but no `next`: locally stratified modulo choice
    /// (Examples 1–3); evaluable by the generic choice fixpoint.
    Choice,
    /// The paper's headline class (Theorems 1–3): stage cliques, next
    /// rules strictly stage-stratified, flat rules stage-stratified.
    /// `alternating` ⇔ the flat rules alone are non-recursive, so
    /// `Q^∞(γ(S)) = Q^n(γ(S))` (Section 4's Alternating fixpoint).
    StageStratified { alternating: bool },
    /// Stage cliques exist but some check fails — e.g. the paper's
    /// Kruskal program (Example 8). Still evaluable by the generic
    /// choice fixpoint when locally stratified modulo choice, but
    /// outside the greedy executor's guarantees.
    NotStageStratified { violations: Vec<StageViolation> },
    /// Negation/extrema through recursion without stage discipline.
    /// `cycle` traces the offending dependency loop: it starts at the
    /// rule head owning the negative/extrema dependency, and the edge
    /// from the last predicate back to the first closes the loop.
    Unstratified { cycle: Vec<Symbol> },
}

impl ProgramClass {
    /// A compact one-line description (the `Debug` form of the failing
    /// variants can be arbitrarily long).
    pub fn summary(&self) -> String {
        match self {
            ProgramClass::Horn => "Horn".into(),
            ProgramClass::Stratified => "Stratified".into(),
            ProgramClass::Choice => "Choice".into(),
            ProgramClass::StageStratified { alternating: true } => {
                "StageStratified (alternating)".into()
            }
            ProgramClass::StageStratified { alternating: false } => {
                "StageStratified (non-alternating)".into()
            }
            ProgramClass::NotStageStratified { violations } => {
                format!("NotStageStratified ({} violation(s))", violations.len())
            }
            ProgramClass::Unstratified { cycle } => {
                let trace: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
                format!("Unstratified (cycle: {})", trace.join(" → "))
            }
        }
    }
}

/// Analysis of one recursive clique.
#[derive(Clone, Debug)]
pub struct CliqueInfo {
    /// The clique's predicates, name-sorted.
    pub preds: Vec<Symbol>,
    /// Indices (into `program.rules`) of the clique's next rules.
    pub next_rules: Vec<usize>,
    /// Indices of the clique's flat rules (recursive, no `next`).
    pub flat_rules: Vec<usize>,
    /// Indices of exit rules (head in clique, body free of clique preds).
    pub exit_rules: Vec<usize>,
    /// Does this clique contain a stage (next-defined) predicate?
    pub is_stage_clique: bool,
    /// Did every stage-stratification check pass?
    pub stage_stratified: bool,
    /// Are the flat rules alone non-recursive (alternating evaluation)?
    pub alternating: bool,
    /// Stage-stratification failures, if any.
    pub violations: Vec<StageViolation>,
}

/// Full analysis result.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Stage-argument table.
    pub stages: StageInfo,
    /// Recursive cliques (only those with ≥1 rule).
    pub cliques: Vec<CliqueInfo>,
    /// Overall classification.
    pub class: ProgramClass,
}

/// Classify `program`. The program should already be validated.
pub fn classify(program: &Program) -> Analysis {
    let stages = infer_stages(program);

    // Dependency graph with self-edges for next rules (the expanded
    // rule reads its own head predicate for the previous stage).
    let mut pred_ids: HashMap<Symbol, usize> = HashMap::new();
    let mut preds: Vec<Symbol> = Vec::new();
    let intern = |s: Symbol, pred_ids: &mut HashMap<Symbol, usize>, preds: &mut Vec<Symbol>| {
        *pred_ids.entry(s).or_insert_with(|| {
            preds.push(s);
            preds.len() - 1
        })
    };
    for r in &program.rules {
        intern(r.head.pred, &mut pred_ids, &mut preds);
        for l in &r.body {
            if let Literal::Pos(a) | Literal::Neg(a) = l {
                intern(a.pred, &mut pred_ids, &mut preds);
            }
        }
    }
    let mut graph = DiGraph::new(preds.len());
    for r in &program.rules {
        let h = pred_ids[&r.head.pred];
        if r.has_next() {
            graph.add_edge(h, h);
        }
        for l in &r.body {
            if let Literal::Pos(a) | Literal::Neg(a) = l {
                graph.add_edge(h, pred_ids[&a.pred]);
            }
        }
    }
    let sccs = graph.sccs();
    let mut comp_of = vec![usize::MAX; preds.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &p in comp {
            comp_of[p] = ci;
        }
    }

    // A clique is *recursive* if it has >1 predicate or a self-edge.
    let mut cliques = Vec::new();
    for comp in &sccs {
        let recursive = comp.len() > 1 || graph.has_edge(comp[0], comp[0]);
        if !recursive {
            continue;
        }
        let clique_preds: Vec<Symbol> = comp.iter().map(|&i| preds[i]).collect();
        cliques.push(analyse_clique(program, &stages, &clique_preds));
    }

    let class = overall_class(program, &stages, &cliques, &graph, &preds, &pred_ids, &comp_of);
    Analysis { stages, cliques, class }
}

fn mentions_clique(rule: &Rule, clique: &[Symbol]) -> bool {
    rule.body.iter().any(|l| match l {
        Literal::Pos(a) | Literal::Neg(a) => clique.contains(&a.pred),
        _ => false,
    })
}

fn analyse_clique(program: &Program, stages: &StageInfo, clique: &[Symbol]) -> CliqueInfo {
    let mut info = CliqueInfo {
        preds: clique.to_vec(),
        next_rules: Vec::new(),
        flat_rules: Vec::new(),
        exit_rules: Vec::new(),
        is_stage_clique: false,
        stage_stratified: true,
        alternating: true,
        violations: Vec::new(),
    };

    // Partition the clique's rules.
    let mut kind_by_pred: HashMap<Symbol, bool> = HashMap::new(); // pred → is-next
    for (ri, rule) in program.rules.iter().enumerate() {
        if !clique.contains(&rule.head.pred) {
            continue;
        }
        let recursive = rule.has_next() || mentions_clique(rule, clique);
        if !recursive {
            info.exit_rules.push(ri);
            continue;
        }
        if rule.has_next() {
            info.is_stage_clique = true;
            info.next_rules.push(ri);
        } else {
            info.flat_rules.push(ri);
        }
        // "Any two recursive rules defining a predicate in the clique
        // must be of the same kind."
        match kind_by_pred.get(&rule.head.pred) {
            Some(&k) if k != rule.has_next() => {
                info.stage_stratified = false;
                info.violations
                    .push(StageViolation::MixedRuleKinds { pred: rule.head.pred, rule: ri });
            }
            _ => {
                kind_by_pred.insert(rule.head.pred, rule.has_next());
            }
        }
    }
    if !info.is_stage_clique {
        return info;
    }

    // Every clique predicate must be an unconflicted stage predicate.
    for p in clique {
        if !stages.stage_arg.contains_key(p) {
            info.stage_stratified = false;
            info.violations.push(StageViolation::NoStageArg { pred: *p });
        }
        for c in &stages.conflicts {
            if c.pred == *p {
                info.stage_stratified = false;
                info.violations.push(StageViolation::StageConflict(c.clone()));
            }
        }
    }

    // Next rules: strictly stage-stratified.
    for &ri in &info.next_rules {
        let rule = &program.rules[ri];
        let cons = Constraints::from_rule(rule);
        let Some(stage_var) = stages.head_stage_var(rule) else {
            info.stage_stratified = false;
            info.violations.push(StageViolation::NextRuleNoHeadStageVar { rule: ri });
            continue;
        };
        for (v, negated) in stages.body_stage_vars(rule) {
            if !cons.lt(v, stage_var) {
                info.stage_stratified = false;
                info.violations.push(StageViolation::BodyStageNotLess {
                    rule: ri,
                    var: v,
                    negated,
                });
            }
        }
        // Extremum groups: a next-rule extremum selects among the
        // current stage's candidates, so its group must be empty (the
        // implicit stage group) or exactly the stage variable. The
        // paper's warning case — least(C, _) — fails here.
        for (li, lit) in rule.body.iter().enumerate() {
            let (group, least) = match lit {
                Literal::Least { group, .. } => (group, true),
                Literal::Most { group, .. } => (group, false),
                _ => continue,
            };
            let ok = group.is_empty()
                || (group.len() == 1 && matches!(&group[0], Term::Var(v) if *v == stage_var));
            if !ok {
                info.stage_stratified = false;
                info.violations.push(StageViolation::BadNextExtremumGroup {
                    rule: ri,
                    literal: li,
                    least,
                });
            }
        }
    }

    // Flat rules: positive clique goals ≤, negated goals <, no extrema
    // over clique predicates.
    for &ri in &info.flat_rules {
        let rule = &program.rules[ri];
        let cons = Constraints::from_rule(rule);
        let head_stage = stages.head_stage_var(rule);
        for (v, negated) in stages.body_stage_vars(rule) {
            let ok = match head_stage {
                Some(h) => {
                    if negated {
                        cons.lt(v, h)
                    } else {
                        v == h || cons.le(v, h)
                    }
                }
                // Constant head stage with stage-carrying body: cannot
                // certify stratification.
                None => false,
            };
            if !ok {
                info.stage_stratified = false;
                info.violations.push(StageViolation::FlatStageNotOrdered {
                    rule: ri,
                    var: v,
                    negated,
                });
            }
        }
        if rule.has_extrema() && mentions_clique(rule, &info.preds) {
            info.stage_stratified = false;
            info.violations.push(StageViolation::ExtremumOverClique { rule: ri });
        }
    }

    // Alternating: flat rules alone must not be recursive.
    let mut flat_graph_edges: Vec<(Symbol, Symbol)> = Vec::new();
    for &ri in &info.flat_rules {
        let rule = &program.rules[ri];
        for l in &rule.body {
            if let Literal::Pos(a) | Literal::Neg(a) = l {
                if info.preds.contains(&a.pred) {
                    flat_graph_edges.push((rule.head.pred, a.pred));
                }
            }
        }
    }
    info.alternating = !has_cycle(&info.preds, &flat_graph_edges);
    info
}

/// The predicate trace of a negation/extrema cycle: `head` has the
/// offending dependency on `from`, and `from` reaches `head` again
/// inside their shared SCC. Returns `[head, from, …]` with the closing
/// edge back to `head` implicit. BFS keeps the trace shortest.
fn cycle_trace(
    graph: &DiGraph,
    preds: &[Symbol],
    comp_of: &[usize],
    from: usize,
    head: usize,
) -> Vec<Symbol> {
    if from == head {
        return vec![preds[head]];
    }
    let comp = comp_of[head];
    let mut prev = vec![usize::MAX; graph.len()];
    prev[from] = from;
    let mut queue = VecDeque::from([from]);
    'bfs: while let Some(v) = queue.pop_front() {
        for &w in graph.successors(v) {
            if comp_of[w] != comp || prev[w] != usize::MAX {
                continue;
            }
            prev[w] = v;
            if w == head {
                break 'bfs;
            }
            queue.push_back(w);
        }
    }
    if prev[head] == usize::MAX {
        // No return path found (defensive: callers only ask within a
        // recursive SCC, where one must exist).
        return vec![preds[head], preds[from]];
    }
    let mut path = vec![head];
    let mut cur = head;
    while cur != from {
        cur = prev[cur];
        path.push(cur);
    }
    // path is head, …, from reversed; the cycle starts at head, takes
    // the negative edge to from, then follows the path back (head
    // itself closes the loop and is not repeated).
    path.reverse();
    let mut cycle = vec![preds[head]];
    cycle.extend(path[..path.len() - 1].iter().map(|&i| preds[i]));
    cycle
}

/// Cycle detection on the flat-rule subgraph (small: clique-sized).
fn has_cycle(preds: &[Symbol], edges: &[(Symbol, Symbol)]) -> bool {
    let idx = |s: Symbol| preds.iter().position(|&p| p == s).expect("clique pred");
    let mut g = DiGraph::new(preds.len());
    for &(a, b) in edges {
        g.add_edge(idx(a), idx(b));
    }
    g.sccs().iter().any(|c| c.len() > 1 || g.has_edge(c[0], c[0]))
}

fn overall_class(
    program: &Program,
    _stages: &StageInfo,
    cliques: &[CliqueInfo],
    graph: &DiGraph,
    preds: &[Symbol],
    pred_ids: &HashMap<Symbol, usize>,
    comp_of: &[usize],
) -> ProgramClass {
    let has_next = program.rules.iter().any(Rule::has_next);
    let has_choice = program.rules.iter().any(Rule::has_choice);
    let has_neg = program.rules.iter().any(Rule::has_negation);
    let has_ext = program.rules.iter().any(Rule::has_extrema);

    if has_next {
        let violations: Vec<StageViolation> = cliques
            .iter()
            .filter(|c| c.is_stage_clique && !c.stage_stratified)
            .flat_map(|c| c.violations.iter().cloned())
            .collect();
        if !violations.is_empty() {
            return ProgramClass::NotStageStratified { violations };
        }
        let alternating = cliques.iter().filter(|c| c.is_stage_clique).all(|c| c.alternating);
        return ProgramClass::StageStratified { alternating };
    }
    if has_choice {
        return ProgramClass::Choice;
    }
    if has_neg || has_ext {
        // Stratification: no negative/extrema dependency within an SCC.
        for r in &program.rules {
            let h = comp_of[pred_ids[&r.head.pred]];
            for l in &r.body {
                let neg_dep = match l {
                    Literal::Neg(a) => Some(a.pred),
                    Literal::Pos(a) if r.has_extrema() => Some(a.pred),
                    _ => None,
                };
                if let Some(p) = neg_dep {
                    if comp_of[pred_ids[&p]] == h
                        && (graph.has_edge(pred_ids[&r.head.pred], pred_ids[&p]))
                    {
                        // Same SCC: recursive only if the SCC is recursive.
                        let scc_recursive = comp_of.iter().filter(|&&c| c == h).count() > 1
                            || graph.has_edge(pred_ids[&r.head.pred], pred_ids[&r.head.pred]);
                        if scc_recursive {
                            let cycle = cycle_trace(
                                graph,
                                preds,
                                comp_of,
                                pred_ids[&p],
                                pred_ids[&r.head.pred],
                            );
                            return ProgramClass::Unstratified { cycle };
                        }
                    }
                }
            }
        }
        return ProgramClass::Stratified;
    }
    ProgramClass::Horn
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_parser::parse_program;

    #[test]
    fn prim_is_alternating_stage_stratified() {
        let p = parse_program(
            "prm(nil, a, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
        )
        .unwrap();
        let a = classify(&p);
        assert_eq!(a.class, ProgramClass::StageStratified { alternating: true });
        let clique = a.cliques.iter().find(|c| c.is_stage_clique).unwrap();
        assert_eq!(clique.next_rules.len(), 1);
        assert_eq!(clique.flat_rules.len(), 1);
        assert!(clique.violations.is_empty(), "{:?}", clique.violations);
    }

    #[test]
    fn sort_is_stage_stratified() {
        let p = parse_program(
            "sp(nil, 0, 0).
             sp(X, C, I) <- next(I), p(X, C), least(C, I).",
        )
        .unwrap();
        assert_eq!(classify(&p).class, ProgramClass::StageStratified { alternating: true });
    }

    #[test]
    fn huffman_without_subtree_guards_is_stage_stratified() {
        let p = parse_program(
            "h(X, C, 0) <- letter(X, C).
             h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I, least(C),
                                 choice(X, I), choice(Y, I).
             feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
                                        I = max(J, K), X != Y, C = C1 + C2.",
        )
        .unwrap();
        let a = classify(&p);
        assert_eq!(a.class, ProgramClass::StageStratified { alternating: true });
    }

    #[test]
    fn the_papers_least_underscore_warning_is_caught() {
        // least(C, G) with G a non-stage variable: "the stage-
        // stratification is lost" (Section 4).
        let p = parse_program(
            "prm(nil, a, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, X), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
        )
        .unwrap();
        let a = classify(&p);
        assert!(matches!(a.class, ProgramClass::NotStageStratified { .. }), "{:?}", a.class);
    }

    #[test]
    fn missing_stage_guard_fails_strictness() {
        // No J < I guard: the body stage variable is unconstrained.
        let p = parse_program(
            "prm(nil, a, 0, 0).
             prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), least(C, I), choice(Y, X).
             new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
        )
        .unwrap();
        assert!(matches!(classify(&p).class, ProgramClass::NotStageStratified { .. }));
    }

    #[test]
    fn kruskal_is_rejected_like_the_paper_says() {
        let p = parse_program(
            "kruskal(X, Y, C, I) <- next(I), g(X, Y, C), last_comp(X, J, I1),
                                    last_comp(Y, K, I1), J != K, I1 < I, least(C).
             last_comp(X, J, I) <- comp(X, J, I), most(I, X).
             comp(X, K, 0) <- comp0(X, K).
             comp(X, K, I) <- kruskal(A, B, C, I), last_comp(A, J, I1),
                              last_comp(B, K, I2), last_comp(X, J, I1).
             comp0(nil, 0).
             comp0(X, K) <- next(K), node(X).",
        )
        .unwrap();
        assert!(matches!(classify(&p).class, ProgramClass::NotStageStratified { .. }));
    }

    #[test]
    fn spanning_tree_without_next_is_choice_class() {
        let p = parse_program(
            "st(nil, a, 0).
             st(X, Y, C) <- st(_, X, _), g(X, Y, C), Y != a, choice(Y, (X, C)).",
        )
        .unwrap();
        assert_eq!(classify(&p).class, ProgramClass::Choice);
    }

    #[test]
    fn plain_programs_classify_as_horn_or_stratified() {
        let horn = parse_program("tc(X, Y) <- e(X, Y). tc(X, Z) <- tc(X, Y), e(Y, Z).").unwrap();
        assert_eq!(classify(&horn).class, ProgramClass::Horn);

        let strat = parse_program(
            "reach(X) <- src(X). reach(Y) <- reach(X), e(X, Y).
             un(X) <- node(X), not reach(X).",
        )
        .unwrap();
        assert_eq!(classify(&strat).class, ProgramClass::Stratified);

        let unstrat = parse_program("win(X) <- move(X, Y), not win(Y).").unwrap();
        assert!(matches!(classify(&unstrat).class, ProgramClass::Unstratified { .. }));
    }

    #[test]
    fn tsp_chain_is_stage_stratified() {
        let p = parse_program(
            "tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
             tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1,
                                      least(C, I), choice(Y, X).
             new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
             least_arcs(X, Y, C) <- g(X, Y, C), least(C).",
        )
        .unwrap();
        let a = classify(&p);
        assert_eq!(a.class, ProgramClass::StageStratified { alternating: true });
        let clique = a.cliques.iter().find(|c| c.is_stage_clique).unwrap();
        // The stage-0 rule is an exit rule (no clique predicate in its body).
        assert_eq!(clique.exit_rules.len(), 1);
    }

    #[test]
    fn matching_is_stage_stratified() {
        let p = parse_program(
            "matching(nil, nil, 0, 0).
             matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I),
                                     choice(Y, X), choice(X, Y).",
        )
        .unwrap();
        assert_eq!(classify(&p).class, ProgramClass::StageStratified { alternating: true });
    }
}
