//! Integration contract of the multi-tenant serve-load harness
//! (`gbc_bench::serve`) — the `gbc serve` dress rehearsal:
//!
//! * every tenant's compiled program and EDB are shared across
//!   concurrent sessions, and every request performs identical semantic
//!   work (the `Send + Sync` shared-database contract);
//! * per-request latency lands in mergeable histograms whose counts
//!   reconcile exactly with the number of requests issued;
//! * concurrency changes throughput only — the per-request counter
//!   snapshot is byte-identical at any sessions × threads shape.

use gbc_bench::{serve_load, standard_tenants};
use gbc_telemetry::Histogram;

#[test]
fn every_tenant_round_robin_share_is_served() {
    let tenants = standard_tenants();
    // 7 sessions over 3 tenants: shares of 3, 2, 2 sessions.
    let report = serve_load(&tenants, 7, 2, 3);
    assert_eq!(report.sessions, 7);
    assert_eq!(report.threads, 2);
    assert_eq!(report.requests_per_session, 3);
    assert_eq!(report.total_requests(), 21);
    let shares: Vec<usize> = report.tenants.iter().map(|t| t.sessions).collect();
    assert_eq!(shares, vec![3, 2, 2]);
    for t in &report.tenants {
        assert_eq!(t.requests, t.sessions as u64 * 3);
        assert_eq!(t.latency.count(), t.requests, "tenant `{}` lost a latency sample", t.name);
        assert!(t.latency.min() > 0, "a request cannot take zero time");
    }
}

#[test]
fn merged_latency_equals_the_sum_of_tenant_histograms() {
    let tenants = standard_tenants();
    let report = serve_load(&tenants, 6, 3, 2);
    let merged = report.merged_latency();
    assert_eq!(merged.count(), report.total_requests());
    // Rebuild the merge by hand; bucket-level merging is exact, so the
    // two must be equal as values, not just close.
    let mut manual = Histogram::default();
    for t in &report.tenants {
        manual.merge(&t.latency);
    }
    assert_eq!(manual, merged);
    assert!(merged.p50() <= merged.p99());
    assert!(merged.p99() <= merged.max());
}

#[test]
fn per_request_counters_are_identical_across_concurrency_shapes() {
    let tenants = standard_tenants();
    let serial = serve_load(&tenants, 3, 1, 1);
    let wide = serve_load(&tenants, 9, 4, 2);
    for (a, b) in serial.tenants.iter().zip(wide.tenants.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.per_request, b.per_request,
            "tenant `{}`: semantic counters must not depend on load shape",
            a.name
        );
        assert!(a.per_request.gamma_steps > 0, "tenant `{}` did no γ work", a.name);
    }
}

#[test]
fn throughput_is_reported_from_completed_requests() {
    let tenants = standard_tenants();
    let report = serve_load(&tenants, 2, 2, 2);
    assert!(report.wall_secs > 0.0);
    assert!(report.req_per_sec() > 0.0);
    // 2 sessions over 3 tenants: the third tenant serves nothing.
    assert_eq!(report.tenants[2].requests, 0);
    assert_eq!(report.tenants[2].latency.count(), 0);
    assert_eq!(report.total_requests(), 4);
}
