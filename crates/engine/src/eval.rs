//! Rule-body matching: the tuple-at-a-time join core.
//!
//! [`for_each_match`] enumerates every satisfying assignment of a rule
//! body against a [`Database`], invoking a callback per match. Literal
//! order follows sideways information passing — ground comparisons and
//! negations run as early as possible, `=` goals bind as soon as one
//! side is ground, positive atoms join through hash indices on their
//! bound argument positions — but the ordering itself is computed once
//! per rule by [`crate::plan`] rather than re-derived per call; this
//! module keeps the term-level primitives (`eval_term`, `eval_expr`,
//! `match_term`, `instantiate_head`) the executor is built from.
//!
//! Meta-goals (`choice`, `least`, `most`) are *skipped* here — they are
//! not first-order conditions on a single binding. Their handling lives
//! in [`crate::extrema`] and [`crate::choice`]. A `next` goal reaching
//! the matcher is an error: `gbc-core` expands those away first.

use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::{Rule, Term, Value, VarId};
use gbc_storage::dictionary::{decode_ref, func_parts};
use gbc_storage::{Database, Row, RowsView, DICT_MISS};

use crate::bindings::Bindings;
use crate::error::EngineError;

/// Restricts one positive body literal to a fixed set of rows — the
/// delta mechanism of seminaive evaluation. The rows are a columnar
/// view (dictionary ids), typically a [`gbc_storage::Relation::since`]
/// suffix.
#[derive(Clone, Copy)]
pub struct Focus<'a> {
    /// Index into `rule.body` of the focused positive literal.
    pub literal: usize,
    /// The rows that occurrence may range over.
    pub rows: RowsView<'a>,
}

/// Evaluate a ground-able term under `b`. `None` if a variable is unbound.
pub fn eval_term(t: &Term, b: &Bindings) -> Option<Value> {
    match t {
        Term::Var(v) => b.get(*v).cloned(),
        Term::Const(c) => Some(c.clone()),
        Term::Func(f, args) => {
            let vals: Option<Vec<Value>> = args.iter().map(|a| eval_term(a, b)).collect();
            Some(Value::Func(*f, vals?.into()))
        }
    }
}

/// Evaluate an arithmetic expression. `Ok(None)` if a variable is
/// unbound; errors on type mismatches, overflow, division by zero.
pub fn eval_expr(e: &Expr, b: &Bindings) -> Result<Option<Value>, EngineError> {
    match e {
        Expr::Term(t) => Ok(eval_term(t, b)),
        Expr::Neg(inner) => match eval_expr(inner, b)? {
            None => Ok(None),
            Some(Value::Int(i)) => {
                i.checked_neg().map(|v| Some(Value::Int(v))).ok_or(EngineError::Overflow)
            }
            Some(other) => {
                Err(EngineError::TypeError { context: format!("unary minus on `{other}`") })
            }
        },
        Expr::Binary(op, l, r) => {
            let (Some(lv), Some(rv)) = (eval_expr(l, b)?, eval_expr(r, b)?) else {
                return Ok(None);
            };
            // max/min are defined on the full value order; the rest are
            // integer-only.
            if matches!(op, ArithOp::Max | ArithOp::Min) {
                let out = match op {
                    ArithOp::Max => lv.max(rv),
                    _ => lv.min(rv),
                };
                return Ok(Some(out));
            }
            let (Value::Int(a), Value::Int(c)) = (&lv, &rv) else {
                return Err(EngineError::TypeError { context: format!("`{lv}` {op:?} `{rv}`") });
            };
            let (a, c) = (*a, *c);
            let out = match op {
                ArithOp::Add => a.checked_add(c).ok_or(EngineError::Overflow)?,
                ArithOp::Sub => a.checked_sub(c).ok_or(EngineError::Overflow)?,
                ArithOp::Mul => a.checked_mul(c).ok_or(EngineError::Overflow)?,
                ArithOp::Div => {
                    if c == 0 {
                        return Err(EngineError::DivideByZero);
                    }
                    a.checked_div(c).ok_or(EngineError::Overflow)?
                }
                ArithOp::Mod => {
                    if c == 0 {
                        return Err(EngineError::DivideByZero);
                    }
                    a.checked_rem(c).ok_or(EngineError::Overflow)?
                }
                ArithOp::Max | ArithOp::Min => unreachable!("handled above"),
            };
            Ok(Some(Value::Int(out)))
        }
    }
}

/// Unify a term against a ground value, binding variables into `b` and
/// recording new bindings on `trail`. On `false`, the caller must roll
/// back the trail segment it owns.
pub fn match_term(t: &Term, v: &Value, b: &mut Bindings, trail: &mut Vec<VarId>) -> bool {
    match t {
        Term::Var(var) => match b.get(*var) {
            Some(bound) => bound == v,
            None => {
                b.bind(*var, v.clone());
                trail.push(*var);
                true
            }
        },
        Term::Const(c) => c == v,
        Term::Func(f, args) => match v {
            Value::Func(g, vals) if f == g && args.len() == vals.len() => {
                args.iter().zip(vals.iter()).all(|(t2, v2)| match_term(t2, v2, b, trail))
            }
            _ => false,
        },
    }
}

/// Unify a term against a **dictionary id** without decoding on the
/// fast paths — the columnar scan loop's counterpart of [`match_term`]:
///
/// * a variable bound with a known id compares two `u32`s;
/// * a fresh variable binds the decoded value *and* the id (a borrow
///   from the global dictionary — no clone of nested structure beyond
///   the `Value`'s own cheap refcount bump);
/// * constants compare against the decoded borrow;
/// * functor patterns destructure via [`func_parts`] and recurse in id
///   space.
pub fn match_term_id(t: &Term, id: u32, b: &mut Bindings, trail: &mut Vec<VarId>) -> bool {
    match t {
        Term::Var(var) => {
            let known = b.id_of(*var);
            if known != DICT_MISS {
                return known == id;
            }
            match b.get(*var) {
                Some(bound) => bound == decode_ref(id),
                None => {
                    b.bind_encoded(*var, decode_ref(id).clone(), id);
                    trail.push(*var);
                    true
                }
            }
        }
        Term::Const(c) => c == decode_ref(id),
        Term::Func(f, args) => match func_parts(id) {
            Some((g, ids)) if *f == g && args.len() == ids.len() => {
                args.iter().zip(ids.iter()).all(|(t2, &i2)| match_term_id(t2, i2, b, trail))
            }
            _ => false,
        },
    }
}

/// Instantiate the rule head under a complete body match.
pub fn instantiate_head(rule: &Rule, b: &Bindings) -> Result<Row, EngineError> {
    let vals: Option<Vec<Value>> = rule.head.args.iter().map(|t| eval_term(t, b)).collect();
    match vals {
        Some(v) => Ok(Row::new(v)),
        None => Err(EngineError::NonGroundHead { rule: rule.to_string() }),
    }
}

/// The ground rows a complete body match joined over: one `(pred,
/// row)` per positive body atom, instantiated under `b`. This is the
/// parent set provenance records for a derived head row.
pub fn parent_rows(rule: &Rule, b: &Bindings) -> Vec<(gbc_ast::Symbol, Row)> {
    rule.positive_atoms()
        .filter_map(|a| {
            let vals: Option<Vec<Value>> = a.args.iter().map(|t| eval_term(t, b)).collect();
            vals.map(|v| (a.pred, Row::new(v)))
        })
        .collect()
}

/// Enumerate all satisfying bindings of `rule`'s body. `on_match`
/// receives the binding frame; returning `false` stops the enumeration
/// early (used by existence checks).
pub fn for_each_match(
    db: &Database,
    rule: &Rule,
    focus: Option<Focus<'_>>,
    on_match: &mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    for_each_match_opts(db, None, rule, focus, on_match)
}

/// Like [`for_each_match`], but negated atoms are tested against
/// `neg_db` instead of `db` when it is given. This is the primitive
/// behind the Gelfond–Lifschitz reduct evaluation in [`crate::stable`]:
/// positives grow a least-model candidate while negatives stay fixed to
/// the model being checked.
pub fn for_each_match_opts(
    db: &Database,
    neg_db: Option<&Database>,
    rule: &Rule,
    focus: Option<Focus<'_>>,
    on_match: &mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    // One-shot path: compile only the variant this call needs and run
    // it. Hot-path callers hold a [`crate::plan::PlanCache`] and go
    // through [`crate::plan::for_each_match_plan`] instead, paying the
    // compile exactly once per rule.
    let variant = crate::plan::JoinPlan::compile(rule, focus.map(|f| f.literal))?;
    crate::plan::execute(db, neg_db, rule, &variant, focus, on_match)
}

/// Evaluate a rule completely (no extrema/choice handling): collect the
/// instantiated head rows of all body matches.
pub fn eval_rule_plain(
    db: &Database,
    rule: &Rule,
    focus: Option<Focus<'_>>,
) -> Result<Vec<Row>, EngineError> {
    let mut out = Vec::new();
    for_each_match(db, rule, focus, &mut |b| {
        out.push(instantiate_head(rule, b)?);
        Ok(true)
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{CmpOp, Literal, Symbol};

    fn db_edges(edges: &[(&str, &str, i64)]) -> Database {
        let mut db = Database::new();
        for &(x, y, c) in edges {
            db.insert_values("g", vec![Value::sym(x), Value::sym(y), Value::int(c)]);
        }
        db
    }

    #[test]
    fn joins_two_atoms_through_shared_variable() {
        // path(X, Z) <- g(X, Y, _), g(Y, Z, _).
        let rule = Rule::new(
            gbc_ast::Atom::new("path", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(3)]),
                Literal::pos("g", vec![Term::var(1), Term::var(2), Term::var(4)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into(), "_".into(), "_2".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("b", "d", 3)]);
        let mut rows = eval_rule_plain(&db, &rule, None).unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                Row::new(vec![Value::sym("a"), Value::sym("c")]),
                Row::new(vec![Value::sym("a"), Value::sym("d")]),
            ]
        );
    }

    #[test]
    fn comparisons_filter_and_assign() {
        // out(X, D) <- g(X, _, C), C > 1, D = C * 10.
        let rule = Rule::new(
            gbc_ast::Atom::new("out", vec![Term::var(0), Term::var(3)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(CmpOp::Gt, Expr::var(2), Expr::int(1)),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(3),
                    Expr::binary(ArithOp::Mul, Expr::var(2), Expr::int(10)),
                ),
            ],
            vec!["X".into(), "_".into(), "C".into(), "D".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2)]);
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("b"), Value::int(20)])]);
    }

    #[test]
    fn negation_checks_absence() {
        // lonely(X) <- node(X), not g(X, X, 0).
        let mut db = Database::new();
        db.insert_values("node", vec![Value::sym("a")]);
        db.insert_values("node", vec![Value::sym("b")]);
        db.insert_values("g", vec![Value::sym("a"), Value::sym("a"), Value::int(0)]);
        let rule = Rule::new(
            gbc_ast::Atom::new("lonely", vec![Term::var(0)]),
            vec![
                Literal::pos("node", vec![Term::var(0)]),
                Literal::neg("g", vec![Term::var(0), Term::var(0), Term::int(0)]),
            ],
            vec!["X".into()],
        );
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("b")])]);
    }

    #[test]
    fn focus_restricts_one_occurrence() {
        // p(X, Z) <- g(X, Y, _), g(Y, Z, _).  Focus the first g on a
        // single row: only its continuations appear.
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(3)]),
                Literal::pos("g", vec![Term::var(1), Term::var(2), Term::var(4)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into(), "_".into(), "_2".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("c", "d", 3)]);
        let mut delta = gbc_storage::ColumnBuf::new();
        delta.push_values(&[Value::sym("b"), Value::sym("c"), Value::int(2)]);
        let rows =
            eval_rule_plain(&db, &rule, Some(Focus { literal: 0, rows: delta.view() })).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("b"), Value::sym("d")])]);
    }

    #[test]
    fn functor_patterns_destructure_values() {
        // left(X) <- h(t(X, Y)).
        let mut db = Database::new();
        db.insert_values("h", vec![Value::func("t", vec![Value::sym("a"), Value::sym("b")])]);
        db.insert_values("h", vec![Value::sym("leaf")]);
        let rule = Rule::new(
            gbc_ast::Atom::new("left", vec![Term::var(0)]),
            vec![Literal::pos(
                "h",
                vec![Term::Func(Symbol::intern("t"), vec![Term::var(0), Term::var(1)])],
            )],
            vec!["X".into(), "Y".into()],
        );
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("a")])]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        // loop(X) <- g(X, X, _).
        let db = db_edges(&[("a", "a", 1), ("a", "b", 1)]);
        let rule = Rule::new(
            gbc_ast::Atom::new("loop", vec![Term::var(0)]),
            vec![Literal::pos("g", vec![Term::var(0), Term::var(0), Term::var(1)])],
            vec!["X".into(), "_".into()],
        );
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("a")])]);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(1)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(1),
                    Expr::binary(ArithOp::Div, Expr::var(0), Expr::int(0)),
                ),
            ],
            vec!["X".into(), "Y".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::int(4)]);
        assert_eq!(eval_rule_plain(&db, &rule, None), Err(EngineError::DivideByZero));
    }

    #[test]
    fn arith_on_symbols_is_a_type_error() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(1)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(1),
                    Expr::binary(ArithOp::Add, Expr::var(0), Expr::int(1)),
                ),
            ],
            vec!["X".into(), "Y".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::sym("a")]);
        assert!(matches!(eval_rule_plain(&db, &rule, None), Err(EngineError::TypeError { .. })));
    }

    #[test]
    fn max_min_work_on_any_values() {
        // m(M) <- q(X), r(Y), M = max(X, Y).
        let rule = Rule::new(
            gbc_ast::Atom::new("m", vec![Term::var(2)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::pos("r", vec![Term::var(1)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(2),
                    Expr::binary(ArithOp::Max, Expr::var(0), Expr::var(1)),
                ),
            ],
            vec!["X".into(), "Y".into(), "M".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::int(3)]);
        db.insert_values("r", vec![Value::int(7)]);
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::int(7)])]);
    }

    #[test]
    fn early_stop_halts_enumeration() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(0)]),
            vec![Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)])],
            vec!["X".into(), "Y".into(), "C".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("c", "d", 3)]);
        let mut count = 0;
        for_each_match(&db, &rule, None, &mut |_| {
            count += 1;
            Ok(count < 2)
        })
        .unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn unexpanded_next_is_rejected() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(0)]),
            vec![Literal::Next { var: VarId(0) }],
            vec!["I".into()],
        );
        let db = Database::new();
        assert!(matches!(
            eval_rule_plain(&db, &rule, None),
            Err(EngineError::UnexpandedNext { .. })
        ));
    }
}
