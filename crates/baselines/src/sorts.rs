//! Sorting comparators for Example 5.
//!
//! The paper's observation: "although the program expresses an
//! 'insertion sort' like algorithm, the fixpoint algorithm implements a
//! 'heap-sort'." Both are provided so the E2 experiment can show the
//! declarative runtime tracks [`heapsort`] (`O(n log n)`), not
//! [`insertion_sort`] (`O(n²)`).

/// In-place binary-heap sort, ascending. `O(n log n)`.
pub fn heapsort<T: Ord>(data: &mut [T]) {
    let n = data.len();
    // Build a max-heap.
    for i in (0..n / 2).rev() {
        sift_down(data, i, n);
    }
    // Repeatedly move the max to the back.
    for end in (1..n).rev() {
        data.swap(0, end);
        sift_down(data, 0, end);
    }
}

fn sift_down<T: Ord>(data: &mut [T], mut root: usize, end: usize) {
    loop {
        let left = 2 * root + 1;
        if left >= end {
            return;
        }
        let mut biggest = left;
        let right = left + 1;
        if right < end && data[right] > data[left] {
            biggest = right;
        }
        if data[biggest] <= data[root] {
            return;
        }
        data.swap(root, biggest);
        root = biggest;
    }
}

/// Classic insertion sort, ascending. `O(n²)` — the shape Example 5's
/// program *suggests*.
pub fn insertion_sort<T: Ord>(data: &mut [T]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j - 1] > data[j] {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heapsort_sorts() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7, 2];
        heapsort(&mut v);
        assert_eq!(v, vec![1, 2, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn insertion_sorts() {
        let mut v = vec![4, 4, 1, 0, -3];
        insertion_sort(&mut v);
        assert_eq!(v, vec![-3, 0, 1, 4, 4]);
    }

    #[test]
    fn edge_cases() {
        let mut empty: Vec<i32> = vec![];
        heapsort(&mut empty);
        insertion_sort(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![42];
        heapsort(&mut one);
        assert_eq!(one, vec![42]);

        let mut sorted = vec![1, 2, 3];
        heapsort(&mut sorted);
        assert_eq!(sorted, vec![1, 2, 3]);

        let mut rev = vec![3, 2, 1];
        heapsort(&mut rev);
        assert_eq!(rev, vec![1, 2, 3]);
    }

    #[test]
    fn both_agree_on_random_data() {
        // Deterministic pseudo-random data (LCG) — no rand dependency
        // needed at this layer.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let data: Vec<i64> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) as i64
            })
            .collect();
        let mut a = data.clone();
        let mut b = data;
        heapsort(&mut a);
        insertion_sort(&mut b);
        assert_eq!(a, b);
    }
}
