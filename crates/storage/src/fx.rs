//! A fast, deterministic hasher for the engine's hot maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which the engine does not need: every key it hashes — congruence
//! keys, index projections, row sets — is derived from a fixed input
//! program and workload, not from an adversary. What the hot path
//! *does* need is a hasher whose per-word cost is a multiply and a
//! rotate instead of a full ARX round, because `Vec<Value>` keys are
//! hashed on every index probe, every (R,Q,L) insert and every
//! relation insert.
//!
//! This is the classic multiply-rotate-xor construction (the "Fx"
//! scheme popularised by Firefox and rustc), implemented in-tree to
//! honour the workspace's zero-registry-dependency policy. It is also
//! deterministic across processes — unlike the randomly keyed default
//! — which keeps hash-map capacity growth, and therefore allocation
//! traces, reproducible from run to run.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier (derived from the golden ratio) used by the Fx
/// construction; spreads entropy across the high bits, which the
/// hash-map bucket index is taken from after the final multiply.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single 64-bit accumulator.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                chunk.try_into().expect("4-byte chunk"),
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add_to_hash(i as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add_to_hash(i as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_to_hash(i as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add_to_hash(i as u64);
    }
}

/// Builds [`FxHasher`]s; the zero-sized state makes `HashMap::default`
/// free.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"greedy"), hash_of(&"greedy"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u64, 2]), hash_of(&vec![2u64, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn byte_stream_chunking_covers_all_lengths() {
        // 0..=17 bytes exercises the 8-, 4- and 1-byte paths of
        // `write`; equal streams must agree regardless of length class.
        for len in 0..=17usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut a = FxHasher::default();
            a.write(&bytes);
            let mut b = FxHasher::default();
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish(), "len {len}");
            if len > 0 {
                let mut c = FxHasher::default();
                let mut tweaked = bytes.clone();
                tweaked[len - 1] ^= 1;
                c.write(&tweaked);
                assert_ne!(a.finish(), c.finish(), "len {len} must be sensitive");
            }
        }
    }

    #[test]
    fn maps_and_sets_work_with_the_aliases() {
        let mut m: FxHashMap<Vec<u64>, &str> = FxHashMap::default();
        m.insert(vec![1, 2], "a");
        assert_eq!(m.get([1u64, 2].as_slice()), Some(&"a"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
