//! Predicate reachability and dead-rule detection.
//!
//! Two dataflow passes over the program's dependency structure:
//!
//! - **Emptiness**: a least fixpoint marking which defined predicates
//!   can ever hold a fact. A rule *supports* its head when every
//!   positive body atom reads a non-empty (or external — EDB inputs
//!   are unknown and assumed populated) predicate and no comparison in
//!   its body is constant-false. A proper rule that can never fire —
//!   because a body predicate is provably empty or a comparison is
//!   constant-false — is *dead* (GBC027) and is pruned from execution.
//! - **Reachability**: which predicates can feed a program answer. The
//!   roots are the heads of rules with meta goals (`choice`, `least`,
//!   `most`, `next`) — the same "program answers" convention GBC024
//!   uses — or every head when the program has no meta rules (plain
//!   Datalog: everything is an answer). A predicate that is defined
//!   and referenced but never reaches a root is unreachable (GBC028):
//!   work spent deriving it is wasted.
//!
//! Constant-foldable comparisons (both sides ground, GBC031) are
//! reported here too: the always-true ones are baked out of join plans
//! via [`gbc_engine::plan::RuleStatics`], the always-false ones kill
//! their rule.

use std::collections::BTreeSet;

use gbc_ast::literal::Literal;
use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::value::Value;
use gbc_ast::{Program, Symbol};

/// A comparison whose outcome is known at compile time.
#[derive(Clone, Copy, Debug)]
pub struct ConstComparison {
    /// Rule index in `program.rules`.
    pub rule: usize,
    /// Body literal index of the comparison.
    pub lit: usize,
    /// The folded outcome.
    pub value: bool,
}

/// A rule that provably never fires.
#[derive(Clone, Debug)]
pub struct DeadRule {
    /// Rule index in `program.rules`.
    pub rule: usize,
    /// Body literal index anchoring the reason, when there is one.
    pub lit: Option<usize>,
    /// Human-readable reason.
    pub reason: String,
}

/// Result of the reachability/emptiness analysis.
#[derive(Clone, Debug, Default)]
pub struct ReachInfo {
    /// The answer predicates reachability starts from, name-sorted.
    pub roots: Vec<Symbol>,
    /// Predicates that (transitively) feed some root.
    pub reachable: BTreeSet<Symbol>,
    /// Defined *and referenced* predicates that never feed a root
    /// (GBC028). Disjoint from GBC024, which requires *unreferenced*.
    pub unreachable: Vec<Symbol>,
    /// Defined predicates that provably never hold a fact.
    pub empty: BTreeSet<Symbol>,
    /// Proper rules that provably never fire (GBC027).
    pub dead_rules: Vec<DeadRule>,
    /// Comparisons foldable at compile time (GBC031).
    pub const_comparisons: Vec<ConstComparison>,
}

impl ReachInfo {
    /// Rule indices of dead rules, for quick membership tests.
    pub fn dead_rule_set(&self) -> BTreeSet<usize> {
        self.dead_rules.iter().map(|d| d.rule).collect()
    }

    /// Body literal indices of constant-**true** comparisons in `rule`,
    /// safe to drop from its join plan.
    pub fn const_true_lits(&self, rule: usize) -> Vec<usize> {
        self.const_comparisons.iter().filter(|c| c.rule == rule && c.value).map(|c| c.lit).collect()
    }
}

/// Run both passes.
pub fn analyze(program: &Program) -> ReachInfo {
    let defined: BTreeSet<Symbol> = program.rules.iter().map(|r| r.head.pred).collect();

    // Constant-foldable comparisons.
    let mut const_comparisons = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        for (li, lit) in rule.body.iter().enumerate() {
            let Literal::Compare { op, lhs, rhs } = lit else { continue };
            if let (Some(a), Some(b)) = (eval_const(lhs), eval_const(rhs)) {
                const_comparisons.push(ConstComparison {
                    rule: ri,
                    lit: li,
                    value: op.eval(a.cmp(&b)),
                });
            }
        }
    }
    let false_lit = |ri: usize| -> Option<usize> {
        const_comparisons.iter().find(|c| c.rule == ri && !c.value).map(|c| c.lit)
    };

    // Emptiness: least fixpoint over "this rule can support its head".
    let mut non_empty: BTreeSet<Symbol> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            if non_empty.contains(&rule.head.pred) || false_lit(ri).is_some() {
                continue;
            }
            let supported = rule
                .positive_atoms()
                .all(|a| !defined.contains(&a.pred) || non_empty.contains(&a.pred));
            if supported {
                non_empty.insert(rule.head.pred);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let empty: BTreeSet<Symbol> =
        defined.iter().filter(|p| !non_empty.contains(p)).copied().collect();

    // Dead rules.
    let mut dead_rules = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        if rule.is_fact() {
            continue;
        }
        if let Some(li) = false_lit(ri) {
            dead_rules.push(DeadRule {
                rule: ri,
                lit: Some(li),
                reason: "this comparison is always false".to_owned(),
            });
            continue;
        }
        let empty_atom = rule.body.iter().enumerate().find_map(|(li, lit)| match lit {
            Literal::Pos(a) if empty.contains(&a.pred) => Some((li, a.pred)),
            _ => None,
        });
        if let Some((li, pred)) = empty_atom {
            dead_rules.push(DeadRule {
                rule: ri,
                lit: Some(li),
                reason: format!("`{pred}` provably never holds a fact"),
            });
        }
    }

    // Reachability from the answer predicates.
    let meta_heads: BTreeSet<Symbol> = program
        .rules
        .iter()
        .filter(|r| r.body.iter().any(Literal::is_meta))
        .map(|r| r.head.pred)
        .collect();
    let roots: BTreeSet<Symbol> = if meta_heads.is_empty() { defined.clone() } else { meta_heads };
    let mut reachable = roots.clone();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if !reachable.contains(&rule.head.pred) {
                continue;
            }
            for lit in &rule.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    changed |= reachable.insert(a.pred);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut referenced: BTreeSet<Symbol> = BTreeSet::new();
    for rule in &program.rules {
        for lit in &rule.body {
            if let Literal::Pos(a) | Literal::Neg(a) = lit {
                referenced.insert(a.pred);
            }
        }
    }
    let unreachable: Vec<Symbol> = defined
        .iter()
        .filter(|p| referenced.contains(p) && !reachable.contains(p))
        .copied()
        .collect();

    ReachInfo {
        roots: roots.into_iter().collect(),
        reachable,
        unreachable,
        empty,
        dead_rules,
        const_comparisons,
    }
}

/// Evaluate a ground expression, if it is one. Overflow and division
/// by zero yield `None` (the comparison is then not foldable).
fn eval_const(e: &Expr) -> Option<Value> {
    match e {
        Expr::Term(t) => t.as_value(),
        Expr::Binary(op, l, r) => {
            let a = eval_const(l)?.as_int()?;
            let b = eval_const(r)?.as_int()?;
            let v = match op {
                ArithOp::Add => a.checked_add(b)?,
                ArithOp::Sub => a.checked_sub(b)?,
                ArithOp::Mul => a.checked_mul(b)?,
                ArithOp::Div => a.checked_div(b)?,
                ArithOp::Mod => a.checked_rem(b)?,
                ArithOp::Max => a.max(b),
                ArithOp::Min => a.min(b),
            };
            Some(Value::Int(v))
        }
        Expr::Neg(e) => Some(Value::Int(eval_const(e)?.as_int()?.checked_neg()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_parser::parse_program;

    fn info(src: &str) -> ReachInfo {
        analyze(&parse_program(src).expect("parse"))
    }

    #[test]
    fn const_comparisons_fold_both_ways() {
        let r = info("p(1).\nq(X) <- p(X), 1 < 2.\nr(X) <- p(X), 2 < 1.\n");
        assert_eq!(r.const_comparisons.len(), 2);
        assert!(r.const_comparisons[0].value);
        assert!(!r.const_comparisons[1].value);
        assert_eq!(r.const_true_lits(1), vec![1]);
    }

    #[test]
    fn const_false_comparison_kills_the_rule_and_empties_the_head() {
        let r = info("p(1).\nq(X) <- p(X), 2 < 1.\nout(X) <- q(X).\n");
        assert!(r.empty.contains(&Symbol::intern("q")), "{:?}", r.empty);
        // Both the folded rule and the one reading the empty `q` die.
        assert_eq!(r.dead_rule_set(), BTreeSet::from([1, 2]));
    }

    #[test]
    fn mutual_recursion_without_a_base_case_is_empty() {
        let r = info("a(X) <- b(X).\nb(X) <- a(X).\nseed(1).\nout(X) <- a(X), seed(X).\n");
        assert!(r.empty.contains(&Symbol::intern("a")));
        assert!(r.empty.contains(&Symbol::intern("b")));
        assert_eq!(r.dead_rule_set(), BTreeSet::from([0, 1, 3]));
    }

    #[test]
    fn external_predicates_are_assumed_populated() {
        let r = info("q(X) <- edb(X).\n");
        assert!(r.empty.is_empty(), "{:?}", r.empty);
        assert!(r.dead_rules.is_empty());
    }

    #[test]
    fn reachability_roots_are_meta_rule_heads() {
        let r = info(
            "src(1). src(2).\n\
             out(X, I) <- next(I), src(X), least(X, I).\n\
             helper(X) <- src(X), X > 1.\n\
             aux(X) <- helper(X).\n",
        );
        assert_eq!(r.roots, vec![Symbol::intern("out")]);
        assert!(r.reachable.contains(&Symbol::intern("src")));
        // `helper` is referenced (by `aux`) but never feeds `out`.
        assert_eq!(r.unreachable, vec![Symbol::intern("helper")]);
    }

    #[test]
    fn plain_programs_treat_every_head_as_an_answer() {
        let r = info("e(1, 2).\ntc(X, Y) <- e(X, Y).\n");
        assert!(r.unreachable.is_empty());
        assert!(r.reachable.contains(&Symbol::intern("tc")));
    }
}
