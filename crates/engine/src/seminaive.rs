//! Delta-driven saturation of a rule set (seminaive evaluation).
//!
//! A [`Seminaive`] driver owns a rule set and per-predicate high-water
//! marks. Each call to [`Seminaive::saturate`] runs rounds until no new
//! facts appear; within a round, every non-extrema rule is evaluated
//! once per positive body occurrence, with that occurrence *focused* on
//! the rows inserted since the mark. Rules with `least`/`most` goals are
//! re-evaluated in full whenever a body predicate has grown (the filter
//! needs the complete match set), which is the behaviour the paper's
//! cost analysis assumes for flat rules.
//!
//! The driver persists across calls, so the paper's `Q^∞(γ(S))`
//! alternation (Section 2) pays only for work caused by the facts the
//! latest γ step introduced.

use std::collections::HashMap;
use std::sync::Arc;

use gbc_ast::{Literal, Rule, Symbol};
use gbc_storage::{Database, Row};
use gbc_telemetry::Metrics;

use crate::error::EngineError;
use crate::eval::{instantiate_head, Focus};
use crate::extrema::eval_rule_with_extrema_plan;
use crate::plan::{for_each_match_plan, PlanCache};

/// Persistent seminaive driver. See the module docs.
#[derive(Debug, Clone)]
pub struct Seminaive {
    rules: Vec<Rule>,
    /// Compiled join plans, one slot per rule, filled on first use and
    /// reused for every subsequent round and saturation call.
    plans: PlanCache,
    /// Per-predicate count of rows already used as deltas.
    marks: HashMap<Symbol, usize>,
    /// Rules already given their initial full evaluation.
    evaluated_once: Vec<bool>,
    /// Per-round delta sizes report here when attached.
    metrics: Option<Arc<Metrics>>,
}

impl Seminaive {
    /// Build a driver for `rules`. Rules may contain negation,
    /// comparisons and extrema; `choice`/`next` goals are rejected at
    /// evaluation time by the matcher.
    pub fn new(rules: Vec<Rule>) -> Seminaive {
        let n = rules.len();
        Seminaive {
            rules,
            plans: PlanCache::new(n),
            marks: HashMap::new(),
            evaluated_once: vec![false; n],
            metrics: None,
        }
    }

    /// Attach a counter registry: each saturation round reports its
    /// delta size (`record_delta`), feeding `tuples_derived`,
    /// `flat_rounds` and the optional per-round history.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// The rules driven by this instance.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Run rounds until fixpoint. Returns the number of new facts.
    pub fn saturate(&mut self, db: &mut Database) -> Result<u64, EngineError> {
        let Seminaive { rules, plans, marks, evaluated_once, metrics } = self;
        let mut total: u64 = 0;
        loop {
            // Snapshot lengths at round start: rows at or beyond these
            // positions belong to the *next* round's deltas.
            let mut start_lens: HashMap<Symbol, usize> = HashMap::new();
            for rule in rules.iter() {
                for a in rule.positive_atoms() {
                    start_lens.insert(a.pred, db.count(a.pred));
                }
            }

            let mut new_facts: u64 = 0;
            for (ri, rule) in rules.iter().enumerate() {
                let head = rule.head.pred;
                let plan = plans.get_or_compile(ri, rule, metrics.as_deref())?;
                let derived: Vec<Row> = if !evaluated_once[ri] {
                    evaluated_once[ri] = true;
                    if rule.has_extrema() {
                        eval_rule_with_extrema_plan(db, rule, &plan)?
                    } else {
                        let mut derived = Vec::new();
                        for_each_match_plan(db, None, rule, &plan, None, &mut |b| {
                            derived.push(instantiate_head(rule, b)?);
                            Ok(true)
                        })?;
                        derived
                    }
                } else if rule.has_extrema() {
                    let grown = rule
                        .positive_atoms()
                        .any(|a| marks.get(&a.pred).copied().unwrap_or(0) < db.count(a.pred));
                    if !grown {
                        continue;
                    }
                    eval_rule_with_extrema_plan(db, rule, &plan)?
                } else {
                    let mut derived = Vec::new();
                    for (li, lit) in rule.body.iter().enumerate() {
                        let Literal::Pos(a) = lit else { continue };
                        let from = marks.get(&a.pred).copied().unwrap_or(0);
                        if from >= db.count(a.pred) {
                            continue;
                        }
                        // The delta rows are borrowed in place from the
                        // relation's arena — no per-round copy.
                        let rows = db.relation(a.pred).since(from);
                        for_each_match_plan(
                            db,
                            None,
                            rule,
                            &plan,
                            Some(Focus { literal: li, rows }),
                            &mut |b| {
                                derived.push(instantiate_head(rule, b)?);
                                Ok(true)
                            },
                        )?;
                    }
                    derived
                };
                for row in derived {
                    if db.insert(head, row) {
                        new_facts += 1;
                    }
                }
            }

            // Advance marks to the round-start snapshot.
            for (pred, len) in start_lens {
                let m = marks.entry(pred).or_insert(0);
                *m = (*m).max(len);
            }

            if let Some(m) = metrics {
                m.record_delta(new_facts);
            }
            total += new_facts;
            if new_facts == 0 {
                return Ok(total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{Atom, Term, Value};

    fn tc_rules() -> Vec<Rule> {
        vec![
            // tc(X, Y) <- e(X, Y).
            Rule::new(
                Atom::new("tc", vec![Term::var(0), Term::var(1)]),
                vec![Literal::pos("e", vec![Term::var(0), Term::var(1)])],
                vec!["X".into(), "Y".into()],
            ),
            // tc(X, Z) <- tc(X, Y), e(Y, Z).
            Rule::new(
                Atom::new("tc", vec![Term::var(0), Term::var(2)]),
                vec![
                    Literal::pos("tc", vec![Term::var(0), Term::var(1)]),
                    Literal::pos("e", vec![Term::var(1), Term::var(2)]),
                ],
                vec!["X".into(), "Y".into(), "Z".into()],
            ),
        ]
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_values("e", vec![Value::int(i), Value::int(i + 1)]);
        }
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut db = chain_db(5);
        let mut sn = Seminaive::new(tc_rules());
        let new = sn.saturate(&mut db).unwrap();
        // Chain of 6 nodes: 5+4+3+2+1 = 15 tc facts.
        assert_eq!(new, 15);
        assert_eq!(db.count(Symbol::intern("tc")), 15);
    }

    #[test]
    fn saturation_is_idempotent() {
        let mut db = chain_db(4);
        let mut sn = Seminaive::new(tc_rules());
        sn.saturate(&mut db).unwrap();
        assert_eq!(sn.saturate(&mut db).unwrap(), 0);
    }

    #[test]
    fn incremental_facts_trigger_incremental_work() {
        let mut db = chain_db(3);
        let mut sn = Seminaive::new(tc_rules());
        sn.saturate(&mut db).unwrap();
        // Add a new edge extending the chain; only the new closures appear.
        db.insert_values("e", vec![Value::int(3), Value::int(4)]);
        let added = sn.saturate(&mut db).unwrap();
        // New tc facts: (0,4), (1,4), (2,4), (3,4).
        assert_eq!(added, 4);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            db.insert_values("e", vec![Value::int(a), Value::int(b)]);
        }
        let mut sn = Seminaive::new(tc_rules());
        sn.saturate(&mut db).unwrap();
        assert_eq!(db.count(Symbol::intern("tc")), 9);
    }

    #[test]
    fn extrema_rule_reevaluates_when_inputs_grow() {
        // cheapest(X, C) <- arc(X, C), least(C, X).
        let rules = vec![Rule::new(
            Atom::new("cheapest", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("arc", vec![Term::var(0), Term::var(1)]),
                Literal::Least { cost: Term::var(1), group: vec![Term::var(0)] },
            ],
            vec!["X".into(), "C".into()],
        )];
        let mut db = Database::new();
        db.insert_values("arc", vec![Value::sym("a"), Value::int(5)]);
        let mut sn = Seminaive::new(rules);
        sn.saturate(&mut db).unwrap();
        assert!(db
            .contains(Symbol::intern("cheapest"), &Row::new(vec![Value::sym("a"), Value::int(5)])));
        // A cheaper arc arrives: the new minimum is also derived
        // (inflationary semantics — old facts persist, as the paper's
        // fixpoint prescribes).
        db.insert_values("arc", vec![Value::sym("a"), Value::int(2)]);
        sn.saturate(&mut db).unwrap();
        assert!(db
            .contains(Symbol::intern("cheapest"), &Row::new(vec![Value::sym("a"), Value::int(2)])));
    }
}
