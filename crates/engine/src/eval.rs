//! Rule-body matching: the tuple-at-a-time join core.
//!
//! [`for_each_match`] enumerates every satisfying assignment of a rule
//! body against a [`Database`], invoking a callback per match. Literal
//! order is chosen dynamically (sideways information passing): ground
//! comparisons and negations run as early as possible, `=` goals bind as
//! soon as one side is ground, and positive atoms are joined through
//! hash indices on their bound argument positions.
//!
//! Meta-goals (`choice`, `least`, `most`) are *skipped* here — they are
//! not first-order conditions on a single binding. Their handling lives
//! in [`crate::extrema`] and [`crate::choice`]. A `next` goal reaching
//! the matcher is an error: `gbc-core` expands those away first.

use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::{CmpOp, Literal, Rule, Term, Value, VarId};
use gbc_storage::{Database, Row};

use crate::bindings::Bindings;
use crate::error::EngineError;

/// Restricts one positive body literal to a fixed set of rows — the
/// delta mechanism of seminaive evaluation.
#[derive(Clone, Copy)]
pub struct Focus<'a> {
    /// Index into `rule.body` of the focused positive literal.
    pub literal: usize,
    /// The rows that occurrence may range over.
    pub rows: &'a [Row],
}

/// Evaluate a ground-able term under `b`. `None` if a variable is unbound.
pub fn eval_term(t: &Term, b: &Bindings) -> Option<Value> {
    match t {
        Term::Var(v) => b.get(*v).cloned(),
        Term::Const(c) => Some(c.clone()),
        Term::Func(f, args) => {
            let vals: Option<Vec<Value>> = args.iter().map(|a| eval_term(a, b)).collect();
            Some(Value::Func(*f, vals?.into()))
        }
    }
}

/// Evaluate an arithmetic expression. `Ok(None)` if a variable is
/// unbound; errors on type mismatches, overflow, division by zero.
pub fn eval_expr(e: &Expr, b: &Bindings) -> Result<Option<Value>, EngineError> {
    match e {
        Expr::Term(t) => Ok(eval_term(t, b)),
        Expr::Neg(inner) => match eval_expr(inner, b)? {
            None => Ok(None),
            Some(Value::Int(i)) => {
                i.checked_neg().map(|v| Some(Value::Int(v))).ok_or(EngineError::Overflow)
            }
            Some(other) => {
                Err(EngineError::TypeError { context: format!("unary minus on `{other}`") })
            }
        },
        Expr::Binary(op, l, r) => {
            let (Some(lv), Some(rv)) = (eval_expr(l, b)?, eval_expr(r, b)?) else {
                return Ok(None);
            };
            // max/min are defined on the full value order; the rest are
            // integer-only.
            if matches!(op, ArithOp::Max | ArithOp::Min) {
                let out = match op {
                    ArithOp::Max => lv.max(rv),
                    _ => lv.min(rv),
                };
                return Ok(Some(out));
            }
            let (Value::Int(a), Value::Int(c)) = (&lv, &rv) else {
                return Err(EngineError::TypeError { context: format!("`{lv}` {op:?} `{rv}`") });
            };
            let (a, c) = (*a, *c);
            let out = match op {
                ArithOp::Add => a.checked_add(c).ok_or(EngineError::Overflow)?,
                ArithOp::Sub => a.checked_sub(c).ok_or(EngineError::Overflow)?,
                ArithOp::Mul => a.checked_mul(c).ok_or(EngineError::Overflow)?,
                ArithOp::Div => {
                    if c == 0 {
                        return Err(EngineError::DivideByZero);
                    }
                    a.checked_div(c).ok_or(EngineError::Overflow)?
                }
                ArithOp::Mod => {
                    if c == 0 {
                        return Err(EngineError::DivideByZero);
                    }
                    a.checked_rem(c).ok_or(EngineError::Overflow)?
                }
                ArithOp::Max | ArithOp::Min => unreachable!("handled above"),
            };
            Ok(Some(Value::Int(out)))
        }
    }
}

/// Unify a term against a ground value, binding variables into `b` and
/// recording new bindings on `trail`. On `false`, the caller must roll
/// back the trail segment it owns.
pub fn match_term(t: &Term, v: &Value, b: &mut Bindings, trail: &mut Vec<VarId>) -> bool {
    match t {
        Term::Var(var) => match b.get(*var) {
            Some(bound) => bound == v,
            None => {
                b.bind(*var, v.clone());
                trail.push(*var);
                true
            }
        },
        Term::Const(c) => c == v,
        Term::Func(f, args) => match v {
            Value::Func(g, vals) if f == g && args.len() == vals.len() => {
                args.iter().zip(vals.iter()).all(|(t2, v2)| match_term(t2, v2, b, trail))
            }
            _ => false,
        },
    }
}

/// Instantiate the rule head under a complete body match.
pub fn instantiate_head(rule: &Rule, b: &Bindings) -> Result<Row, EngineError> {
    let vals: Option<Vec<Value>> = rule.head.args.iter().map(|t| eval_term(t, b)).collect();
    match vals {
        Some(v) => Ok(Row::new(v)),
        None => Err(EngineError::NonGroundHead { rule: rule.to_string() }),
    }
}

/// How a pending literal can be processed right now.
enum Step {
    /// A ground comparison or negation: check and continue (no branching).
    Filter,
    /// An `=` goal that binds variables on one side.
    Assign,
    /// A positive atom to enumerate; payload = number of ground args
    /// (higher = more selective index key).
    Enumerate(usize),
    /// Not processable yet.
    Stuck,
}

/// Enumerate all satisfying bindings of `rule`'s body. `on_match`
/// receives the binding frame; returning `false` stops the enumeration
/// early (used by existence checks).
pub fn for_each_match(
    db: &Database,
    rule: &Rule,
    focus: Option<Focus<'_>>,
    on_match: &mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    for_each_match_opts(db, None, rule, focus, on_match)
}

/// Like [`for_each_match`], but negated atoms are tested against
/// `neg_db` instead of `db` when it is given. This is the primitive
/// behind the Gelfond–Lifschitz reduct evaluation in [`crate::stable`]:
/// positives grow a least-model candidate while negatives stay fixed to
/// the model being checked.
pub fn for_each_match_opts(
    db: &Database,
    neg_db: Option<&Database>,
    rule: &Rule,
    focus: Option<Focus<'_>>,
    on_match: &mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
) -> Result<(), EngineError> {
    // Meta goals are handled by higher layers; `next` must be expanded.
    if rule.has_next() {
        return Err(EngineError::UnexpandedNext { rule: rule.to_string() });
    }
    let pending: Vec<usize> =
        rule.body.iter().enumerate().filter(|(_, l)| !l.is_meta()).map(|(i, _)| i).collect();
    let mut m = Matcher {
        db,
        neg_db: neg_db.unwrap_or(db),
        rule,
        focus,
        bindings: Bindings::new(rule.num_vars()),
        on_match,
        stopped: false,
    };
    m.solve(&pending)?;
    Ok(())
}

struct Matcher<'a> {
    db: &'a Database,
    /// Database negated atoms are tested against (== `db` normally).
    neg_db: &'a Database,
    rule: &'a Rule,
    focus: Option<Focus<'a>>,
    bindings: Bindings,
    on_match: &'a mut dyn FnMut(&Bindings) -> Result<bool, EngineError>,
    stopped: bool,
}

impl Matcher<'_> {
    fn classify(&self, lit: &Literal) -> Result<Step, EngineError> {
        match lit {
            Literal::Pos(a) => {
                let ground =
                    a.args.iter().filter(|t| eval_term(t, &self.bindings).is_some()).count();
                Ok(Step::Enumerate(ground))
            }
            Literal::Neg(a) => {
                let all = a.args.iter().all(|t| eval_term(t, &self.bindings).is_some());
                Ok(if all { Step::Filter } else { Step::Stuck })
            }
            Literal::Compare { op, lhs, rhs } => {
                let lv = eval_expr(lhs, &self.bindings)?;
                let rv = eval_expr(rhs, &self.bindings)?;
                match (lv, rv) {
                    (Some(_), Some(_)) => Ok(Step::Filter),
                    (Some(_), None) | (None, Some(_)) if *op == CmpOp::Eq => {
                        // Assignable if the unbound side is a bare term
                        // (variable or pattern) rather than arithmetic.
                        let unbound =
                            if matches!(eval_expr(lhs, &self.bindings)?, None) { lhs } else { rhs };
                        Ok(if unbound.as_bare_term().is_some() {
                            Step::Assign
                        } else {
                            Step::Stuck
                        })
                    }
                    _ => Ok(Step::Stuck),
                }
            }
            _ => unreachable!("meta literals are filtered out"),
        }
    }

    fn solve(&mut self, pending: &[usize]) -> Result<(), EngineError> {
        if self.stopped {
            return Ok(());
        }
        if pending.is_empty() {
            if !(self.on_match)(&self.bindings)? {
                self.stopped = true;
            }
            return Ok(());
        }

        // Pick the best processable literal: Filter > Assign > the
        // focused atom > the atom with the most ground arguments.
        let mut best: Option<(usize, usize, u32)> = None; // (pending idx, rank, tiebreak)
        for (pi, &li) in pending.iter().enumerate() {
            let step = self.classify(&self.rule.body[li])?;
            let (rank, tie) = match step {
                Step::Filter => (0, 0),
                Step::Assign => (1, 0),
                Step::Enumerate(ground) => {
                    let focused = self.focus.is_some_and(|f| f.literal == li);
                    // Focused atoms first (their row sets are the small
                    // deltas), then the most selective.
                    (2, if focused { 0 } else { u32::MAX - ground as u32 })
                }
                Step::Stuck => continue,
            };
            if best.is_none_or(|(_, br, bt)| (rank, tie) < (br, bt)) {
                best = Some((pi, rank, tie));
            }
        }
        let Some((pi, _, _)) = best else {
            return Err(EngineError::NoEvaluableLiteral { rule: self.rule.to_string() });
        };
        let li = pending[pi];
        let rest: Vec<usize> = pending.iter().copied().filter(|&x| x != li).collect();

        match &self.rule.body[li] {
            Literal::Neg(a) => {
                let vals: Vec<Value> = a
                    .args
                    .iter()
                    .map(|t| eval_term(t, &self.bindings).expect("classified as ground"))
                    .collect();
                if !self.neg_db.contains(a.pred, &Row::new(vals)) {
                    self.solve(&rest)?;
                }
                Ok(())
            }
            Literal::Compare { op, lhs, rhs } => {
                let lv = eval_expr(lhs, &self.bindings)?;
                let rv = eval_expr(rhs, &self.bindings)?;
                match (lv, rv) {
                    (Some(a), Some(b)) => {
                        if op.eval(a.cmp(&b)) {
                            self.solve(&rest)?;
                        }
                        Ok(())
                    }
                    (Some(val), None) | (None, Some(val)) => {
                        // Assignment: unify the unbound bare term.
                        let unbound_expr =
                            if eval_expr(lhs, &self.bindings)?.is_none() { lhs } else { rhs };
                        let term = unbound_expr.as_bare_term().expect("classified as assignable");
                        let mut trail = Vec::new();
                        if match_term(term, &val, &mut self.bindings, &mut trail) {
                            self.solve(&rest)?;
                        }
                        for v in trail {
                            self.bindings.unbind(v);
                        }
                        Ok(())
                    }
                    _ => unreachable!("classified as Filter/Assign"),
                }
            }
            Literal::Pos(a) => {
                // Gather ground arguments as the index key.
                let mut bound: Vec<(usize, Value)> = Vec::new();
                for (col, t) in a.args.iter().enumerate() {
                    if let Some(v) = eval_term(t, &self.bindings) {
                        bound.push((col, v));
                    }
                }
                bound.sort_by_key(|(c, _)| *c);
                let cols: Vec<usize> = bound.iter().map(|(c, _)| *c).collect();
                let key: Vec<Value> = bound.iter().map(|(_, v)| v.clone()).collect();

                let rows: Vec<Row> = if let Some(f) = self.focus.filter(|f| f.literal == li) {
                    f.rows.to_vec()
                } else {
                    self.db.relation(a.pred).select(&cols, &key)
                };

                let mut trail = Vec::new();
                for row in &rows {
                    if row.arity() != a.args.len() {
                        continue;
                    }
                    let ok = a
                        .args
                        .iter()
                        .zip(row.iter())
                        .all(|(t, v)| match_term(t, v, &mut self.bindings, &mut trail));
                    if ok {
                        self.solve(&rest)?;
                    }
                    for v in trail.drain(..) {
                        self.bindings.unbind(v);
                    }
                    if self.stopped {
                        break;
                    }
                }
                Ok(())
            }
            _ => unreachable!("meta literals are filtered out"),
        }
    }
}

/// Evaluate a rule completely (no extrema/choice handling): collect the
/// instantiated head rows of all body matches.
pub fn eval_rule_plain(
    db: &Database,
    rule: &Rule,
    focus: Option<Focus<'_>>,
) -> Result<Vec<Row>, EngineError> {
    let mut out = Vec::new();
    for_each_match(db, rule, focus, &mut |b| {
        out.push(instantiate_head(rule, b)?);
        Ok(true)
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Symbol;

    fn db_edges(edges: &[(&str, &str, i64)]) -> Database {
        let mut db = Database::new();
        for &(x, y, c) in edges {
            db.insert_values("g", vec![Value::sym(x), Value::sym(y), Value::int(c)]);
        }
        db
    }

    #[test]
    fn joins_two_atoms_through_shared_variable() {
        // path(X, Z) <- g(X, Y, _), g(Y, Z, _).
        let rule = Rule::new(
            gbc_ast::Atom::new("path", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(3)]),
                Literal::pos("g", vec![Term::var(1), Term::var(2), Term::var(4)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into(), "_".into(), "_2".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("b", "d", 3)]);
        let mut rows = eval_rule_plain(&db, &rule, None).unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                Row::new(vec![Value::sym("a"), Value::sym("c")]),
                Row::new(vec![Value::sym("a"), Value::sym("d")]),
            ]
        );
    }

    #[test]
    fn comparisons_filter_and_assign() {
        // out(X, D) <- g(X, _, C), C > 1, D = C * 10.
        let rule = Rule::new(
            gbc_ast::Atom::new("out", vec![Term::var(0), Term::var(3)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(CmpOp::Gt, Expr::var(2), Expr::int(1)),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(3),
                    Expr::binary(ArithOp::Mul, Expr::var(2), Expr::int(10)),
                ),
            ],
            vec!["X".into(), "_".into(), "C".into(), "D".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2)]);
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("b"), Value::int(20)])]);
    }

    #[test]
    fn negation_checks_absence() {
        // lonely(X) <- node(X), not g(X, X, 0).
        let mut db = Database::new();
        db.insert_values("node", vec![Value::sym("a")]);
        db.insert_values("node", vec![Value::sym("b")]);
        db.insert_values("g", vec![Value::sym("a"), Value::sym("a"), Value::int(0)]);
        let rule = Rule::new(
            gbc_ast::Atom::new("lonely", vec![Term::var(0)]),
            vec![
                Literal::pos("node", vec![Term::var(0)]),
                Literal::neg("g", vec![Term::var(0), Term::var(0), Term::int(0)]),
            ],
            vec!["X".into()],
        );
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("b")])]);
    }

    #[test]
    fn focus_restricts_one_occurrence() {
        // p(X, Z) <- g(X, Y, _), g(Y, Z, _).  Focus the first g on a
        // single row: only its continuations appear.
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(0), Term::var(2)]),
            vec![
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(3)]),
                Literal::pos("g", vec![Term::var(1), Term::var(2), Term::var(4)]),
            ],
            vec!["X".into(), "Y".into(), "Z".into(), "_".into(), "_2".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("c", "d", 3)]);
        let delta = vec![Row::new(vec![Value::sym("b"), Value::sym("c"), Value::int(2)])];
        let rows = eval_rule_plain(&db, &rule, Some(Focus { literal: 0, rows: &delta })).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("b"), Value::sym("d")])]);
    }

    #[test]
    fn functor_patterns_destructure_values() {
        // left(X) <- h(t(X, Y)).
        let mut db = Database::new();
        db.insert_values("h", vec![Value::func("t", vec![Value::sym("a"), Value::sym("b")])]);
        db.insert_values("h", vec![Value::sym("leaf")]);
        let rule = Rule::new(
            gbc_ast::Atom::new("left", vec![Term::var(0)]),
            vec![Literal::pos(
                "h",
                vec![Term::Func(Symbol::intern("t"), vec![Term::var(0), Term::var(1)])],
            )],
            vec!["X".into(), "Y".into()],
        );
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("a")])]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        // loop(X) <- g(X, X, _).
        let db = db_edges(&[("a", "a", 1), ("a", "b", 1)]);
        let rule = Rule::new(
            gbc_ast::Atom::new("loop", vec![Term::var(0)]),
            vec![Literal::pos("g", vec![Term::var(0), Term::var(0), Term::var(1)])],
            vec!["X".into(), "_".into()],
        );
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::sym("a")])]);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(1)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(1),
                    Expr::binary(ArithOp::Div, Expr::var(0), Expr::int(0)),
                ),
            ],
            vec!["X".into(), "Y".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::int(4)]);
        assert_eq!(eval_rule_plain(&db, &rule, None), Err(EngineError::DivideByZero));
    }

    #[test]
    fn arith_on_symbols_is_a_type_error() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(1)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(1),
                    Expr::binary(ArithOp::Add, Expr::var(0), Expr::int(1)),
                ),
            ],
            vec!["X".into(), "Y".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::sym("a")]);
        assert!(matches!(eval_rule_plain(&db, &rule, None), Err(EngineError::TypeError { .. })));
    }

    #[test]
    fn max_min_work_on_any_values() {
        // m(M) <- q(X), r(Y), M = max(X, Y).
        let rule = Rule::new(
            gbc_ast::Atom::new("m", vec![Term::var(2)]),
            vec![
                Literal::pos("q", vec![Term::var(0)]),
                Literal::pos("r", vec![Term::var(1)]),
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(2),
                    Expr::binary(ArithOp::Max, Expr::var(0), Expr::var(1)),
                ),
            ],
            vec!["X".into(), "Y".into(), "M".into()],
        );
        let mut db = Database::new();
        db.insert_values("q", vec![Value::int(3)]);
        db.insert_values("r", vec![Value::int(7)]);
        let rows = eval_rule_plain(&db, &rule, None).unwrap();
        assert_eq!(rows, vec![Row::new(vec![Value::int(7)])]);
    }

    #[test]
    fn early_stop_halts_enumeration() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(0)]),
            vec![Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)])],
            vec!["X".into(), "Y".into(), "C".into()],
        );
        let db = db_edges(&[("a", "b", 1), ("b", "c", 2), ("c", "d", 3)]);
        let mut count = 0;
        for_each_match(&db, &rule, None, &mut |_| {
            count += 1;
            Ok(count < 2)
        })
        .unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn unexpanded_next_is_rejected() {
        let rule = Rule::new(
            gbc_ast::Atom::new("p", vec![Term::var(0)]),
            vec![Literal::Next { var: VarId(0) }],
            vec!["I".into()],
        );
        let db = Database::new();
        assert!(matches!(
            eval_rule_plain(&db, &rule, None),
            Err(EngineError::UnexpandedNext { .. })
        ));
    }
}
