//! AST-level validation errors.

use std::fmt;

/// Errors raised by static validation of programs and rules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstError {
    /// A variable is not range-restricted (see [`crate::rule::Rule::check_safety`]).
    UnsafeVariable { rule: String, var: String },
    /// A predicate is used with two different arities.
    ArityMismatch { pred: String, expected: usize, found: usize },
    /// A fact (body-less rule) has a non-ground head.
    NonGroundFact { rule: String },
    /// A `next` goal's stage variable also appears elsewhere in an
    /// unsupported position (must appear exactly once in the head).
    MalformedNext { rule: String, detail: String },
    /// More than one `next` goal in a rule body.
    MultipleNext { rule: String },
}

impl fmt::Display for AstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstError::UnsafeVariable { rule, var } => {
                write!(f, "unsafe variable `{var}` in rule `{rule}`")
            }
            AstError::ArityMismatch { pred, expected, found } => {
                write!(f, "predicate `{pred}` used with arity {found}, previously {expected}")
            }
            AstError::NonGroundFact { rule } => {
                write!(f, "fact with non-ground head: `{rule}`")
            }
            AstError::MalformedNext { rule, detail } => {
                write!(f, "malformed next goal in `{rule}`: {detail}")
            }
            AstError::MultipleNext { rule } => {
                write!(f, "more than one next goal in rule `{rule}`")
            }
        }
    }
}

impl std::error::Error for AstError {}
