//! A small directed graph with Tarjan SCC — shared by the stratified
//! evaluator here and the stage-clique analysis in `gbc-core`.

/// Directed graph over dense node ids `0..n`.
#[derive(Clone, Debug)]
pub struct DiGraph {
    adj: Vec<Vec<usize>>,
}

impl DiGraph {
    /// A graph with `n` nodes and no edges.
    pub fn new(n: usize) -> DiGraph {
        DiGraph { adj: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add edge `from → to` (duplicates allowed; Tarjan is indifferent).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.adj[from].push(to);
    }

    /// Successors of `v`.
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Strongly connected components, emitted in **dependency-first
    /// order**: if any node of SCC `A` has an edge into SCC `B` (A
    /// depends on B), then `B` appears before `A` in the result. This is
    /// exactly the stratum evaluation order when edges point from rule
    /// heads to their body predicates.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        // Iterative Tarjan.
        let n = self.adj.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;

        // Call-stack frames: (node, next-successor-position).
        let mut frames: Vec<(usize, usize)> = Vec::new();

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut next)) = frames.last_mut() {
                if *next == 0 {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = self.adj[v].get(*next) {
                    *next += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Is there an edge from `a` to `b`?
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_scc() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert_eq!(g.sccs(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_emits_dependencies_first() {
        // 0 → 1 → 2 ("0 depends on 1 depends on 2").
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let sccs = g.sccs();
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn mixed_graph() {
        // Two-node cycle {1,2}, plus 0 → 1 and 2 → 3.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let sccs = g.sccs();
        let pos = |needle: &[usize]| sccs.iter().position(|c| c == needle).unwrap();
        assert!(pos(&[3]) < pos(&[1, 2]));
        assert!(pos(&[1, 2]) < pos(&[0]));
    }

    #[test]
    fn self_loop_is_its_own_scc() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0);
        let sccs = g.sccs();
        assert!(sccs.contains(&vec![0]));
        assert!(sccs.contains(&vec![1]));
        assert!(g.has_edge(0, 0));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn disconnected_nodes_each_form_an_scc() {
        let g = DiGraph::new(3);
        assert_eq!(g.sccs().len(), 3);
    }
}
