//! FD-independent stage-clique grouping for the parallel γ scheduler.
//!
//! Two next rules can have their feed phases collected concurrently
//! when no data can flow between their stage computations: no predicate
//! is reachable from both through any rule of the program. This module
//! certifies that independence with a union–find over predicates —
//! every rule unions its head with every body atom — so two next rules
//! land in the same group exactly when their head predicates share a
//! weakly-connected component of the dependency graph. Weak (not
//! strong) connectivity is deliberate: reading a shared EDB relation is
//! harmless for a read-only feed scan, but it also means the programs
//! share inputs, and the conservative merge keeps the scheduler's
//! determinism argument trivial (a group sees exactly the relations no
//! other group's γ commits can touch).
//!
//! All nine shipped programs form a single group — their stage, source
//! and cost predicates are one connected component — so the grouping
//! only fans out when a session loads genuinely independent programs
//! together (e.g. `gbc run prim.dl sort.dl …` or a multi-program serve
//! session). With one group the pool runs the single task inline and
//! the serial path is taken byte for byte.

use std::collections::HashMap;

use gbc_ast::{Literal, Program, Symbol};

/// Disjoint-set over interned predicate ids (path halving + union by
/// size — the program's predicate count is tiny, this is for clarity
/// not asymptotics).
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// The weakly-connected predicate components of a program.
#[derive(Clone, Debug)]
pub struct FeedGroups {
    comp_of_pred: HashMap<Symbol, usize>,
}

impl FeedGroups {
    /// The component id of `pred`, or `None` for a predicate the
    /// program never mentions.
    pub fn component_of(&self, pred: Symbol) -> Option<usize> {
        self.comp_of_pred.get(&pred).copied()
    }

    /// Partition the indices of `heads` (next-rule head predicates, in
    /// executor order) into FD-independent groups. Indices within a
    /// group stay ascending and groups are ordered by their smallest
    /// member, so iterating groups-then-members visits indices in the
    /// exact order a serial loop would — the property the coordinator
    /// merge relies on.
    pub fn partition(&self, heads: &[Symbol]) -> Vec<Vec<usize>> {
        let mut by_comp: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &h) in heads.iter().enumerate() {
            // Unknown predicates (can't happen for a validated program)
            // conservatively collapse into one group.
            let comp = self.component_of(h).unwrap_or(usize::MAX);
            match by_comp.iter_mut().find(|(c, _)| *c == comp) {
                Some((_, members)) => members.push(i),
                None => by_comp.push((comp, vec![i])),
            }
        }
        by_comp.into_iter().map(|(_, members)| members).collect()
    }
}

/// Build the predicate components of `program`: every rule unions its
/// head predicate with every positive and negative body atom.
pub fn feed_groups(program: &Program) -> FeedGroups {
    let mut ids: HashMap<Symbol, usize> = HashMap::new();
    let mut order: Vec<Symbol> = Vec::new();
    let intern = |s: Symbol, order: &mut Vec<Symbol>, ids: &mut HashMap<Symbol, usize>| {
        *ids.entry(s).or_insert_with(|| {
            order.push(s);
            order.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in &program.rules {
        let h = intern(r.head.pred, &mut order, &mut ids);
        for l in &r.body {
            if let Literal::Pos(a) | Literal::Neg(a) = l {
                let b = intern(a.pred, &mut order, &mut ids);
                edges.push((h, b));
            }
        }
    }
    let mut uf = UnionFind::new(order.len());
    for (a, b) in edges {
        uf.union(a, b);
    }
    // Stable component numbering: first predicate (in interning order)
    // of each set names it.
    let mut comp_ids: HashMap<usize, usize> = HashMap::new();
    let mut comp_of_pred = HashMap::new();
    for (i, &p) in order.iter().enumerate() {
        let root = uf.find(i);
        let next = comp_ids.len();
        let comp = *comp_ids.entry(root).or_insert(next);
        comp_of_pred.insert(p, comp);
    }
    FeedGroups { comp_of_pred }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_parser::parse_program;

    fn groups_of(src: &str) -> FeedGroups {
        feed_groups(&parse_program(src).expect("parse"))
    }

    #[test]
    fn connected_program_is_one_component() {
        let g = groups_of(
            "prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).\n\
             new_g(X, Y, C, I) <- prm(_, X, _, I), g(X, Y, C).\n\
             prm(0, 1, 0, 0).\n",
        );
        let heads: Vec<Symbol> = vec!["prm".into()];
        assert_eq!(g.partition(&heads), vec![vec![0]]);
        assert_eq!(g.component_of("prm".into()), g.component_of("g".into()));
    }

    #[test]
    fn disjoint_programs_split_and_shared_edb_merges() {
        let src = "a(X, I) <- next(I), fa(X), least(X, I).\n\
                   b(X, I) <- next(I), fb(X), least(X, I).\n\
                   c(X, I) <- next(I), fa(X), most(X, I).\n\
                   fa(1). fb(2).\n";
        let g = groups_of(src);
        let heads: Vec<Symbol> = vec!["a".into(), "b".into(), "c".into()];
        // a and c share the EDB predicate fa → one group; b is alone.
        assert_eq!(g.partition(&heads), vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn partition_orders_groups_by_smallest_member() {
        let src = "a(X, I) <- next(I), fa(X), least(X, I).\n\
                   b(X, I) <- next(I), fb(X), least(X, I).\n";
        let g = groups_of(src);
        let heads: Vec<Symbol> = vec!["b".into(), "a".into()];
        assert_eq!(g.partition(&heads), vec![vec![0], vec![1]]);
    }
}
