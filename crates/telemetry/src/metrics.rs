//! Monotonic counters for every layer of the executor path.
//!
//! All counters use relaxed atomics — they are single-writer in
//! practice (the executors are sequential) and only ever read at
//! report time, so `Relaxed` ordering is sufficient and the increment
//! compiles to one uncontended `lock xadd`/`ldadd`. The registry is
//! always compiled in; "disabled" simply means nobody reads it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// A monotonic `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge (records the maximum value ever observed).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// Raise the mark to `v` if larger.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current mark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The counter registry threaded through `exec`/`eval`. One instance
/// per run (shared via `Arc`); every field is independently updatable
/// through `&self`.
#[derive(Debug, Default)]
pub struct Metrics {
    // -- derivation --
    /// Facts derived by flat-rule (seminaive) saturation.
    pub tuples_derived: Counter,
    /// Seminaive rounds executed.
    pub flat_rounds: Counter,
    // -- storage: indices --
    /// Hash indices built (first `select` on a column set).
    pub index_builds: Counter,
    /// Index probes (every `select`).
    pub index_probes: Counter,
    /// Full `Row` clones materialised out of storage on the join path
    /// (legacy `select` copies; the compiled executor reads the arena
    /// in place and should keep this near zero).
    pub rows_cloned: Counter,
    /// Rule evaluations served by a cached compiled join plan instead
    /// of a fresh compilation.
    pub plan_cache_hits: Counter,
    // -- storage: the (R,Q,L) structure --
    /// Fresh insertions into some `Q_r` heap.
    pub heap_inserts: Counter,
    /// In-place key replacements (`IndexedHeap::update` via `Rql`).
    pub heap_replaces: Counter,
    /// Pops from some `Q_r` heap.
    pub heap_pops: Counter,
    /// r-congruence replacements: a queued representative displaced by
    /// a cheaper congruent fact (the paper's "f1 is deleted from Q_r
    /// and f is inserted" case).
    pub congruence_replacements: Counter,
    /// Inserts dominated by a cheaper queued congruent fact.
    pub rql_dominated: Counter,
    /// Inserts blocked because the congruence class already fired
    /// (`∈ L_r`).
    pub rql_used_blocked: Counter,
    /// Largest `|Q_r|` observed across all rules.
    pub queue_peak: MaxGauge,
    /// Heap cost comparisons served by the decode-free `Int` fast path
    /// (the type-analysis-licensed specialization; zero when the cost
    /// column is not proved `int` or analysis is off).
    pub heap_int_fast_compares: Counter,
    /// Rows that entered some `Q_r` through the fused feed→heap batch
    /// kernel (`Rql::extend_batch`). Like `heap_int_fast_compares`,
    /// this counter reports *which path* ran, not what was computed:
    /// it is the only counter allowed to differ between
    /// `GBC_NO_GAMMA_BATCH` on and off.
    pub heap_batch_pushes: Counter,
    // -- γ --
    /// Committed γ steps (next-rule and exit-rule firings).
    pub gamma_steps: Counter,
    /// Candidates popped from some `Q_r` and discarded to `R_r`.
    pub discarded_pops: Counter,
    /// Discards caused specifically by the on-the-fly `diffChoice`
    /// functional-dependency test.
    pub diffchoice_rejections: Counter,
    /// Discards caused by the next-expansion's `choice(W, I)` goal
    /// (the tuple ↔ stage bijection of Section 3).
    pub stage_reuse_rejections: Counter,
    /// Choice candidates weighed at γ decision points: heap pops on
    /// the greedy path, matched frames per choice rule on the generic
    /// and exit paths.
    pub choice_candidates_considered: Counter,
    // -- history --
    /// Per-round seminaive delta sizes, recorded only when built with
    /// [`Metrics::with_history`] (unbounded growth otherwise).
    record_history: bool,
    delta_history: Mutex<Vec<u64>>,
}

impl Metrics {
    /// A registry that does not retain per-round history.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// A registry that records per-round seminaive delta sizes.
    pub fn with_history() -> Metrics {
        Metrics { record_history: true, ..Metrics::default() }
    }

    /// Record the new-fact count of one seminaive round.
    pub fn record_delta(&self, new_facts: u64) {
        self.flat_rounds.inc();
        self.tuples_derived.add(new_facts);
        if self.record_history {
            self.delta_history.lock().expect("delta history lock").push(new_facts);
        }
    }

    /// Copy every counter into a plain, comparable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            tuples_derived: self.tuples_derived.get(),
            flat_rounds: self.flat_rounds.get(),
            index_builds: self.index_builds.get(),
            index_probes: self.index_probes.get(),
            rows_cloned: self.rows_cloned.get(),
            plan_cache_hits: self.plan_cache_hits.get(),
            heap_inserts: self.heap_inserts.get(),
            heap_replaces: self.heap_replaces.get(),
            heap_pops: self.heap_pops.get(),
            congruence_replacements: self.congruence_replacements.get(),
            rql_dominated: self.rql_dominated.get(),
            rql_used_blocked: self.rql_used_blocked.get(),
            queue_peak: self.queue_peak.get(),
            heap_int_fast_compares: self.heap_int_fast_compares.get(),
            heap_batch_pushes: self.heap_batch_pushes.get(),
            gamma_steps: self.gamma_steps.get(),
            discarded_pops: self.discarded_pops.get(),
            diffchoice_rejections: self.diffchoice_rejections.get(),
            stage_reuse_rejections: self.stage_reuse_rejections.get(),
            choice_candidates_considered: self.choice_candidates_considered.get(),
            delta_history: self.delta_history.lock().expect("delta history lock").clone(),
        }
    }
}

/// A plain-value copy of [`Metrics`], suitable for equality assertions
/// (determinism tests) and serialization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub tuples_derived: u64,
    pub flat_rounds: u64,
    pub index_builds: u64,
    pub index_probes: u64,
    pub rows_cloned: u64,
    pub plan_cache_hits: u64,
    pub heap_inserts: u64,
    pub heap_replaces: u64,
    pub heap_pops: u64,
    pub congruence_replacements: u64,
    pub rql_dominated: u64,
    pub rql_used_blocked: u64,
    pub queue_peak: u64,
    pub heap_int_fast_compares: u64,
    pub heap_batch_pushes: u64,
    pub gamma_steps: u64,
    pub discarded_pops: u64,
    pub diffchoice_rejections: u64,
    pub stage_reuse_rejections: u64,
    pub choice_candidates_considered: u64,
    pub delta_history: Vec<u64>,
}

impl Snapshot {
    /// `(name, value)` pairs for every scalar counter, in report order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("gamma_steps", self.gamma_steps),
            ("tuples_derived", self.tuples_derived),
            ("flat_rounds", self.flat_rounds),
            ("heap_inserts", self.heap_inserts),
            ("heap_replaces", self.heap_replaces),
            ("heap_pops", self.heap_pops),
            ("congruence_replacements", self.congruence_replacements),
            ("rql_dominated", self.rql_dominated),
            ("rql_used_blocked", self.rql_used_blocked),
            ("queue_peak", self.queue_peak),
            ("heap_int_fast_compares", self.heap_int_fast_compares),
            ("heap_batch_pushes", self.heap_batch_pushes),
            ("discarded_pops", self.discarded_pops),
            ("diffchoice_rejections", self.diffchoice_rejections),
            ("stage_reuse_rejections", self.stage_reuse_rejections),
            ("choice_candidates_considered", self.choice_candidates_considered),
            ("index_builds", self.index_builds),
            ("index_probes", self.index_probes),
            ("rows_cloned", self.rows_cloned),
            ("plan_cache_hits", self.plan_cache_hits),
        ]
    }

    /// Total heap operations — the quantity the Section 6 analysis
    /// bounds by `O(e log e)` for Prim-style programs.
    pub fn heap_ops(&self) -> u64 {
        self.heap_inserts + self.heap_replaces + self.heap_pops
    }

    /// Render as a JSON object (scalar counters plus the delta
    /// history array).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            self.entries().into_iter().map(|(k, v)| (k.to_owned(), Json::UInt(v))).collect();
        fields.push((
            "delta_history".to_owned(),
            Json::Arr(self.delta_history.iter().map(|&d| Json::UInt(d)).collect()),
        ));
        Json::Obj(fields)
    }

    /// Rebuild a snapshot from the JSON [`Snapshot::to_json`] wrote —
    /// the wire format of `gbc serve`'s `/run` response. Every scalar
    /// counter must be present and integral; `delta_history` is
    /// optional (runs recorded without history simply have none).
    /// The exact round trip is what lets a TCP client assert the same
    /// counter equalities an in-process caller would.
    pub fn from_json(json: &Json) -> Result<Snapshot, String> {
        let field = |name: &str| {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("counters JSON: missing or non-integral `{name}`"))
        };
        let delta_history = match json.get("delta_history") {
            None => Vec::new(),
            Some(arr) => arr
                .as_arr()
                .ok_or("counters JSON: `delta_history` is not an array")?
                .iter()
                .map(|d| d.as_u64().ok_or("counters JSON: non-integral delta"))
                .collect::<Result<Vec<u64>, _>>()?,
        };
        Ok(Snapshot {
            tuples_derived: field("tuples_derived")?,
            flat_rounds: field("flat_rounds")?,
            index_builds: field("index_builds")?,
            index_probes: field("index_probes")?,
            rows_cloned: field("rows_cloned")?,
            plan_cache_hits: field("plan_cache_hits")?,
            heap_inserts: field("heap_inserts")?,
            heap_replaces: field("heap_replaces")?,
            heap_pops: field("heap_pops")?,
            congruence_replacements: field("congruence_replacements")?,
            rql_dominated: field("rql_dominated")?,
            rql_used_blocked: field("rql_used_blocked")?,
            queue_peak: field("queue_peak")?,
            heap_int_fast_compares: field("heap_int_fast_compares")?,
            heap_batch_pushes: field("heap_batch_pushes")?,
            gamma_steps: field("gamma_steps")?,
            discarded_pops: field("discarded_pops")?,
            diffchoice_rejections: field("diffchoice_rejections")?,
            stage_reuse_rejections: field("stage_reuse_rejections")?,
            choice_candidates_considered: field("choice_candidates_considered")?,
            delta_history,
        })
    }

    /// A human-readable multi-line rendering, one `name: value` per
    /// line, aligned.
    pub fn render(&self) -> String {
        let entries = self.entries();
        let w = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in entries {
            out.push_str(&format!("{k:<w$}  {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.gamma_steps.inc();
        m.gamma_steps.add(4);
        m.queue_peak.observe(7);
        m.queue_peak.observe(3);
        let s = m.snapshot();
        assert_eq!(s.gamma_steps, 5);
        assert_eq!(s.queue_peak, 7);
    }

    #[test]
    fn history_is_opt_in() {
        let off = Metrics::new();
        off.record_delta(10);
        assert_eq!(off.snapshot().tuples_derived, 10);
        assert!(off.snapshot().delta_history.is_empty());

        let on = Metrics::with_history();
        on.record_delta(10);
        on.record_delta(0);
        assert_eq!(on.snapshot().delta_history, vec![10, 0]);
        assert_eq!(on.snapshot().flat_rounds, 2);
    }

    #[test]
    fn snapshots_compare_by_value() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.heap_pops.add(2);
        b.heap_pops.add(2);
        assert_eq!(a.snapshot(), b.snapshot());
        b.heap_pops.inc();
        assert_ne!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn json_rendering_includes_every_counter() {
        let m = Metrics::with_history();
        m.record_delta(3);
        let json = m.snapshot().to_json().to_string();
        for (name, _) in m.snapshot().entries() {
            assert!(json.contains(&format!("\"{name}\"")), "{name} missing from {json}");
        }
        assert!(json.contains("\"delta_history\":[3]"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::with_history();
        m.gamma_steps.add(7);
        m.heap_pops.add(3);
        m.queue_peak.observe(11);
        m.record_delta(5);
        m.record_delta(0);
        let snap = m.snapshot();
        let parsed = Json::parse(&snap.to_json().to_string()).expect("valid JSON");
        assert_eq!(Snapshot::from_json(&parsed).expect("round trip"), snap);
        // A history-free snapshot round-trips too (delta_history: []).
        let bare = Metrics::new().snapshot();
        let parsed = Json::parse(&bare.to_json().to_string()).expect("valid JSON");
        assert_eq!(Snapshot::from_json(&parsed).expect("round trip"), bare);
        // Missing counters are a structured error, not a default.
        assert!(Snapshot::from_json(&Json::obj(vec![("gamma_steps", Json::UInt(1))]))
            .unwrap_err()
            .contains("missing"));
    }

    #[test]
    fn heap_ops_sums_the_heap_counters() {
        let m = Metrics::new();
        m.heap_inserts.add(10);
        m.heap_replaces.add(2);
        m.heap_pops.add(7);
        assert_eq!(m.snapshot().heap_ops(), 19);
    }
}
