//! Property tests for the (R,Q,L) structure: conservation, class
//! uniqueness, and pop-order laws under random operation sequences.

use gbc_ast::Value;
use gbc_storage::{Row, Rql};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Insert (class, cost, payload).
    Insert(u8, i64, u8),
    /// Pop + commit.
    PopCommit,
    /// Pop + discard.
    PopDiscard,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), -100i64..100, any::<u8>()).prop_map(|(k, c, p)| Op::Insert(k % 8, c, p)),
        Just(Op::PopCommit),
        Just(Op::PopDiscard),
    ]
}

fn row(class: u8, cost: i64, payload: u8) -> Row {
    Row::new(vec![
        Value::int(i64::from(class)),
        Value::int(cost),
        Value::int(i64::from(payload)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rql_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut rql = Rql::new();
        let mut inserted: u64 = 0;
        let mut popped_committed: u64 = 0;
        let mut last_committed_cost: Option<i64> = None;
        let mut used_classes: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(class, cost, payload) => {
                    inserted += 1;
                    let key = vec![Value::int(i64::from(class))];
                    let outcome = rql.insert(key, Value::int(cost), row(class, cost, payload));
                    if used_classes.contains(&class) {
                        prop_assert_eq!(outcome, gbc_storage::rql::RqlOutcome::CongruentUsed);
                    }
                }
                Op::PopCommit => {
                    if let Some(p) = rql.pop_least() {
                        // Every queued class is unique: the popped class
                        // cannot already be used.
                        let class = p.key[0].as_int().unwrap() as u8;
                        prop_assert!(!used_classes.contains(&class));
                        used_classes.push(class);
                        popped_committed += 1;
                        if let Value::Int(c) = p.cost {
                            // Committed costs need not be monotone in
                            // general (later inserts may be cheaper), but
                            // when nothing was inserted in between, the
                            // next pop can't be cheaper. Track weakly:
                            let _ = last_committed_cost.replace(c);
                        }
                        rql.commit(p);
                    }
                }
                Op::PopDiscard => {
                    if let Some(p) = rql.pop_least() {
                        rql.discard(p);
                    }
                }
            }
            // Conservation: every inserted fact is queued, used-blocked,
            // replaced, dominated, discarded, or still queued.
            prop_assert!(rql.queue_len() <= 8, "≤ one queued row per class");
            prop_assert_eq!(rql.used_len() as u64, popped_committed);
        }
        // Total accounting: inserted = queued + used + redundant,
        // where `used` counts commits and `redundant` counts everything
        // that fell out along the way.
        prop_assert_eq!(
            inserted,
            rql.queue_len() as u64 + popped_committed + rql.redundant_count()
        );
    }

    /// Draining a freshly filled structure pops in non-decreasing cost
    /// order with exactly one representative per class (the cheapest).
    #[test]
    fn drain_order_is_sorted_and_class_unique(
        items in prop::collection::vec((0u8..12, -50i64..50), 1..80)
    ) {
        let mut rql = Rql::new();
        let mut best: std::collections::HashMap<u8, i64> = std::collections::HashMap::new();
        for (i, &(class, cost)) in items.iter().enumerate() {
            let key = vec![Value::int(i64::from(class))];
            rql.insert(key, Value::int(cost), row(class, cost, i as u8));
            best.entry(class)
                .and_modify(|b| *b = (*b).min(cost))
                .or_insert(cost);
        }
        let mut prev = i64::MIN;
        let mut seen = Vec::new();
        while let Some(p) = rql.pop_least() {
            let class = p.key[0].as_int().unwrap() as u8;
            let cost = p.cost.as_int().unwrap();
            prop_assert!(cost >= prev, "pop order must be non-decreasing");
            prev = cost;
            prop_assert!(!seen.contains(&class));
            prop_assert_eq!(cost, best[&class], "the class representative is its minimum");
            seen.push(class);
            rql.commit(p);
        }
        prop_assert_eq!(seen.len(), best.len());
    }
}
