//! Fact tuples.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use gbc_ast::Value;

/// An immutable fact tuple. Cloning is a reference-count bump, so rows
/// can live simultaneously in a relation, several indices, and an
/// (R,Q,L) structure without copying their values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(Arc<[Value]>);

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row(Arc::from(values))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Project the row onto the given columns (in the given order).
    ///
    /// # Panics
    /// Panics if a column index is out of range.
    pub fn project(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }
}

impl Deref for Row {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.0
    }
}

/// Lets hash sets/maps keyed by `Row` be probed with a plain value
/// slice, without materialising a `Row` (negation checks on the join
/// path). Sound because the derived `Hash`/`Eq`/`Ord` of the
/// single-field `Row` delegate to the `[Value]` impls through the
/// `Arc`, so a row and its borrowed slice always hash and compare
/// identically.
impl std::borrow::Borrow<[Value]> for Row {
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Row {
        Row::new(v)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Row {
        Row(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_reorders_columns() {
        let r = Row::new(vec![Value::sym("a"), Value::sym("b"), Value::int(3)]);
        assert_eq!(r.project(&[2, 0]), vec![Value::int(3), Value::sym("a")]);
    }

    #[test]
    fn rows_compare_by_value() {
        let a = Row::new(vec![Value::int(1), Value::int(2)]);
        let b = Row::new(vec![Value::int(1), Value::int(2)]);
        let c = Row::new(vec![Value::int(1), Value::int(3)]);
        assert_eq!(a, b);
        assert!(a < c);
    }

    #[test]
    fn deref_gives_slice_access() {
        let r = Row::new(vec![Value::int(7)]);
        assert_eq!(r[0], Value::int(7));
        assert_eq!(r.arity(), 1);
    }

    #[test]
    fn display_is_tuple_syntax() {
        let r = Row::new(vec![Value::sym("a"), Value::int(1)]);
        assert_eq!(r.to_string(), "(a,1)");
    }
}
