//! Example 6 — Huffman trees.
//!
//! The paper's program reads:
//!
//! ```text
//! h(X, C, 0) <- letter(X, C).
//! h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I, least(C),
//!                     choice(X, I), choice(Y, I).
//! feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
//!                            ¬subtree(X, L1), L1 < I, ¬subtree(Y, L2), L2 < I,
//!                            I = max(J, K), X != Y, C = C1 + C2.
//! ```
//!
//! Two problems make it non-executable as printed ([`PROGRAM_PAPER`]
//! preserves the text for reference):
//!
//! * the `¬subtree(X, L1), L1 < I` guards are **unsafe** (`L1` occurs
//!   only under negation);
//! * the guards cannot simply be dropped: `choice(X, I)` and
//!   `choice(Y, I)` are *independent* FDs, so a tree consumed as a left
//!   child may be re-consumed as a right child — without the guards the
//!   program has unbounded models over the `t` functor (it is outside
//!   next-Datalog, so the paper's finiteness theorem does not apply).
//!
//! [`PROGRAM`] is the equivalent *pick-pair* formulation: each stage
//! retires the cheapest not-yet-consumed tree through a **single**
//! choice FD (`choice(X, I)` — one consumption per tree, either role),
//! and a flat rule merges the picks of stages `2m−1` and `2m`:
//!
//! ```text
//! pick(nil, 0, 0).
//! pick(X, C, I) <- next(I), h(X, C, J), J < I, least(C), choice(X, I).
//! h(X, C, 0) <- letter(X, C).
//! h(t(X, Y), C, I) <- pick(X, C1, J), pick(Y, C2, I), I = J + 1,
//!                     (J mod 2) = 1, C = C1 + C2.
//! ```
//!
//! Two consecutive picks are exactly the two cheapest live trees —
//! classical Huffman. The executor runs it in `O(k log k)`: one queue
//! entry per tree (congruence key = the tree), `2(k−1)+1` γ steps.

use gbc_ast::{Symbol, Value};
use gbc_core::{compile, Compiled, CoreError, GreedyRun};
use gbc_storage::Database;

/// The paper's Example 6 as printed — **not executable** (see module
/// docs); kept for documentation and parser coverage.
pub const PROGRAM_PAPER: &str = "h(X, C, 0) <- letter(X, C).
h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I, least(C),
                    choice(X, I), choice(Y, I).
feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
                           I = max(J, K), X != Y, C = C1 + C2.";

/// The executable pick-pair formulation (see module docs).
pub const PROGRAM: &str = "pick(nil, 0, 0).
pick(X, C, I) <- next(I), h(X, C, J), J < I, least(C), choice(X, I).
h(X, C, 0) <- letter(X, C).
h(t(X, Y), C, I) <- pick(X, C1, J), pick(Y, C2, I), I = J + 1,
                    (J mod 2) = 1, C = C1 + C2.";

/// Compile the Huffman program.
pub fn compiled() -> Compiled {
    let program = gbc_parser::parse_program(PROGRAM).expect("static program text");
    compile(program).expect("Huffman is stage-stratified")
}

/// Encode `weights[i]` as `letter(i, w)` facts.
pub fn edb(weights: &[i64]) -> Database {
    let mut db = Database::new();
    for (i, &w) in weights.iter().enumerate() {
        db.insert_values("letter", vec![Value::int(i as i64), Value::int(w)]);
    }
    db
}

/// The root of the constructed tree: the `h` fact with the maximal
/// stage (the final merge), as a [`Value`] term over the `t` functor.
pub fn decode_root(run: &GreedyRun) -> Option<Value> {
    run.db
        .facts_of(Symbol::intern("h"))
        .iter()
        .max_by_key(|r| r[2].as_int().unwrap_or(i64::MIN))
        .map(|r| r[0].clone())
}

/// Depth of every leaf (symbol id) in a `t(..)`-term tree.
pub fn leaf_depths(tree: &Value) -> Vec<(u32, u32)> {
    fn walk(v: &Value, depth: u32, out: &mut Vec<(u32, u32)>) {
        match v {
            Value::Func(_, args) if args.len() == 2 => {
                walk(&args[0], depth + 1, out);
                walk(&args[1], depth + 1, out);
            }
            Value::Int(sym) => out.push((*sym as u32, depth)),
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(tree, 0, &mut out);
    out.sort_unstable();
    out
}

/// Weighted path length of a run's tree.
pub fn weighted_path_length(run: &GreedyRun, weights: &[i64]) -> Option<i64> {
    let root = decode_root(run)?;
    Some(leaf_depths(&root).iter().map(|&(sym, d)| weights[sym as usize] * i64::from(d)).sum())
}

/// Build the Huffman tree declaratively.
pub fn run_greedy(weights: &[i64]) -> Result<GreedyRun, CoreError> {
    compiled().run_greedy(&edb(weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::huffman::{huffman_tree, weighted_path_length as wpl_base};
    use gbc_core::ProgramClass;

    #[test]
    fn classifies_and_plans() {
        let c = compiled();
        assert_eq!(*c.class(), ProgramClass::StageStratified { alternating: true });
        assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    }

    #[test]
    fn the_paper_text_still_parses_and_classifies() {
        // The as-printed program (guards dropped for safety) is
        // recognised as stage-stratified — the classifier is syntactic;
        // non-termination over the t functor is a semantic property the
        // paper's own finiteness theorem (next-Datalog only) excludes.
        let p = gbc_parser::parse_program(PROGRAM_PAPER).unwrap();
        assert!(matches!(gbc_core::classify(&p).class, ProgramClass::StageStratified { .. }));
    }

    #[test]
    fn textbook_weights_reach_optimal_wpl() {
        let w = [5, 9, 12, 13, 16, 45];
        let run = run_greedy(&w).unwrap();
        let decl = weighted_path_length(&run, &w).unwrap();
        let base = huffman_tree(&w).map(|t| wpl_base(&t, &w)).unwrap();
        assert_eq!(decl, base, "equal weighted path length ⇒ equally optimal");
    }

    #[test]
    fn merge_count_is_k_minus_one() {
        let w = [3, 1, 4, 1, 5];
        let run = run_greedy(&w).unwrap();
        let h = run.db.facts_of(Symbol::intern("h"));
        // k leaves at stage 0 plus k−1 internal merges.
        assert_eq!(h.len(), w.len() + w.len() - 1);
        // γ steps: every tree except the root is consumed, plus the
        // final pick of the root: 2(k−1) + 1.
        assert_eq!(run.stats.gamma_steps as usize, 2 * (w.len() - 1) + 1);
    }

    #[test]
    fn every_leaf_appears_exactly_once() {
        let w = crate::workload::letter_freqs(9, 3);
        let run = run_greedy(&w).unwrap();
        let root = decode_root(&run).unwrap();
        let depths = leaf_depths(&root);
        let syms: Vec<u32> = depths.iter().map(|&(s, _)| s).collect();
        assert_eq!(syms, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn random_alphabets_match_baseline_wpl() {
        for seed in 0..4 {
            let w = crate::workload::letter_freqs(7, seed);
            let run = run_greedy(&w).unwrap();
            let decl = weighted_path_length(&run, &w).unwrap();
            let base = huffman_tree(&w).map(|t| wpl_base(&t, &w)).unwrap();
            assert_eq!(decl, base, "seed {seed}");
        }
    }

    #[test]
    fn two_symbols() {
        let w = [4, 6];
        let run = run_greedy(&w).unwrap();
        let root = decode_root(&run).unwrap();
        assert_eq!(leaf_depths(&root), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn single_symbol_tree_is_the_leaf() {
        let w = [7];
        let run = run_greedy(&w).unwrap();
        assert_eq!(decode_root(&run), Some(Value::int(0)));
    }
}
