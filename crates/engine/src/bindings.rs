//! Binding frames: variable assignments during rule-body matching.

use gbc_ast::{Value, VarId};

/// A flat binding frame indexed by [`VarId`]. Bind/unbind pairs follow a
/// trail discipline inside the matcher, so the frame is reused across
/// the whole enumeration of a rule body without allocation churn.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<Value>>,
}

impl Bindings {
    /// A frame with room for `n` variables, all unbound.
    pub fn new(n: usize) -> Bindings {
        Bindings { slots: vec![None; n] }
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Value> {
        self.slots.get(v.index()).and_then(Option::as_ref)
    }

    /// True when `v` is bound.
    pub fn is_bound(&self, v: VarId) -> bool {
        self.get(v).is_some()
    }

    /// Bind `v` to `val`.
    ///
    /// # Panics
    /// Debug-asserts that `v` was unbound — the matcher must check-and-
    /// compare rather than rebind.
    pub fn bind(&mut self, v: VarId, val: Value) {
        debug_assert!(self.slots[v.index()].is_none(), "rebinding {v:?}");
        self.slots[v.index()] = Some(val);
    }

    /// Remove the binding of `v` (trail rollback).
    pub fn unbind(&mut self, v: VarId) {
        self.slots[v.index()] = None;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no variables exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Snapshot of the current assignment (for collecting match results).
    pub fn snapshot(&self) -> Vec<Option<Value>> {
        self.slots.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_get_unbind() {
        let mut b = Bindings::new(3);
        assert!(!b.is_bound(VarId(1)));
        b.bind(VarId(1), Value::int(42));
        assert_eq!(b.get(VarId(1)), Some(&Value::int(42)));
        b.unbind(VarId(1));
        assert!(!b.is_bound(VarId(1)));
    }

    #[test]
    fn out_of_range_get_is_none() {
        let b = Bindings::new(1);
        assert_eq!(b.get(VarId(9)), None);
    }

    #[test]
    #[should_panic(expected = "rebinding")]
    #[cfg(debug_assertions)]
    fn rebinding_panics_in_debug() {
        let mut b = Bindings::new(1);
        b.bind(VarId(0), Value::int(1));
        b.bind(VarId(0), Value::int(2));
    }
}
