//! End-to-end pipeline tests: surface text → parse → pretty-print →
//! reparse → compile → run, plus the classification table for every
//! packaged paper program.

use gbc_core::{classify, compile, ProgramClass};
use gbc_greedy::{huffman, kruskal, matching, prim, sorting, spanning, student, tsp, workload};

/// Parse, print, reparse — then compile and run BOTH versions and
/// compare canonical models.
fn assert_print_parse_execution_equivalence(text: &str, edb: &gbc_storage::Database) {
    let p1 = gbc_parser::parse_program(text).unwrap();
    let printed = p1.to_string();
    let p2 = gbc_parser::parse_program(&printed).unwrap();

    let r1 = compile(p1).unwrap().run(edb).unwrap();
    let r2 = compile(p2).unwrap().run(edb).unwrap();
    assert_eq!(
        r1.db.canonical_form(),
        r2.db.canonical_form(),
        "print/parse round trip must not change the computed model:\n{printed}"
    );
}

#[test]
fn print_parse_execution_equivalence_across_programs() {
    let g = workload::connected_graph(8, 8, 30, 1);
    assert_print_parse_execution_equivalence(&prim::program_text(0), &g.to_edb());
    assert_print_parse_execution_equivalence(&spanning::program_stage_text(0), &g.to_edb());

    let items = workload::random_items(10, 2);
    assert_print_parse_execution_equivalence(sorting::PROGRAM, &sorting::edb(&items));

    let arcs = workload::random_arcs(6, 10, 3);
    assert_print_parse_execution_equivalence(matching::PROGRAM, &arcs.to_edb());

    let w = workload::letter_freqs(5, 4);
    assert_print_parse_execution_equivalence(huffman::PROGRAM, &huffman::edb(&w));

    let geo = workload::complete_geometric(5, 5);
    assert_print_parse_execution_equivalence(tsp::PROGRAM, &geo.to_edb());
}

#[test]
fn classification_table_matches_the_paper() {
    let expect = |text: &str, class: ProgramClass| {
        let p = gbc_parser::parse_program(text).unwrap();
        assert_eq!(classify(&p).class, class, "for program:\n{text}");
    };

    // The stage-stratified family (Theorems 1–3 apply).
    let alt = ProgramClass::StageStratified { alternating: true };
    expect(&prim::program_text(0), alt.clone());
    expect(sorting::PROGRAM, alt.clone());
    expect(matching::PROGRAM, alt.clone());
    expect(huffman::PROGRAM, alt.clone());
    expect(tsp::PROGRAM, alt.clone());
    expect(&spanning::program_stage_text(0), alt);

    // Choice-only (locally stratified modulo choice).
    expect(&spanning::program_choice_text(0), ProgramClass::Choice);
    expect(student::PROGRAM, ProgramClass::Choice);
    expect(student::PROGRAM_BI, ProgramClass::Choice);

    // Kruskal: outside strict stage stratification, as the paper says.
    let p = gbc_parser::parse_program(kruskal::PROGRAM).unwrap();
    assert!(matches!(classify(&p).class, ProgramClass::NotStageStratified { .. }));
}

#[test]
fn greedy_plans_exist_exactly_where_expected() {
    let has_plan =
        |text: &str| compile(gbc_parser::parse_program(text).unwrap()).unwrap().has_greedy_plan();
    assert!(has_plan(&prim::program_text(0)));
    assert!(has_plan(sorting::PROGRAM));
    assert!(has_plan(matching::PROGRAM));
    assert!(has_plan(huffman::PROGRAM));
    assert!(has_plan(tsp::PROGRAM));
    assert!(has_plan(&spanning::program_stage_text(0)));
    assert!(!has_plan(&spanning::program_choice_text(0)), "no next ⇒ no stage plan");
    assert!(!has_plan(kruskal::PROGRAM));
}

#[test]
fn executor_stats_reflect_the_cost_model() {
    // Prim on a graph with e directed edges: every edge enters new_g at
    // most once; γ commits exactly n−1 times; discarded pops are
    // bounded by the congruence classes (≤ n).
    let g = workload::connected_graph(32, 64, 100, 7);
    let (compiled, edb) = prim::prepared(&g, 0);
    let run = compiled.run_greedy(&edb).unwrap();
    assert_eq!(run.stats.gamma_steps as usize, g.n - 1);
    assert!(
        (run.stats.queue_peak) <= g.n,
        "Prim's Q_r holds one candidate per congruence class (target node): {} > {}",
        run.stats.queue_peak,
        g.n
    );

    // Sorting: every tuple is its own class; the queue peaks at n.
    let items = workload::random_items(64, 8);
    let run = sorting::compiled().run_greedy(&sorting::edb(&items)).unwrap();
    assert_eq!(run.stats.gamma_steps, 64);
    assert!(run.stats.queue_peak <= 64);
    assert_eq!(run.stats.discarded, 0, "sorting never discards");
}

#[test]
fn chosen_records_cover_every_gamma_step() {
    let g = workload::connected_graph(10, 10, 50, 9);
    let (compiled, edb) = prim::prepared(&g, 0);
    let run = compiled.run_greedy(&edb).unwrap();
    assert_eq!(run.chosen.len() as u64, run.stats.gamma_steps);
    for rec in &run.chosen {
        // Prim's expanded rule has 3 choice goals: the original
        // choice(Y, X) plus the two stage FDs from the next expansion.
        assert_eq!(rec.pairs.len(), 3);
        assert!(!rec.chosen_args.is_empty());
    }
}
