//! Property tests for the value order and the term model — the total
//! order on [`Value`] underpins every priority queue in the system, so
//! its lawfulness is load-bearing.
//!
//! Seeded-loop style: random cases come from the in-tree deterministic
//! PRNG, so every failure reproduces exactly.

use gbc_ast::{Symbol, Term, Value};
use gbc_telemetry::rng::Rng;

/// A random value, including nested functor terms up to `depth` levels.
fn random_value(rng: &mut Rng, depth: u32) -> Value {
    let branch = if depth == 0 { rng.below(4) } else { rng.below(5) };
    match branch {
        0 => Value::Nil,
        1 => Value::Int(rng.range_i64(i64::MIN / 2, i64::MAX / 2)),
        2 => {
            let len = 1 + rng.below_usize(7);
            let s: String = (0..len)
                .map(|i| {
                    let alphabet =
                        if i == 0 { &b"abcdefghij"[..] } else { &b"abcdefghij0123_"[..] };
                    alphabet[rng.below_usize(alphabet.len())] as char
                })
                .collect();
            Value::sym(&s)
        }
        3 => {
            let len = rng.below_usize(9);
            let s: String = (0..len).map(|_| (b' ' + rng.below(95) as u8) as char).collect();
            Value::str(&s)
        }
        _ => {
            let name = ["t", "f", "pair"][rng.below_usize(3)];
            let n_args = rng.below_usize(3);
            let args = (0..n_args).map(|_| random_value(rng, depth - 1)).collect();
            Value::func(name, args)
        }
    }
}

/// Total order laws: antisymmetry and transitivity, reflexivity of
/// equality.
#[test]
fn ordering_is_total_and_consistent() {
    use std::cmp::Ordering;
    let mut rng = Rng::new(0x5EED_0007);
    for case in 0..256 {
        let a = random_value(&mut rng, 3);
        let b = random_value(&mut rng, 3);
        let c = random_value(&mut rng, 3);
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater, "case {case}"),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less, "case {case}"),
            Ordering::Equal => {
                assert_eq!(&a, &b, "case {case}");
                assert_eq!(b.cmp(&a), Ordering::Equal, "case {case}");
            }
        }
        // Transitivity.
        if a <= b && b <= c {
            assert!(a <= c, "case {case}");
        }
        // Reflexivity.
        assert_eq!(a.cmp(&a), Ordering::Equal, "case {case}");
    }
}

/// Equal values hash equally.
#[test]
fn eq_implies_hash_eq() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut rng = Rng::new(0x5EED_0008);
    for case in 0..256 {
        let a = random_value(&mut rng, 3);
        let b = a.clone();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish(), "case {case}");
    }
}

/// Ground terms convert to values and back structurally: a ground
/// `Term` built from a `Value` evaluates to that value.
#[test]
fn ground_term_value_round_trip() {
    fn to_term(v: &Value) -> Term {
        match v {
            Value::Func(f, args) => Term::Func(*f, args.iter().map(to_term).collect()),
            other => Term::Const(other.clone()),
        }
    }
    let mut rng = Rng::new(0x5EED_0009);
    for case in 0..256 {
        let v = random_value(&mut rng, 3);
        let t = to_term(&v);
        assert!(t.is_ground(), "case {case}");
        assert_eq!(t.as_value(), Some(v), "case {case}");
    }
}

/// Symbol interning round-trips arbitrary identifiers.
#[test]
fn symbol_round_trip() {
    let mut rng = Rng::new(0x5EED_000A);
    for case in 0..256 {
        let len = 1 + rng.below_usize(16);
        let s: String = (0..len)
            .map(|i| {
                let alphabet =
                    if i == 0 { &b"abcdefghijklmnop"[..] } else { &b"abcdefgh01234_"[..] };
                alphabet[rng.below_usize(alphabet.len())] as char
            })
            .collect();
        let sym = Symbol::intern(&s);
        assert_eq!(sym.as_str(), s.as_str(), "case {case}");
        assert_eq!(Symbol::intern(&s), sym, "case {case}");
    }
}
