//! Structured event journal sinks.
//!
//! [`crate::trace::TraceEvent`] carries the typed payload; this module
//! provides the sinks that keep the structure instead of flattening to
//! stderr strings:
//!
//! - [`JournalBuffer`] — in-memory list of JSON events, exportable as a
//!   JSON array (embedded in `--stats-json`) or as JSON-lines
//!   (`--journal-json`).
//! - [`ChromeTrace`] — Chrome trace-event JSON (the `{"traceEvents":
//!   [...]}` object format), loadable in Perfetto or `chrome://tracing`
//!   via `--trace-json`. Events are recorded as *instant* events
//!   (`"ph": "i"`) with microsecond timestamps relative to sink
//!   creation; the typed payload rides in `args`. Parallel saturation
//!   chunks ([`TraceEvent::WorkerChunk`]) render instead as *complete*
//!   events (`"ph": "X"`, with `dur`) on one lane per worker — thread
//!   id `2 + worker` under the shared pid, named via `thread_name`
//!   metadata — so Perfetto shows true per-worker occupancy tracks.
//!   Serial runs emit no worker events and produce byte-identical
//!   output to earlier releases.
//! - [`TeeTrace`] — fans one event stream out to several sinks so the
//!   stderr rendering and the structured captures can coexist.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;
use crate::trace::{TraceEvent, TraceSink};

/// Collects events as structured JSON objects, in order.
#[derive(Debug, Default)]
pub struct JournalBuffer {
    events: Mutex<Vec<Json>>,
}

impl JournalBuffer {
    /// Empty journal.
    pub fn new() -> JournalBuffer {
        JournalBuffer::default()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("journal lock").len()
    }

    /// Has nothing been captured?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The captured events, as JSON values.
    pub fn events(&self) -> Vec<Json> {
        self.events.lock().expect("journal lock").clone()
    }

    /// The journal as one JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.events())
    }

    /// The journal as JSON-lines: one compact object per line, with a
    /// trailing newline when non-empty.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for JournalBuffer {
    fn event(&self, ev: &TraceEvent) {
        self.events.lock().expect("journal lock").push(ev.to_json());
    }
}

/// Records events in the Chrome trace-event JSON format.
#[derive(Debug)]
pub struct ChromeTrace {
    epoch: Instant,
    events: Mutex<Vec<Json>>,
    /// Worker lanes seen so far (`tid = 2 + worker`); drives the
    /// `thread_name` metadata emitted by [`ChromeTrace::to_json`].
    lanes: Mutex<Vec<usize>>,
}

impl Default for ChromeTrace {
    fn default() -> ChromeTrace {
        ChromeTrace::new()
    }
}

impl ChromeTrace {
    /// Empty trace; timestamps count from this call.
    pub fn new() -> ChromeTrace {
        ChromeTrace {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("chrome trace lock").len()
    }

    /// Has nothing been captured?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full trace file contents: the Chrome trace-event object
    /// format (`traceEvents` array plus a display hint). When the run
    /// fanned out over a worker pool, `thread_name` metadata events
    /// naming each worker lane are prepended; serial traces carry no
    /// metadata and render exactly as before.
    pub fn to_json(&self) -> Json {
        let mut events = Vec::new();
        let lanes = self.lanes.lock().expect("chrome trace lock").clone();
        for worker in lanes {
            events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".to_owned())),
                ("ph", Json::Str("M".to_owned())),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(2 + worker as u64)),
                ("args", Json::obj(vec![("name", Json::Str(format!("worker {worker}")))])),
            ]));
        }
        events.extend(self.events.lock().expect("chrome trace lock").iter().cloned());
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".to_owned())),
        ])
    }
}

impl TraceSink for ChromeTrace {
    fn event(&self, ev: &TraceEvent) {
        let entry = if let TraceEvent::WorkerChunk { worker, dur_us, .. } = ev {
            // A complete event on the worker's own lane. The chunk is
            // recorded at its end, so its start is now − dur.
            let end = self.epoch.elapsed().as_micros() as u64;
            let ts = end.saturating_sub(*dur_us);
            {
                let mut lanes = self.lanes.lock().expect("chrome trace lock");
                if !lanes.contains(worker) {
                    lanes.push(*worker);
                    lanes.sort_unstable();
                }
            }
            Json::obj(vec![
                ("name", Json::Str(ev.kind().to_owned())),
                ("ph", Json::Str("X".to_owned())),
                ("ts", Json::UInt(ts)),
                ("dur", Json::UInt(*dur_us)),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(2 + *worker as u64)),
                ("args", ev.to_json()),
            ])
        } else {
            let ts = self.epoch.elapsed().as_micros() as u64;
            Json::obj(vec![
                ("name", Json::Str(ev.kind().to_owned())),
                ("ph", Json::Str("i".to_owned())),
                ("ts", Json::UInt(ts)),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(1)),
                ("s", Json::Str("t".to_owned())),
                ("args", ev.to_json()),
            ])
        };
        self.events.lock().expect("chrome trace lock").push(entry);
    }
}

/// Forwards every event to each wrapped sink, in order.
pub struct TeeTrace {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeTrace {
    /// Tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> TeeTrace {
        TeeTrace { sinks }
    }
}

impl std::fmt::Debug for TeeTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeTrace").field("sinks", &self.sinks.len()).finish()
    }
}

impl TraceSink for TeeTrace {
    fn event(&self, ev: &TraceEvent) {
        for sink in &self.sinks {
            sink.event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DiscardReason;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::FlatRound { round: 1, new_facts: 4 },
            TraceEvent::Discard {
                pred: "prm".into(),
                reason: DiscardReason::DiffChoice,
                row: "(1, 2)".into(),
            },
            TraceEvent::ChoiceAudit { rule: 0, pred: "prm".into(), considered: 3, rejected: 1 },
        ]
    }

    #[test]
    fn journal_keeps_structured_events_in_order() {
        let j = JournalBuffer::new();
        for ev in sample_events() {
            j.event(&ev);
        }
        assert_eq!(j.len(), 3);
        let evs = j.events();
        assert_eq!(evs[0].to_string(), r#"{"type":"flat_round","round":1,"new_facts":4}"#);
        assert!(evs[2].to_string().contains("\"type\":\"choice_audit\""));
    }

    #[test]
    fn jsonl_is_one_compact_object_per_line() {
        let j = JournalBuffer::new();
        for ev in sample_events() {
            j.event(&ev);
        }
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        }
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn chrome_trace_wraps_instant_events() {
        let c = ChromeTrace::new();
        for ev in sample_events() {
            c.event(&ev);
        }
        let Json::Obj(fields) = c.to_json() else { panic!("trace file must be an object") };
        assert_eq!(fields[0].0, "traceEvents");
        let Json::Arr(events) = &fields[0].1 else { panic!("traceEvents must be an array") };
        assert_eq!(events.len(), 3);
        for ev in events {
            let s = ev.to_string();
            assert!(s.contains("\"ph\":\"i\""), "not an instant event: {s}");
            assert!(s.contains("\"ts\":"), "missing timestamp: {s}");
            assert!(s.contains("\"args\":{\"type\":"), "missing typed args: {s}");
        }
    }

    #[test]
    fn worker_chunks_become_complete_events_on_their_own_lanes() {
        let c = ChromeTrace::new();
        c.event(&TraceEvent::FlatRound { round: 1, new_facts: 4 });
        c.event(&TraceEvent::WorkerChunk { worker: 1, rule: 0, items: 100, dur_us: 7 });
        c.event(&TraceEvent::WorkerChunk { worker: 0, rule: 0, items: 90, dur_us: 5 });
        let file = c.to_json();
        let Some(Json::Arr(events)) = file.get("traceEvents") else { panic!("traceEvents") };
        // Two thread_name metadata events first, in lane order.
        assert_eq!(events[0].get("ph"), Some(&Json::Str("M".into())));
        assert_eq!(events[0].get("tid"), Some(&Json::UInt(2)));
        assert_eq!(events[1].get("tid"), Some(&Json::UInt(3)));
        // The instant event keeps its serial shape on tid 1.
        assert_eq!(events[2].get("ph"), Some(&Json::Str("i".into())));
        assert_eq!(events[2].get("tid"), Some(&Json::UInt(1)));
        // Worker chunks are complete events with a duration on 2+worker.
        assert_eq!(events[3].get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(events[3].get("tid"), Some(&Json::UInt(3)));
        assert_eq!(events[3].get("dur"), Some(&Json::UInt(7)));
        assert_eq!(events[4].get("tid"), Some(&Json::UInt(2)));
    }

    #[test]
    fn serial_traces_carry_no_lane_metadata() {
        let c = ChromeTrace::new();
        for ev in sample_events() {
            c.event(&ev);
        }
        let file = c.to_json();
        let Some(Json::Arr(events)) = file.get("traceEvents") else { panic!("traceEvents") };
        assert_eq!(events.len(), 3, "no metadata events without worker lanes");
        for ev in events {
            assert_eq!(ev.get("tid"), Some(&Json::UInt(1)));
            assert_eq!(ev.get("ph"), Some(&Json::Str("i".into())));
        }
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let a = Arc::new(JournalBuffer::new());
        let b = Arc::new(JournalBuffer::new());
        let tee = TeeTrace::new(vec![a.clone(), b.clone()]);
        tee.event(&TraceEvent::FlatRound { round: 1, new_facts: 2 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
