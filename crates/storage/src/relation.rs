//! Duplicate-free, insertion-ordered relations with cached indices.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

use gbc_ast::Value;
use gbc_telemetry::Metrics;

use crate::index::Index;
use crate::tuple::Row;

/// A relation: an insertion-ordered set of [`Row`]s.
///
/// Insertion order is exposed so that evaluation is fully deterministic
/// (given a deterministic chooser) regardless of hash seeds. Indices on
/// column subsets are created lazily behind a `RefCell` — the engine
/// reads relations through `&Relation` while staging derived tuples
/// elsewhere, so interior mutability confines itself to the index cache.
#[derive(Debug, Default)]
pub struct Relation {
    order: Vec<Row>,
    set: HashSet<Row>,
    /// Cached indices, keyed by their column bitmask (bit i ⇒ column i
    /// participates, in ascending column order).
    indices: RefCell<Vec<(u64, Index)>>,
    /// Shared counter registry; index builds/probes are reported here
    /// when attached.
    metrics: Option<Arc<Metrics>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // Indices are caches; don't copy them.
        Relation {
            order: self.order.clone(),
            set: self.set.clone(),
            indices: RefCell::new(Vec::new()),
            metrics: self.metrics.clone(),
        }
    }
}

fn mask_of(cols: &[usize]) -> u64 {
    cols.iter().fold(0u64, |m, &c| {
        assert!(c < 64, "relations support at most 64 indexable columns");
        m | (1 << c)
    })
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Attach a counter registry; index builds and probes report to it.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Insert a row; returns `false` if it was already present.
    pub fn insert(&mut self, row: Row) -> bool {
        if !self.set.insert(row.clone()) {
            return false;
        }
        for (_, idx) in self.indices.get_mut().iter_mut() {
            idx.insert(&row);
        }
        self.order.push(row);
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &Row) -> bool {
        self.set.contains(row)
    }

    /// Rows in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.order.iter()
    }

    /// The `i`-th row in insertion order.
    pub fn get(&self, i: usize) -> Option<&Row> {
        self.order.get(i)
    }

    /// Rows inserted at or after position `from` (used for deltas).
    pub fn since(&self, from: usize) -> &[Row] {
        &self.order[from.min(self.order.len())..]
    }

    /// Rows whose projection on `cols` (ascending column order) equals
    /// `key`. Builds and caches an index for `cols` on first use;
    /// subsequent inserts maintain it.
    ///
    /// `key` must list values in the same ascending-column order.
    pub fn select(&self, cols: &[usize], key: &[Value]) -> Vec<Row> {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        debug_assert_eq!(cols.len(), key.len());
        if cols.is_empty() {
            return self.order.clone();
        }
        let mask = mask_of(cols);
        if let Some(m) = &self.metrics {
            m.index_probes.inc();
        }
        let mut cache = self.indices.borrow_mut();
        if let Some((_, idx)) = cache.iter().find(|(m, _)| *m == mask) {
            return idx.get(key).to_vec();
        }
        if let Some(m) = &self.metrics {
            m.index_builds.inc();
        }
        let idx = Index::build(cols.to_vec(), self.order.iter());
        let result = idx.get(key).to_vec();
        cache.push((mask, idx));
        result
    }

    /// Drop all cached indices (tests / memory pressure).
    pub fn clear_indices(&self) {
        self.indices.borrow_mut().clear();
    }

    /// Number of cached indices (for tests).
    pub fn num_indices(&self) -> usize {
        self.indices.borrow().len()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Row> for Relation {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Relation {
        let mut r = Relation::new();
        for row in iter {
            r.insert(row);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new();
        assert!(r.insert(row(&[1, 2])));
        assert!(!r.insert(row(&[1, 2])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new();
        for k in [3, 1, 2] {
            r.insert(row(&[k]));
        }
        let got: Vec<i64> = r.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![3, 1, 2]);
    }

    #[test]
    fn select_builds_index_once_and_maintains_it() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[2, 20]));
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 1);
        assert_eq!(r.num_indices(), 1);
        // Insert after the index exists: the index must see the new row.
        r.insert(row(&[1, 30]));
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 2);
        assert_eq!(r.num_indices(), 1);
    }

    #[test]
    fn select_with_empty_cols_scans_everything() {
        let mut r = Relation::new();
        r.insert(row(&[1]));
        r.insert(row(&[2]));
        assert_eq!(r.select(&[], &[]).len(), 2);
    }

    #[test]
    fn since_returns_suffix() {
        let mut r = Relation::new();
        r.insert(row(&[1]));
        let mark = r.len();
        r.insert(row(&[2]));
        r.insert(row(&[3]));
        let delta: Vec<i64> = r.since(mark).iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(delta, vec![2, 3]);
        assert!(r.since(100).is_empty());
    }

    #[test]
    fn metrics_count_builds_and_probes() {
        let m = Arc::new(Metrics::new());
        let mut r = Relation::new();
        r.set_metrics(Arc::clone(&m));
        r.insert(row(&[1, 10]));
        r.select(&[0], &[Value::int(1)]); // probe + build
        r.select(&[0], &[Value::int(1)]); // probe only
        r.select(&[], &[]); // full scan: neither
        let s = m.snapshot();
        assert_eq!(s.index_builds, 1);
        assert_eq!(s.index_probes, 2);
    }

    #[test]
    fn distinct_masks_get_distinct_indices() {
        let mut r = Relation::new();
        r.insert(row(&[1, 2, 3]));
        r.select(&[0], &[Value::int(1)]);
        r.select(&[0, 2], &[Value::int(1), Value::int(3)]);
        assert_eq!(r.num_indices(), 2);
    }
}
