//! Unit tests for the greedy plan compiler: template matching, chain
//! detection, and congruence-key derivation (the Section 6 machinery).

use gbc_ast::Value;
use gbc_core::{compile, CoreError, GreedyConfig, ProgramClass};
use gbc_storage::Database;

fn compiled(text: &str) -> gbc_core::Compiled {
    compile(gbc_parser::parse_program(text).unwrap()).unwrap()
}

#[test]
fn prim_plan_congruence_is_the_target_node() {
    // One choice goal choice(Y, X): drop the determined X; drop the
    // stage J (frontier mode) and the cost C — key = {Y} (column 1).
    let c = compiled(
        "prm(nil, 0, 0, 0).
         prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, Y != 0,
                            least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
    );
    assert!(c.has_greedy_plan());
    // Probe behaviour: on a star graph every edge targets a distinct
    // node; the queue peak equals the number of distinct targets.
    let mut edb = Database::new();
    for k in 1..=5i64 {
        edb.insert_values("g", vec![Value::int(0), Value::int(k), Value::int(k)]);
        edb.insert_values("g", vec![Value::int(k), Value::int(0), Value::int(k)]);
    }
    let run = c.run_greedy(&edb).unwrap();
    assert_eq!(run.stats.gamma_steps, 5);
    assert!(run.stats.queue_peak <= 5, "one class per target: {}", run.stats.queue_peak);
}

#[test]
fn sorting_plan_keeps_every_tuple_distinct() {
    // No choice goals: the cost column must stay in the key, so equal-id
    // different-cost tuples are distinct classes.
    let c = compiled(
        "sp(nil, 0, 0).
         sp(X, C, I) <- next(I), p(X, C), least(C, I).",
    );
    let mut edb = Database::new();
    edb.insert_values("p", vec![Value::sym("a"), Value::int(1)]);
    edb.insert_values("p", vec![Value::sym("a"), Value::int(2)]);
    edb.insert_values("p", vec![Value::sym("a"), Value::int(3)]);
    let run = c.run_greedy(&edb).unwrap();
    // All three (a, c) tuples are ranked.
    assert_eq!(run.stats.gamma_steps, 3);
}

#[test]
fn two_positive_atoms_fall_outside_the_template() {
    let c = compiled(
        "p(nil, 0).
         p(X, I) <- next(I), q(X), r(X).",
    );
    assert!(!c.has_greedy_plan());
    assert!(c.plan_error().unwrap().contains("positive atoms"));
    // The generic path still errors gracefully or runs.
    let err = c.run_greedy(&Database::new());
    assert!(matches!(err, Err(CoreError::NoGreedyPlan { .. })));
}

#[test]
fn negation_in_next_rules_is_rejected_from_the_template() {
    let c = compiled(
        "p(nil, 0).
         p(X, I) <- next(I), q(X), not bad(X).",
    );
    assert!(!c.has_greedy_plan());
    assert!(c.plan_error().unwrap().contains("negated"));
}

#[test]
fn non_source_cost_variable_is_rejected() {
    // least cost must be a source column.
    let c = compiled(
        "p(nil, 0, 0).
         p(X, D, I) <- next(I), q(X, C), D = C * 2, least(D, I).",
    );
    assert!(!c.has_greedy_plan());
}

#[test]
fn two_next_rules_for_one_predicate_are_rejected() {
    let c = compiled(
        "p(nil, 0).
         p(X, I) <- next(I), q(X).
         p(X, I) <- next(I), r(X).",
    );
    assert!(!c.has_greedy_plan());
    assert!(c.plan_error().unwrap().contains("two next rules"));
}

#[test]
fn chain_mode_discards_stale_stages() {
    // tsp-style: I = J + 1 forces extensions from the latest stage only.
    let c = compiled(
        "w(nil, 0, 0).
         w(X, C, I) <- next(I), s(X, C, J), I = J + 1, least(C, I), choice(X, ()).
         s(X, C, J) <- w(_, _, J), step(X, C).",
    );
    assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    let mut edb = Database::new();
    edb.insert_values("step", vec![Value::sym("a"), Value::int(1)]);
    edb.insert_values("step", vec![Value::sym("b"), Value::int(2)]);
    let run = c.run_greedy(&edb).unwrap();
    // Stage 1 picks a (cheapest), stage 2 picks b; chain stops when the
    // FD blocks both (each X chosen once).
    assert_eq!(run.stats.gamma_steps, 2);
    assert!(run.stats.discarded > 0, "stale J rows must be discarded");
}

#[test]
fn missing_initial_stage_fact_is_reported() {
    // No exit fact for p: the queue fills but no stage exists.
    let c = compiled("p(X, I) <- next(I), q(X).");
    assert!(c.has_greedy_plan());
    let mut edb = Database::new();
    edb.insert_values("q", vec![Value::sym("a")]);
    assert!(matches!(c.run_greedy(&edb), Err(CoreError::NoGreedyPlan { .. })));
}

#[test]
fn step_budget_is_enforced() {
    let c = compiled(
        "sp(nil, 0, 0).
         sp(X, C, I) <- next(I), p(X, C), least(C, I).",
    );
    let mut edb = Database::new();
    for k in 0..10i64 {
        edb.insert_values("p", vec![Value::int(k), Value::int(k)]);
    }
    let err = c.run_greedy_with(&edb, GreedyConfig { max_steps: 3, ..GreedyConfig::default() });
    assert!(matches!(err, Err(CoreError::StepLimit { .. })));
}

#[test]
fn non_integer_stage_is_reported() {
    let c = compiled(
        "p(nil, bogus).
         p(X, I) <- next(I), q(X).",
    );
    let mut edb = Database::new();
    edb.insert_values("q", vec![Value::sym("a")]);
    assert!(matches!(c.run_greedy(&edb), Err(CoreError::NonIntegerStage { .. })));
}

#[test]
fn choice_class_is_reported_for_choice_only_programs() {
    let c = compiled("a(X, Y) <- t(X, Y), choice(X, Y).");
    assert_eq!(*c.class(), ProgramClass::Choice);
    assert!(!c.has_greedy_plan());
    // run() falls back to the generic fixpoint.
    let mut edb = Database::new();
    edb.insert_values("t", vec![Value::int(1), Value::int(2)]);
    edb.insert_values("t", vec![Value::int(1), Value::int(3)]);
    let run = c.run(&edb).unwrap();
    assert_eq!(run.db.count(gbc_ast::Symbol::intern("a")), 1, "FD X→Y picks one");
    assert_eq!(run.chosen.len(), 1);
}

#[test]
fn w_fd_prevents_recommitting_exit_tuples() {
    // A malicious chain: the source relation regenerates the exit tuple
    // at every stage; choice(W, I) (enforced via the head-tuple FD)
    // must stop after the first commitment.
    let c = compiled(
        "w(seed, 0).
         w(X, I) <- next(I), s(X, J), I = J + 1, choice(X, ()).
         s(X, J) <- w(X, J).",
    );
    assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    let run = c.run_greedy(&Database::new()).unwrap();
    // s(seed, 0) is the only candidate; committing w(seed, 1) would
    // regenerate s(seed, 1) → w(seed, 2) → … without the W → I check.
    assert!(run.stats.gamma_steps <= 1, "ran {} steps", run.stats.gamma_steps);
}
