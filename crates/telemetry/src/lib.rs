//! # gbc-telemetry
//!
//! Engine-wide instrumentation for the Greedy-by-Choice system:
//!
//! * [`metrics`] — monotonic counters (tuples derived, heap operations,
//!   index builds/probes, γ steps, diffChoice rejections, …) behind
//!   relaxed atomics, always compiled and cheap enough to leave on;
//! * [`span`] — `Instant`-based phase timers with a hierarchical
//!   report (flat-rule saturation, γ choice, per-stage totals);
//! * [`trace`] — a [`trace::TraceSink`] trait with a human-readable
//!   one-line-per-event mode mirroring the paper's tuple ↔ stage
//!   bijection (Section 3), plus a structured JSON form per event;
//! * [`journal`] — structured sinks over the same event stream: an
//!   in-memory JSON journal (embeddable in `--stats-json`, exportable
//!   as JSON-lines) and a Chrome trace-event writer for Perfetto;
//! * [`profiler`] — a per-rule wall-clock profiler (firings, tuples,
//!   cumulative time, plan-cache hits) behind the same zero-cost-when-
//!   disabled discipline as the phase timers;
//! * [`json`] — a hand-rolled JSON value writer (no serde) for
//!   `--stats-json` trajectories;
//! * [`rng`] — a seeded SplitMix64 / xoshiro256** PRNG replacing the
//!   external `rand` crate, keeping the workspace free of registry
//!   dependencies.
//!
//! The crate deliberately depends on nothing but `std`, so every other
//! crate in the workspace can link it — including `gbc-storage` at the
//! bottom of the dependency stack.
//!
//! The one-stop handle is [`Telemetry`]: a cheap, clonable bundle of a
//! shared [`metrics::Metrics`] registry, a [`span::Phases`] timer, and
//! an optional trace sink, passed down through `exec`/`eval`.

pub mod hist;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profiler;
pub mod registry;
pub mod rng;
pub mod span;
pub mod trace;

use std::sync::{Arc, Mutex};

pub use hist::Histogram;
pub use journal::{ChromeTrace, JournalBuffer, TeeTrace};
pub use json::Json;
pub use metrics::{Counter, MaxGauge, Metrics, Snapshot};
pub use profiler::{RuleProf, RuleProfiler};
pub use registry::{Gauge, MetricsRegistry, SharedHist};
pub use rng::{Rng, SplitMix64};
pub use span::Phases;
pub use trace::{BufferTrace, DiscardReason, StderrTrace, TraceEvent, TraceSink};

/// Version of the `--stats-json` payload schema ([`Telemetry::to_json`]).
/// Bump when the report shape changes incompatibly; consumers should
/// check it before parsing (see DESIGN.md, "JSON schemas").
/// v2 added the `dictionary` block (value-interning counters).
pub const STATS_SCHEMA_VERSION: u64 = 2;

/// The instrumentation bundle threaded through the executors.
///
/// Clones share state: counters, phase accumulators and the trace sink
/// all live behind `Arc`s, so a run can hand the same `Telemetry` to
/// the storage layer, the seminaive driver and the γ loop and read one
/// coherent picture at the end.
#[derive(Clone, Default)]
pub struct Telemetry {
    /// The counter registry. Always counting (relaxed atomics).
    pub metrics: Arc<Metrics>,
    /// Phase timers. Disabled by default — `time` then runs the
    /// closure without touching the clock.
    pub phases: Arc<Phases>,
    /// Trace sink, absent unless `--trace`-style observation is on.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Per-rule profiler. Disabled by default — recording methods then
    /// return without touching the clock or any lock.
    pub profiler: Arc<RuleProfiler>,
    /// Per-round wall-time latency histogram, absent unless requested.
    /// Deliberately NOT part of [`Telemetry::to_json`]: bucket counts
    /// are timing-dependent integers and would break the thread-count
    /// invariance of the stats report (DESIGN.md §9) — the CLI embeds
    /// the summary into `--stats-json` itself, like the journal.
    pub rounds: Option<Arc<Mutex<Histogram>>>,
}

impl Telemetry {
    /// Counters only: phases off, no trace. The default for untimed
    /// runs — counter increments are relaxed atomics, cheap enough to
    /// leave on everywhere.
    pub fn counters_only() -> Telemetry {
        Telemetry::default()
    }

    /// Full observation: counters, per-iteration delta history and
    /// phase timers on.
    pub fn enabled() -> Telemetry {
        Telemetry {
            metrics: Arc::new(Metrics::with_history()),
            phases: Arc::new(Phases::enabled()),
            trace: None,
            profiler: Arc::default(),
            rounds: None,
        }
    }

    /// Attach a trace sink.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Telemetry {
        self.trace = Some(sink);
        self
    }

    /// Turn on per-rule profiling.
    pub fn with_profiler(mut self) -> Telemetry {
        self.profiler = Arc::new(RuleProfiler::enabled());
        self
    }

    /// Record per-γ-round wall-time latency into a histogram
    /// (retrieved via [`Telemetry::round_latency`]).
    pub fn with_round_latency(mut self) -> Telemetry {
        self.rounds = Some(Arc::new(Mutex::new(Histogram::default())));
        self
    }

    /// Record one γ-round duration, if round-latency tracking is on.
    pub fn record_round_nanos(&self, nanos: u64) {
        if let Some(cell) = &self.rounds {
            cell.lock().unwrap().record(nanos);
        }
    }

    /// Snapshot of the per-round latency histogram, when tracking is on.
    pub fn round_latency(&self) -> Option<Histogram> {
        self.rounds.as_ref().map(|cell| cell.lock().unwrap().clone())
    }

    /// Emit a trace event. The closure only runs when a sink is
    /// attached, so event construction costs nothing when tracing is
    /// off.
    pub fn trace_with(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.trace {
            sink.event(&make());
        }
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// The full report — counters plus phase timings, and the per-rule
    /// profile when profiling is on — as JSON.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::UInt(STATS_SCHEMA_VERSION)),
            ("counters", self.metrics.snapshot().to_json()),
            ("phases", self.phases.to_json()),
        ];
        if self.profiler.is_enabled() {
            fields.push(("profile", self.profiler.to_json()));
        }
        Json::obj(fields)
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.metrics.snapshot())
            .field("phases", &self.phases)
            .field("trace", &self.trace.is_some())
            .field("profiler", &self.profiler.is_enabled())
            .field("rounds", &self.rounds.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_telemetry_counts_but_does_not_time() {
        let t = Telemetry::counters_only();
        t.metrics.gamma_steps.inc();
        let x = t.phases.time("unused", || 41 + 1);
        assert_eq!(x, 42);
        assert_eq!(t.snapshot().gamma_steps, 1);
        assert!(t.phases.entries().is_empty(), "disabled phases record nothing");
    }

    #[test]
    fn clones_share_counters() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.metrics.heap_pops.add(3);
        assert_eq!(t.snapshot().heap_pops, 3);
    }

    #[test]
    fn trace_closure_is_lazy() {
        let t = Telemetry::counters_only();
        t.trace_with(|| panic!("must not be constructed without a sink"));
        let buf = Arc::new(BufferTrace::new());
        let t = t.with_trace(buf.clone());
        t.trace_with(|| TraceEvent::FlatRound { round: 1, new_facts: 2 });
        assert_eq!(buf.lines().len(), 1);
    }

    #[test]
    fn json_report_has_both_sections() {
        let t = Telemetry::enabled();
        let s = t.to_json().to_string();
        assert!(s.contains("\"counters\""));
        assert!(s.contains("\"phases\""));
    }
}
