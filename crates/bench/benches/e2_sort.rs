//! E2 — Section 6, "Sorting: Complexity of Example 5".
//!
//! The declarative sort program "expresses an insertion sort but the
//! fixpoint algorithm implements a heap-sort": its runtime must track
//! heap-sort's `O(n log n)`, not insertion sort's `O(n²)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbc_baselines::sorts::{heapsort, insertion_sort};
use gbc_greedy::{sorting, workload};

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_sort");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[512usize, 1024, 2048, 4096] {
        let items = workload::random_items(n, 42);
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("declarative_rql", n), &items, |b, items| {
            let compiled = sorting::compiled();
            let edb = sorting::edb(items);
            b.iter(|| {
                let run = compiled.run_greedy(&edb).unwrap();
                assert_eq!(run.stats.gamma_steps as usize, items.len());
                run.stats.gamma_steps
            });
        });

        group.bench_with_input(BenchmarkId::new("heapsort", n), &items, |b, items| {
            b.iter(|| {
                let mut v: Vec<(i64, i64)> =
                    items.iter().map(|&(x, c)| (c, x)).collect();
                heapsort(&mut v);
                v.len()
            });
        });

        group.bench_with_input(BenchmarkId::new("insertion_sort", n), &items, |b, items| {
            b.iter(|| {
                let mut v: Vec<(i64, i64)> =
                    items.iter().map(|&(x, c)| (c, x)).collect();
                insertion_sort(&mut v);
                v.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
