//! Property tests for the (R,Q,L) structure: conservation, class
//! uniqueness, and pop-order laws under random operation sequences.
//!
//! Seeded-loop style: each test draws a fixed number of random cases
//! from the in-tree deterministic PRNG, so failures reproduce exactly.

use gbc_ast::Value;
use gbc_storage::dictionary::{decode_ref, encode};
use gbc_storage::rql::RqlOutcome;
use gbc_storage::Rql;
use gbc_telemetry::rng::Rng;

#[derive(Clone, Debug)]
enum Op {
    /// Insert (class, cost, payload).
    Insert(u8, i64, u8),
    /// Pop + commit.
    PopCommit,
    /// Pop + discard.
    PopDiscard,
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(3) {
        0 => Op::Insert((rng.below(256) % 8) as u8, rng.range_i64(-100, 99), rng.below(256) as u8),
        1 => Op::PopCommit,
        _ => Op::PopDiscard,
    }
}

fn id(v: i64) -> u32 {
    encode(&Value::int(v))
}

fn as_int(id: u32) -> i64 {
    decode_ref(id).as_int().expect("encoded int")
}

fn row(class: u8, cost: i64, payload: u8) -> Vec<u32> {
    vec![id(i64::from(class)), id(cost), id(i64::from(payload))]
}

#[test]
fn rql_invariants_hold() {
    let mut rng = Rng::new(0x5EED_0001);
    for case in 0..256 {
        let n_ops = 1 + rng.below_usize(119);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();

        let mut rql = Rql::new();
        let mut inserted: u64 = 0;
        let mut popped_committed: u64 = 0;
        let mut used_classes: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(class, cost, payload) => {
                    inserted += 1;
                    let key = vec![id(i64::from(class))];
                    let outcome = rql.insert(key, id(cost), row(class, cost, payload));
                    if used_classes.contains(&class) {
                        assert_eq!(outcome, RqlOutcome::CongruentUsed, "case {case}");
                    }
                }
                Op::PopCommit => {
                    if let Some(p) = rql.pop_least() {
                        // Every queued class is unique: the popped class
                        // cannot already be used.
                        let class = as_int(p.key[0]) as u8;
                        assert!(!used_classes.contains(&class), "case {case}");
                        used_classes.push(class);
                        popped_committed += 1;
                        rql.commit(p);
                    }
                }
                Op::PopDiscard => {
                    if let Some(p) = rql.pop_least() {
                        rql.discard(p);
                    }
                }
            }
            // Conservation: every inserted fact is queued, used-blocked,
            // replaced, dominated, discarded, or still queued.
            assert!(rql.queue_len() <= 8, "≤ one queued row per class (case {case})");
            assert_eq!(rql.used_len() as u64, popped_committed, "case {case}");
        }
        // Total accounting: inserted = queued + used + redundant,
        // where `used` counts commits and `redundant` counts everything
        // that fell out along the way.
        assert_eq!(
            inserted,
            rql.queue_len() as u64 + popped_committed + rql.redundant_count(),
            "case {case}"
        );
    }
}

/// Draining a freshly filled structure pops in non-decreasing cost
/// order with exactly one representative per class (the cheapest).
#[test]
fn drain_order_is_sorted_and_class_unique() {
    let mut rng = Rng::new(0x5EED_0002);
    for case in 0..256 {
        let n_items = 1 + rng.below_usize(79);
        let items: Vec<(u8, i64)> =
            (0..n_items).map(|_| (rng.below(12) as u8, rng.range_i64(-50, 49))).collect();

        let mut rql = Rql::new();
        let mut best: std::collections::HashMap<u8, i64> = std::collections::HashMap::new();
        for (i, &(class, cost)) in items.iter().enumerate() {
            let key = vec![id(i64::from(class))];
            rql.insert(key, id(cost), row(class, cost, i as u8));
            best.entry(class).and_modify(|b| *b = (*b).min(cost)).or_insert(cost);
        }
        let mut prev = i64::MIN;
        let mut seen = Vec::new();
        while let Some(p) = rql.pop_least() {
            let class = as_int(p.key[0]) as u8;
            let cost = as_int(p.cost);
            assert!(cost >= prev, "pop order must be non-decreasing (case {case})");
            prev = cost;
            assert!(!seen.contains(&class), "case {case}");
            assert_eq!(cost, best[&class], "class representative is its minimum (case {case})");
            seen.push(class);
            rql.commit(p);
        }
        assert_eq!(seen.len(), best.len(), "case {case}");
    }
}
