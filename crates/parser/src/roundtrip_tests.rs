//! Print/parse round-trip tests: `parse ∘ print` is the identity on the
//! printed form (the printed form is a fixpoint).

use crate::parse_program;

/// Assert that printing a parsed program and reparsing the print yields
/// the same printed form.
fn assert_roundtrip(src: &str) {
    let p1 = parse_program(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let printed1 = p1.to_string();
    let p2 = parse_program(&printed1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed1}"));
    let printed2 = p2.to_string();
    assert_eq!(printed1, printed2, "round-trip not a fixpoint for:\n{src}");
}

#[test]
fn roundtrip_example_1_one_student_per_course() {
    assert_roundtrip(
        "a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).
         takes(andy, engl). takes(mark, engl). takes(ann, math). takes(mark, math).",
    );
}

#[test]
fn roundtrip_example_3_spanning_tree() {
    assert_roundtrip(
        "st(nil, a, 0).
         st(X, Y, C) <- st(_, X, _), g(X, Y, C), choice(Y, (X, C)).",
    );
}

#[test]
fn roundtrip_example_4_prim() {
    assert_roundtrip(
        "prm(nil, a, 0, 0).
         prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).",
    );
}

#[test]
fn roundtrip_example_5_sort() {
    assert_roundtrip(
        "sp(nil, 0, 0).
         sp(X, C, I) <- next(I), p(X, C), least(C, I).",
    );
}

#[test]
fn roundtrip_example_6_huffman() {
    assert_roundtrip(
        "h(X, C, 0) <- letter(X, C).
         h(t(X, Y), C, I) <- next(I), feasible(t(X, Y), C, J), J < I, least(C),
                             choice(X, I), choice(Y, I).
         feasible(t(X, Y), C, I) <- h(X, C1, J), h(Y, C2, K),
                                    not subtree(X, L1), not subtree(Y, L2),
                                    I = max(J, K), X != Y, C = C1 + C2.
         subtree(X, I) <- h(t(X, _), _, I).
         subtree(X, I) <- h(t(_, X), _, I).",
    );
}

#[test]
fn roundtrip_example_7_matching() {
    assert_roundtrip(
        "matching(nil, nil, 0, 0).
         matching(X, Y, C, I) <- next(I), g(X, Y, C), least(C, I), choice(Y, X), choice(X, Y).",
    );
}

#[test]
fn roundtrip_tsp_chain() {
    assert_roundtrip(
        "tsp_chain(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).
         tsp_chain(X, Y, C, I) <- next(I), new_g(X, Y, C, J), I = J + 1, least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- tsp_chain(_, X, _, J), g(X, Y, C).
         least_arcs(X, Y, C) <- g(X, Y, C), least(C).",
    );
}

#[test]
fn roundtrip_example_8_kruskal() {
    assert_roundtrip(
        "kruskal(X, Y, C, 0) <- g(X, Y, C), least(C), choice((), (X, Y)).
         kruskal(X, Y, C, I) <- next(I), g(X, Y, C), last_comp(X, J, I1), last_comp(Y, K, I1),
                                J != K, I1 < I, least(C).
         last_comp(X, J, I) <- comp(X, J, I1), I1 <= I, most(I1, X).
         comp(X, K, 0) <- comp0(X, K).
         comp(X, K, I) <- kruskal(A, B, C, I), last_comp(A, J, I1), last_comp(B, K, I2),
                          last_comp(X, J, I1).
         comp0(nil, 0).
         comp0(X, K) <- next(K), node(X).",
    );
}

#[test]
fn roundtrip_mixed_arith_and_strings() {
    assert_roundtrip(
        r#"p("hello world", -3).
           q(X, I) <- p(X, J), I = ((J * 2) + (7 mod 3)) - max(J, min(J, 0))."#,
    );
}
