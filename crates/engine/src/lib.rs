//! # gbc-engine
//!
//! Bottom-up evaluation for the Greedy-by-Choice Datalog dialect:
//!
//! * [`eval`] — tuple-at-a-time rule-body matching with index-backed
//!   joins, arithmetic, comparisons and negation-as-lookup;
//! * [`extrema`] — in-rule `least`/`most` evaluation (group-by minimum /
//!   maximum over the body's satisfying bindings);
//! * [`seminaive`] — delta-driven saturation of a rule set, optionally
//!   fanning each round's joins out over [`pool`] — an in-tree scoped
//!   worker pool with a deterministic chunk-order merge, so results
//!   and counters are identical at any thread count;
//! * [`stratified`] — perfect-model evaluation of stratified programs
//!   (dependency graph → SCC condensation → stratum-by-stratum
//!   saturation);
//! * [`choice`] — the paper's **Choice Fixpoint** procedure: alternate
//!   the non-deterministic one-consequence operator γ with flat-rule
//!   saturation `Q^∞` (Section 2), with choice memoing — only `chosen`
//!   functional-dependency maps are materialised, `diffChoice` is an
//!   on-the-fly consistency check;
//! * [`chooser`] — pluggable non-determinism: deterministic-first,
//!   seeded-random;
//! * [`enumerate`] — exhaustive exploration of every γ instantiation,
//!   producing **all** choice models of small programs (Lemma 1/2);
//! * [`stable`] — a Gelfond–Lifschitz stable-model checker for negative
//!   programs (used to validate Theorem 1 on executor outputs).
//!
//! The engine evaluates programs containing `choice`, `least`, `most`,
//! negation and comparisons. `next` goals must be macro-expanded first
//! (see `gbc-core`), keeping this crate independent of the paper-specific
//! rewritings layered on top of it.

pub mod bindings;
pub mod choice;
pub mod chooser;
pub mod enumerate;
pub mod error;
pub mod eval;
pub mod extrema;
pub mod graph;
pub mod plan;
pub mod pool;
pub mod seminaive;
pub mod stable;
pub mod stratified;

pub use bindings::Bindings;
pub use choice::{ChoiceFixpoint, ChoiceFixpointConfig};
pub use chooser::{Chooser, DeterministicFirst, SeededRandom};
pub use error::EngineError;
pub use pool::{default_threads, LaneReport, PoolReport, PoolStats, WorkerPool};
pub use stable::is_stable_model;
pub use stratified::evaluate_stratified;
