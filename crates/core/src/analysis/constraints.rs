//! Difference-constraint reasoning over a rule's variables.
//!
//! Stage stratification (Section 4) asks, per rule: is every body stage
//! variable provably `<` (or `≤`) the head stage variable *in every
//! interpreted instance*? The comparisons and arithmetic assignments in
//! the body are exactly the available evidence: `J < I`, `I = I1 + 1`,
//! `I = max(J, K)`, `I1 ≤ I`, …
//!
//! We collect them as integer difference constraints `a − b ≤ w` and
//! close them with Floyd–Warshall; `a < b` is derivable iff the closure
//! yields `a − b ≤ −1`. Stage variables are integer-valued by
//! construction (`next` mints integers), which licenses the
//! strict-to-weak conversion `a < b ⟺ a ≤ b − 1`.

use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::{CmpOp, Literal, Rule, Term, VarId};

/// A closed system of difference constraints over a rule's variables.
#[derive(Clone, Debug)]
pub struct Constraints {
    n: usize,
    /// `dist[a][b]` = the smallest known `w` with `a − b ≤ w`
    /// (`i64::MAX` = unconstrained).
    dist: Vec<Vec<i64>>,
}

/// `expr` as `var + k`, if it has that shape.
fn var_offset(e: &Expr) -> Option<(VarId, i64)> {
    match e {
        Expr::Term(Term::Var(v)) => Some((*v, 0)),
        Expr::Binary(ArithOp::Add, l, r) => match (&**l, &**r) {
            (Expr::Term(Term::Var(v)), Expr::Term(Term::Const(gbc_ast::Value::Int(k)))) => {
                Some((*v, *k))
            }
            (Expr::Term(Term::Const(gbc_ast::Value::Int(k))), Expr::Term(Term::Var(v))) => {
                Some((*v, *k))
            }
            _ => None,
        },
        Expr::Binary(ArithOp::Sub, l, r) => match (&**l, &**r) {
            (Expr::Term(Term::Var(v)), Expr::Term(Term::Const(gbc_ast::Value::Int(k)))) => {
                Some((*v, -*k))
            }
            _ => None,
        },
        _ => None,
    }
}

impl Constraints {
    /// Harvest and close the constraints of `rule`'s comparison goals.
    pub fn from_rule(rule: &Rule) -> Constraints {
        let mut c = Constraints {
            n: rule.num_vars(),
            dist: vec![vec![i64::MAX; rule.num_vars()]; rule.num_vars()],
        };
        for i in 0..c.n {
            c.dist[i][i] = 0;
        }
        for lit in &rule.body {
            let Literal::Compare { op, lhs, rhs } = lit else { continue };
            c.harvest(*op, lhs, rhs);
        }
        c.close();
        c
    }

    /// Record `a − b ≤ w`.
    fn add(&mut self, a: VarId, b: VarId, w: i64) {
        let (a, b) = (a.index(), b.index());
        if w < self.dist[a][b] {
            self.dist[a][b] = w;
        }
    }

    fn harvest(&mut self, op: CmpOp, lhs: &Expr, rhs: &Expr) {
        // var+k vs var+k forms.
        if let (Some((v1, k1)), Some((v2, k2))) = (var_offset(lhs), var_offset(rhs)) {
            match op {
                // v1 + k1 < v2 + k2  ⇒  v1 − v2 ≤ k2 − k1 − 1
                CmpOp::Lt => self.add(v1, v2, k2 - k1 - 1),
                CmpOp::Le => self.add(v1, v2, k2 - k1),
                CmpOp::Gt => self.add(v2, v1, k1 - k2 - 1),
                CmpOp::Ge => self.add(v2, v1, k1 - k2),
                CmpOp::Eq => {
                    self.add(v1, v2, k2 - k1);
                    self.add(v2, v1, k1 - k2);
                }
                CmpOp::Ne => {}
            }
            return;
        }
        // v = max(a, b) / v = min(a, b) (either orientation of Eq).
        if op == CmpOp::Eq {
            for (bare, expr) in [(lhs, rhs), (rhs, lhs)] {
                let Some((v, 0)) = var_offset(bare) else { continue };
                let Expr::Binary(mm @ (ArithOp::Max | ArithOp::Min), a, b) = expr else {
                    continue;
                };
                for side in [a, b] {
                    if let Some((u, k)) = var_offset(side) {
                        match mm {
                            // v = max(…, u+k, …) ⇒ u + k ≤ v
                            ArithOp::Max => self.add(u, v, -k),
                            // v = min(…, u+k, …) ⇒ v ≤ u + k
                            _ => self.add(v, u, k),
                        }
                    }
                }
            }
        }
    }

    fn close(&mut self) {
        for k in 0..self.n {
            for i in 0..self.n {
                let dik = self.dist[i][k];
                if dik == i64::MAX {
                    continue;
                }
                for j in 0..self.n {
                    let dkj = self.dist[k][j];
                    if dkj == i64::MAX {
                        continue;
                    }
                    let via = dik.saturating_add(dkj);
                    if via < self.dist[i][j] {
                        self.dist[i][j] = via;
                    }
                }
            }
        }
    }

    /// Is `a < b` derivable?
    pub fn lt(&self, a: VarId, b: VarId) -> bool {
        self.dist[a.index()][b.index()] <= -1
    }

    /// Is `a ≤ b` derivable?
    pub fn le(&self, a: VarId, b: VarId) -> bool {
        self.dist[a.index()][b.index()] <= 0
    }

    /// Is `a ≤ b + k` derivable? (`le_offset(a, b, 1)` with
    /// [`Constraints::lt`]`(b, a)` pins `a = b + 1` — chain stages.)
    pub fn le_offset(&self, a: VarId, b: VarId, k: i64) -> bool {
        self.dist[a.index()][b.index()] <= k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Atom;

    fn rule_with(body: Vec<Literal>, nvars: usize) -> Rule {
        Rule::new(Atom::new("h", vec![]), body, (0..nvars).map(|i| format!("V{i}")).collect())
    }

    #[test]
    fn successor_implies_strict() {
        // I = I1 + 1  ⇒  I1 < I.
        let r = rule_with(
            vec![Literal::cmp(
                CmpOp::Eq,
                Expr::var(0),
                Expr::binary(ArithOp::Add, Expr::var(1), Expr::int(1)),
            )],
            2,
        );
        let c = Constraints::from_rule(&r);
        assert!(c.lt(VarId(1), VarId(0)));
        assert!(!c.lt(VarId(0), VarId(1)));
    }

    #[test]
    fn transitivity_chains() {
        // J < I, I = K  ⇒  J < K.
        let r = rule_with(
            vec![
                Literal::cmp(CmpOp::Lt, Expr::var(0), Expr::var(1)),
                Literal::cmp(CmpOp::Eq, Expr::var(1), Expr::var(2)),
            ],
            3,
        );
        let c = Constraints::from_rule(&r);
        assert!(c.lt(VarId(0), VarId(2)));
        assert!(c.le(VarId(0), VarId(2)));
    }

    #[test]
    fn max_gives_weak_bounds() {
        // I = max(J, K)  ⇒  J ≤ I, K ≤ I, but not J < I.
        let r = rule_with(
            vec![Literal::cmp(
                CmpOp::Eq,
                Expr::var(0),
                Expr::binary(ArithOp::Max, Expr::var(1), Expr::var(2)),
            )],
            3,
        );
        let c = Constraints::from_rule(&r);
        assert!(c.le(VarId(1), VarId(0)));
        assert!(c.le(VarId(2), VarId(0)));
        assert!(!c.lt(VarId(1), VarId(0)));
    }

    #[test]
    fn min_is_dual() {
        let r = rule_with(
            vec![Literal::cmp(
                CmpOp::Eq,
                Expr::var(0),
                Expr::binary(ArithOp::Min, Expr::var(1), Expr::var(2)),
            )],
            3,
        );
        let c = Constraints::from_rule(&r);
        assert!(c.le(VarId(0), VarId(1)));
        assert!(c.le(VarId(0), VarId(2)));
    }

    #[test]
    fn unrelated_variables_are_unconstrained() {
        let r = rule_with(vec![], 2);
        let c = Constraints::from_rule(&r);
        assert!(!c.le(VarId(0), VarId(1)));
        assert!(!c.lt(VarId(0), VarId(1)));
        assert!(c.le(VarId(0), VarId(0)));
    }

    #[test]
    fn strict_plus_weak_stays_strict() {
        // J < I, I ≤ K ⇒ J < K.
        let r = rule_with(
            vec![
                Literal::cmp(CmpOp::Lt, Expr::var(0), Expr::var(1)),
                Literal::cmp(CmpOp::Le, Expr::var(1), Expr::var(2)),
            ],
            3,
        );
        let c = Constraints::from_rule(&r);
        assert!(c.lt(VarId(0), VarId(2)));
    }

    #[test]
    fn integer_strictness_from_offsets() {
        // J < I + 1 ⇒ J ≤ I (integers).
        let r = rule_with(
            vec![Literal::cmp(
                CmpOp::Lt,
                Expr::var(0),
                Expr::binary(ArithOp::Add, Expr::var(1), Expr::int(1)),
            )],
            2,
        );
        let c = Constraints::from_rule(&r);
        assert!(c.le(VarId(0), VarId(1)));
        assert!(!c.lt(VarId(0), VarId(1)));
    }
}
