//! Example 8 — Kruskal's algorithm.
//!
//! The paper places this program *outside* strict stage stratification
//! ("the negation in flat rules are not necessarily strictly
//! stratified") — and indeed `gbc-core`'s classifier rejects it (the
//! component ids minted by `comp0`'s `next(K)` collide with the true
//! stage argument of `comp`, and `last_comp` applies an extremum over a
//! clique predicate). Its *intended* evaluation is nevertheless clear,
//! and Section 6 analyses it: a priority queue of edges plus an
//! explicit component table relabelled in `O(n)` per accepted edge —
//! total `O(e·n)`, versus the classical union-find `O(e log e)`.
//!
//! [`run_stage_views`] is that evaluation, done faithfully over the
//! program's own relations: it materialises `comp0`, `comp` (stage-
//! stamped relabel history) and `kruskal` facts into a [`Database`],
//! recomputing the `last_comp` view per stage instead of accumulating
//! it inflationarily. Experiment E4 measures the `O(e·n)` versus
//! `O(e log e)` gap this evaluation embodies.

use gbc_ast::{Symbol, Value};
use gbc_baselines::Edge;
use gbc_storage::{dictionary, Database, Rql};

use crate::graph::{decode_edges, Graph};

/// The paper's Example 8, safely phrased (`last_comp` selects the most
/// recent component fact per node).
pub const PROGRAM: &str = "kruskal(X, Y, C, 0) <- g(X, Y, C), least(C), choice((), (X, Y)).
kruskal(X, Y, C, I) <- next(I), g(X, Y, C), last_comp(X, J, I1), last_comp(Y, K, I1),
                       J != K, I1 < I, least(C).
last_comp(X, J, I) <- comp(X, J, I), most(I, X).
comp(X, K, 0) <- comp0(X, K).
comp(X, K, I) <- kruskal(A, B, C, I), last_comp(A, J, I1), last_comp(B, K, I2),
                 last_comp(X, J, I1).
comp0(nil, 0).
comp0(X, K) <- next(K), node(X).";

/// The result of a stage-view run: the materialised relations and the
/// accepted edges.
#[derive(Clone, Debug)]
pub struct KruskalRun {
    /// `kruskal`, `comp`, `comp0` and `g` facts, as the program defines
    /// them.
    pub db: Database,
    /// Accepted edges in stage order.
    pub tree: Vec<Edge>,
    /// Edges discarded as redundant (same component when popped) — the
    /// paper's `R`.
    pub redundant: u64,
}

/// Evaluate Example 8 with per-stage view recomputation — the paper's
/// `O(e·n)` cost model. The component table plays `last_comp`; each
/// accepted edge relabels one component in `O(n)` and stamps the new
/// `comp` facts with the stage.
pub fn run_stage_views(graph: &Graph) -> KruskalRun {
    let mut db = graph.to_edb();
    let n = graph.n;

    // comp0: node X gets component id X+1 at stage 0 (ids minted by the
    // paper's comp0 next-loop; the concrete numbering is immaterial).
    let mut comp: Vec<i64> = (0..n as i64).map(|x| x + 1).collect();
    db.insert_values("comp0", vec![Value::Nil, Value::int(0)]);
    for (x, &c) in comp.iter().enumerate() {
        db.insert_values("comp0", vec![Value::int(x as i64), Value::int(c)]);
        db.insert_values("comp", vec![Value::int(x as i64), Value::int(c), Value::int(0)]);
    }

    // The edge queue Q (cost-ordered, full-row congruence: Kruskal
    // considers every edge once).
    let mut q = Rql::new();
    for e in &graph.edges {
        let row = dictionary::encode_row(&[
            Value::int(i64::from(e.from)),
            Value::int(i64::from(e.to)),
            Value::int(e.cost),
        ]);
        q.insert(row.clone(), row[2], row);
    }

    let int_of = |id: u32| dictionary::decode_ref(id).as_int().expect("int edge field");
    let mut tree = Vec::new();
    let mut redundant = 0u64;
    let mut stage = 0i64;
    while let Some(popped) = q.pop_least() {
        let x = int_of(popped.row[0]) as usize;
        let y = int_of(popped.row[1]) as usize;
        let c = int_of(popped.row[2]);
        let (j, k) = (comp[x], comp[y]);
        if j == k {
            // Same component: redundant, the paper's move into R.
            q.discard(popped);
            redundant += 1;
            continue;
        }
        q.commit(popped);
        tree.push(Edge::new(x as u32, y as u32, c));
        db.insert_values(
            "kruskal",
            vec![Value::int(x as i64), Value::int(y as i64), Value::int(c), Value::int(stage)],
        );
        // Relabel component J as K — the O(n) sweep the paper charges
        // to the recursive comp rule — stamping new comp facts.
        for (node, slot) in comp.iter_mut().enumerate() {
            if *slot == j {
                *slot = k;
                db.insert_values(
                    "comp",
                    vec![Value::int(node as i64), Value::int(k), Value::int(stage + 1)],
                );
            }
        }
        stage += 1;
        if tree.len() + 1 == n {
            break;
        }
    }
    KruskalRun { db, tree, redundant }
}

/// Accepted edges of a run's `kruskal` relation, in stage order.
pub fn decode(run: &KruskalRun) -> Vec<Edge> {
    let mut rows = run.db.facts_of(Symbol::intern("kruskal"));
    rows.sort_by_key(|r| r[3].as_int().unwrap_or(i64::MAX));
    decode_edges(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::kruskal::{kruskal_mst, kruskal_relabel};
    use gbc_baselines::total_cost;
    use gbc_core::{classify, ProgramClass};

    #[test]
    fn the_paper_program_is_rejected_by_the_classifier() {
        let p = gbc_parser::parse_program(PROGRAM).unwrap();
        assert!(matches!(classify(&p).class, ProgramClass::NotStageStratified { .. }));
    }

    #[test]
    fn stage_views_compute_a_minimum_spanning_tree() {
        for seed in 0..5 {
            let g = crate::workload::connected_graph(20, 40, 100, seed);
            let run = run_stage_views(&g);
            let base = kruskal_mst(g.n, &g.edges);
            assert_eq!(run.tree.len(), g.n - 1, "seed {seed}");
            assert_eq!(total_cost(&run.tree), total_cost(&base), "seed {seed}");
        }
    }

    #[test]
    fn relations_are_materialised() {
        let g = crate::workload::connected_graph(8, 6, 20, 1);
        let run = run_stage_views(&g);
        assert_eq!(run.db.count(Symbol::intern("kruskal")), 7);
        assert_eq!(run.db.count(Symbol::intern("comp0")), 9); // n + nil
                                                              // comp: n stage-0 facts plus one per relabelled node.
        assert!(run.db.count(Symbol::intern("comp")) >= 8 + 7);
        assert_eq!(decode(&run).len(), 7);
    }

    #[test]
    fn agrees_with_the_relabel_baseline_cost_model() {
        let g = crate::workload::connected_graph(12, 20, 50, 3);
        let a = run_stage_views(&g);
        let b = kruskal_relabel(g.n, &g.edges);
        assert_eq!(total_cost(&a.tree), total_cost(&b));
    }

    #[test]
    fn redundant_edges_are_counted() {
        // The cycle-closing edge (0,2) is cheaper than the last tree
        // edge, so it is popped mid-run and moved to R.
        let g = Graph::new(
            4,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 2), Edge::new(0, 2, 3), Edge::new(2, 3, 4)],
        );
        let run = run_stage_views(&g);
        assert_eq!(run.tree.len(), 3);
        assert_eq!(run.redundant, 1);
    }

    #[test]
    fn evaluation_stops_once_the_tree_is_complete() {
        // Remaining queue entries are never popped after n−1 accepts.
        let g = Graph::new(3, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 2), Edge::new(0, 2, 3)]);
        let run = run_stage_views(&g);
        assert_eq!(run.tree.len(), 2);
        assert_eq!(run.redundant, 0);
    }
}
