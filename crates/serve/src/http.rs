//! A minimal HTTP/1.1 request reader and response writer over
//! `std::net::TcpStream` — just enough of RFC 9112 for the `gbc serve`
//! endpoints, with hard limits on every dimension an untrusted peer
//! controls (request-line length, header count, body size).
//!
//! Connections are one-shot: the server answers a single request and
//! closes (`Connection: close` on every response), which keeps the
//! reader loop trivial and makes worker accounting exact. The in-tree
//! [`crate::client`] and any curl/browser peer handle that fine.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line (method + target + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes (programs are text; the
/// biggest in-tree `.dl` file is under 4 KiB, so 1 MiB is generous).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request: method, split target, and the (possibly empty)
/// body. Header values other than `Content-Length` are ignored — none
/// of the endpoints are content-negotiated.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the peer per HTTP).
    pub method: String,
    /// The path component of the target, e.g. `/journal`.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// First query value for `key`, when present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; rendered into a 400 response.
#[derive(Debug)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn bad(msg: impl Into<String>) -> BadRequest {
    BadRequest(msg.into())
}

/// Read one request from `stream`. `Err` means the bytes were not a
/// parseable request (or blew a limit) and the caller should answer
/// 400 and close; an empty `Ok(None)` means the peer closed before
/// sending anything (a health-probe pattern) and there is nothing to
/// answer.
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, BadRequest> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    read_line_limited(&mut reader, &mut line, MAX_REQUEST_LINE)?;
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_owned();
    let target = parts.next().ok_or_else(|| bad("request line missing target"))?.to_owned();
    let version = parts.next().ok_or_else(|| bad("request line missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol `{version}`")));
    }
    if parts.next().is_some() {
        return Err(bad("malformed request line"));
    }

    let mut content_length: usize = 0;
    for n in 0.. {
        if n >= MAX_HEADERS {
            return Err(bad(format!("more than {MAX_HEADERS} headers")));
        }
        let mut header = String::new();
        read_line_limited(&mut reader, &mut header, MAX_REQUEST_LINE)?;
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad(format!("malformed header `{header}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| bad(format!("unparseable Content-Length `{}`", value.trim())))?;
            if content_length > MAX_BODY {
                return Err(bad(format!("body of {content_length} bytes exceeds {MAX_BODY}")));
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| bad(format!("short body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Some(Request { method, path, query, body }))
}

/// Read one CRLF- (or LF-) terminated line into `buf`, stripped of the
/// terminator, refusing lines longer than `limit`.
fn read_line_limited(
    reader: &mut BufReader<&mut TcpStream>,
    buf: &mut String,
    limit: usize,
) -> Result<(), BadRequest> {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
                if raw.len() > limit {
                    return Err(bad(format!("line longer than {limit} bytes")));
                }
            }
            Err(e) => return Err(bad(format!("read failed: {e}"))),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *buf = String::from_utf8(raw).map_err(|_| bad("header bytes are not UTF-8"))?;
    Ok(())
}

/// Split `a=1&b=2` into pairs, percent-decoding both sides (`%2F`,
/// `+` for space — the subset curl and the in-tree client emit).
fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => match u8::from_str_radix(&s[i + 1..i + 3], 16) {
                Ok(b) => {
                    out.push(b);
                    i += 3;
                }
                Err(_) => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response about to be written: status, media type, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body }
    }

    /// A plain-text response (Prometheus exposition, JSON-lines).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Response {
        Response { status, content_type, body }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        let body =
            gbc_telemetry::Json::obj(vec![("error", gbc_telemetry::Json::Str(message.to_owned()))]);
        Response::json(status, format!("{body}\n"))
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize onto `stream`. Errors are ignored beyond returning —
    /// the peer may have gone away, which is its privilege.
    pub fn write(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_split_and_decode() {
        let q = parse_query("session=prim&x=a%2Fb&flag&name=two+words");
        assert_eq!(
            q,
            vec![
                ("session".into(), "prim".into()),
                ("x".into(), "a/b".into()),
                ("flag".into(), String::new()),
                ("name".into(), "two words".into()),
            ]
        );
    }

    #[test]
    fn stray_percent_passes_through() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("a%zzb"), "a%zzb");
    }

    #[test]
    fn responses_carry_content_length_and_close() {
        let r = Response::json(200, "{}".into());
        assert_eq!(r.reason(), "OK");
        let e = Response::error(400, "nope");
        assert!(e.body.contains("\"error\":\"nope\""));
        assert_eq!(e.reason(), "Bad Request");
    }
}
