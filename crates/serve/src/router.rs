//! Endpoint dispatch: one parsed [`Request`] in, one [`Response`] out.
//!
//! | Method | Path        | Body / query                 | Answer |
//! |--------|-------------|------------------------------|--------|
//! | GET    | `/healthz`  | —                            | liveness JSON |
//! | GET    | `/metrics`  | —                            | Prometheus text |
//! | GET    | `/stats`    | `?session=NAME` (optional)   | schema-v2 stats JSON |
//! | GET    | `/journal`  | `?session=NAME`              | choice-audit JSON-lines |
//! | GET    | `/programs` | —                            | loaded-session table |
//! | POST   | `/load`     | `{"name", "program"|"files"}`| compile summary |
//! | POST   | `/run`      | `{"session", "threads"?, "journal"?}` | canonical result + counters |
//!
//! Every handler is synchronous and runs on the worker thread that
//! accepted the connection; `/run` is the only one that does real work.
//! Malformed input — unparseable HTTP, bad JSON, unknown fields —
//! answers 400 with an `{"error": ...}` envelope; unknown sessions 404;
//! evaluation failures 500.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use gbc_ast::diag::{error_count, render_all};
use gbc_ast::SourceMap;
use gbc_core::{compile, Compiled, GreedyConfig, GreedyRun};
use gbc_storage::{dict_stats, Database};
use gbc_telemetry::{JournalBuffer, Json, Telemetry, TraceSink};

use crate::http::{Request, Response};
use crate::state::{ServerState, Session};

/// Route one request. Infallible by construction — every failure mode
/// maps to an error response.
pub fn dispatch(state: &ServerState, req: &Request) -> Response {
    let t0 = Instant::now();
    state.metrics.requests_for(&req.path).inc();
    let response = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/stats") => stats(state, req),
        ("GET", "/journal") => journal(state, req),
        ("GET", "/programs") => programs(state),
        ("POST", "/load") => load(state, req),
        ("POST", "/run") => run(state, req),
        (_, "/healthz" | "/metrics" | "/stats" | "/journal" | "/programs") => {
            Response::error(405, &format!("{} does not accept {}", req.path, req.method))
        }
        (_, "/load" | "/run") => {
            Response::error(405, &format!("{} requires POST, not {}", req.path, req.method))
        }
        _ => Response::error(404, &format!("no such endpoint `{}`", req.path)),
    };
    if response.status >= 300 {
        state.metrics.errors.inc();
    }
    state.metrics.latency_for(&req.path).record(t0.elapsed().as_nanos() as u64);
    response
}

fn healthz(state: &ServerState) -> Response {
    let body = Json::obj(vec![
        ("status", Json::Str("ok".into())),
        ("sessions", Json::UInt(state.sessions().len() as u64)),
        ("uptime_secs", Json::UInt(state.started.elapsed().as_secs())),
    ]);
    Response::json(200, format!("{body}\n"))
}

fn metrics(state: &ServerState) -> Response {
    // The dictionary gauge tracks a process-global quantity; refresh it
    // at scrape time rather than guessing when interning happens.
    state.metrics.dict_entries.set(dict_stats().dict_entries as i64);
    Response::text(200, "text/plain; version=0.0.4", state.metrics.registry.render_prometheus())
}

fn stats(state: &ServerState, req: &Request) -> Response {
    match req.query("session") {
        Some(name) => match state.session(name) {
            None => Response::error(404, &format!("no session `{name}`")),
            Some(s) => match s.last_stats.read().expect("stats cell").clone() {
                None => Response::error(404, &format!("session `{name}` has not run yet")),
                Some(json) => Response::json(200, format!("{}\n", json.pretty())),
            },
        },
        None => {
            let sessions = state
                .sessions()
                .iter()
                .map(|s| {
                    let stats =
                        s.last_stats.read().expect("stats cell").clone().unwrap_or(Json::Null);
                    (s.name.clone(), stats)
                })
                .collect();
            let body = Json::Obj(vec![
                ("schema_version".into(), Json::UInt(gbc_telemetry::STATS_SCHEMA_VERSION)),
                ("sessions".into(), Json::Obj(sessions)),
            ]);
            Response::json(200, format!("{}\n", body.pretty()))
        }
    }
}

fn journal(state: &ServerState, req: &Request) -> Response {
    let Some(name) = req.query("session") else {
        return Response::error(400, "GET /journal requires ?session=NAME");
    };
    let Some(session) = state.session(name) else {
        return Response::error(404, &format!("no session `{name}`"));
    };
    let buffer = session.journal.read().expect("journal cell").clone();
    match buffer {
        None => Response::error(
            404,
            &format!("session `{name}` has no journaled run (POST /run with \"journal\": true)"),
        ),
        // A run may still be writing to this buffer; to_jsonl serves the
        // events committed so far — that is the "live" in live journal.
        Some(journal) => Response::text(200, "application/jsonl", journal.to_jsonl()),
    }
}

fn programs(state: &ServerState) -> Response {
    let rows = state
        .sessions()
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("name", Json::Str(s.name.clone())),
                ("source", Json::Str(s.source.clone())),
                ("rules", Json::UInt(s.compiled.program().rules.len() as u64)),
                ("class", Json::Str(s.compiled.class().summary())),
                ("greedy_plan", Json::Bool(s.compiled.has_greedy_plan())),
                ("edb_facts", Json::UInt(s.edb.total_facts() as u64)),
                ("runs", Json::UInt(s.run_count())),
            ])
        })
        .collect();
    let body = Json::obj(vec![("programs", Json::Arr(rows))]);
    Response::json(200, format!("{}\n", body.pretty()))
}

/// Parse the body as a JSON object and reject unknown fields — catching
/// a misspelled `"sesion"` at the door beats silently running defaults.
fn body_object(req: &Request, allowed: &[&str]) -> Result<Json, Response> {
    let json =
        Json::parse(&req.body).map_err(|e| Response::error(400, &format!("request body: {e}")))?;
    let Json::Obj(fields) = &json else {
        return Err(Response::error(400, "request body must be a JSON object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(Response::error(
                400,
                &format!("unknown field `{key}` (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(json)
}

fn load(state: &ServerState, req: &Request) -> Response {
    let body = match body_object(req, &["name", "program", "files"]) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(name) = body.get("name").and_then(Json::as_str) else {
        return Response::error(400, "POST /load requires a string `name`");
    };
    let mut sm = SourceMap::new();
    let source = match (body.get("program").and_then(Json::as_str), body.get("files")) {
        (Some(text), None) => {
            sm.add_file("<inline>", text);
            "<inline>".to_owned()
        }
        (None, Some(files)) => {
            let Some(files) = files.as_arr() else {
                return Response::error(400, "`files` must be an array of paths");
            };
            let mut names = Vec::new();
            for f in files {
                let Some(path) = f.as_str() else {
                    return Response::error(400, "`files` must be an array of string paths");
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        sm.add_file(path, &text);
                    }
                    Err(e) => return Response::error(400, &format!("{path}: {e}")),
                }
                names.push(path.to_owned());
            }
            if names.is_empty() {
                return Response::error(400, "`files` must name at least one file");
            }
            names.join(",")
        }
        _ => return Response::error(400, "POST /load requires exactly one of `program`, `files`"),
    };
    let compiled = match compile_source(&sm) {
        Ok(c) => c,
        Err(e) => return Response::error(400, &e),
    };
    let summary = Json::obj(vec![
        ("loaded", Json::Str(name.to_owned())),
        ("rules", Json::UInt(compiled.program().rules.len() as u64)),
        ("class", Json::Str(compiled.class().summary())),
        ("greedy_plan", Json::Bool(compiled.has_greedy_plan())),
    ]);
    state.install(Session::new(name, &source, compiled, Database::new()));
    Response::json(200, format!("{}\n", summary.pretty()))
}

/// Parse + validate + compile the sources in `sm`, rendering
/// diagnostics into the error string exactly like `gbc run` does.
pub fn compile_source(sm: &SourceMap) -> Result<Compiled, String> {
    let program = gbc_parser::parse_program(&sm.source())
        .map_err(|e| render_failure(&[e.to_diagnostic()], sm))?;
    let diags = program.diagnostics();
    if error_count(&diags) > 0 {
        return Err(render_failure(&diags, sm));
    }
    compile(program).map_err(|e| e.to_string())
}

fn render_failure(diags: &[gbc_ast::Diagnostic], sm: &SourceMap) -> String {
    format!("invalid program\n{}{} error(s) emitted", render_all(diags, sm), error_count(diags))
}

fn run(state: &ServerState, req: &Request) -> Response {
    let body = match body_object(req, &["session", "threads", "journal"]) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(name) = body.get("session").and_then(Json::as_str) else {
        return Response::error(400, "POST /run requires a string `session`");
    };
    let threads = match body.get("threads") {
        None => 1,
        Some(v) => match v.as_u64() {
            Some(t) if t >= 1 => t as usize,
            _ => return Response::error(400, "`threads` must be a positive integer"),
        },
    };
    let journal = match body.get("journal") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Response::error(400, "`journal` must be a boolean"),
    };
    let Some(session) = state.session(name) else {
        return Response::error(404, &format!("no session `{name}`"));
    };

    let dict_base = dict_stats();
    let mut tel = Telemetry::enabled().with_round_latency();
    let buffer = if journal {
        let b = Arc::new(JournalBuffer::new());
        // Publish the buffer *before* the run so `GET /journal` can
        // stream a run in flight.
        *session.journal.write().expect("journal cell") = Some(Arc::clone(&b));
        tel = tel.with_trace(Arc::clone(&b) as Arc<dyn TraceSink>);
        Some(b)
    } else {
        None
    };

    let outcome = execute(&session, threads, &tel);
    let run = match outcome {
        Ok(run) => run,
        Err(e) => return Response::error(500, &format!("evaluation failed: {e}")),
    };

    // Feed the metrics plane: per-γ-round latencies merge into the
    // process-lifetime histogram; the run counter ticks once.
    if let Some(rounds) = tel.round_latency() {
        state.metrics.gamma_rounds.merge(&rounds);
    }
    state.metrics.runs.inc();
    session.runs.fetch_add(1, Ordering::Relaxed);

    // Assemble the schema-v2 stats report — same shape `gbc run
    // --stats-json` writes (counters + phases + latency + dictionary,
    // plus the journal when recorded) — and pin it to the session.
    let mut stats = tel.to_json();
    if let (Some(hist), Json::Obj(fields)) = (tel.round_latency(), &mut stats) {
        fields.push((
            "latency".to_owned(),
            Json::obj(vec![("threads", Json::UInt(threads as u64)), ("rounds", hist.to_json())]),
        ));
    }
    if let Json::Obj(fields) = &mut stats {
        let d = dict_stats().since(&dict_base);
        fields.push((
            "dictionary".to_owned(),
            Json::obj(vec![
                ("dict_entries", Json::UInt(d.dict_entries)),
                ("encode_hits", Json::UInt(d.encode_hits)),
                ("decode_calls", Json::UInt(d.decode_calls)),
            ]),
        ));
    }
    if let (Some(journal), Json::Obj(fields)) = (&buffer, &mut stats) {
        fields.push(("journal".to_owned(), journal.to_json()));
    }
    *session.last_stats.write().expect("stats cell") = Some(stats);

    let body = Json::obj(vec![
        ("session", Json::Str(session.name.clone())),
        ("result", Json::Str(run.db.canonical_form())),
        ("gamma_steps", Json::UInt(run.stats.gamma_steps)),
        ("counters", tel.snapshot().to_json()),
    ]);
    Response::json(200, format!("{body}\n"))
}

/// Evaluate one request: the greedy (Section 6) executor when a plan
/// exists, the generic choice fixpoint otherwise — the same split `gbc
/// run` makes, so results and counters are byte-identical to the CLI at
/// the same thread count (DESIGN.md §9).
fn execute(
    session: &Session,
    threads: usize,
    tel: &Telemetry,
) -> Result<GreedyRun, gbc_core::CoreError> {
    if session.compiled.has_greedy_plan() {
        session.compiled.run_greedy_telemetry(
            &session.edb,
            GreedyConfig::with_threads(threads),
            tel,
        )
    } else {
        session.compiled.run_generic_telemetry(&session.edb, tel)
    }
}
