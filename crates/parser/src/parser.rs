//! Recursive-descent parser producing `gbc-ast` values.

use std::collections::HashMap;
use std::fmt;

use gbc_ast::term::{ArithOp, Expr};
use gbc_ast::{Atom, CmpOp, Literal, Program, Rule, Symbol, Term, VarId};
use gbc_ast::{Diagnostic, LiteralSpans, RuleSpans, Span};

use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// Parse error with source position (1-based line/column plus the byte
/// span of the offending token, for snippet rendering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
    pub span: Span,
}

impl ParseError {
    /// Render as a `GBC001` diagnostic pointing at the offending token.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error("GBC001", self.message.clone()).with_label(self.span, "here")
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        let span = e.span();
        ParseError { message: e.message, line: e.line, col: e.col, span }
    }
}

/// Parse a full program. Validation (safety, arities) is *not* run here;
/// call [`gbc_ast::Program::validate`] for that.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let mut rules = Vec::new();
    while !p.at_eof() {
        rules.push(p.clause()?);
    }
    Ok(Program::from_rules(rules))
}

/// Parse a single clause (fact or rule), e.g. for tests and REPL-style use.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let rule = p.clause()?;
    if !p.at_eof() {
        return Err(p.err_here("trailing input after clause"));
    }
    Ok(rule)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Per-clause variable scope.
    var_names: Vec<String>,
    var_map: HashMap<String, VarId>,
    anon: Vec<bool>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0, var_names: Vec::new(), var_map: HashMap::new(), anon: Vec::new() }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    /// Byte offset where the current token starts.
    fn tok_start(&self) -> u32 {
        self.tokens[self.pos].start
    }

    /// Byte offset where the previously consumed token ended.
    fn prev_end(&self) -> u32 {
        self.tokens[self.pos.saturating_sub(1)].end
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = &self.tokens[self.pos];
        ParseError { message: msg.into(), line: t.line, col: t.col, span: t.span() }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- variable scope --------------------------------------------------

    fn begin_clause(&mut self) {
        self.var_names.clear();
        self.var_map.clear();
        self.anon.clear();
    }

    fn var(&mut self, name: &str) -> VarId {
        if name == "_" {
            let id = VarId(self.var_names.len() as u32);
            self.var_names.push("_".to_owned());
            self.anon.push(true);
            return id;
        }
        if let Some(&v) = self.var_map.get(name) {
            return v;
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        self.var_map.insert(name.to_owned(), id);
        self.anon.push(false);
        id
    }

    /// Rename anonymous variables so every variable in the clause has a
    /// distinct surface name (`_`, `_2`, `_3`, …), dodging collisions
    /// with user-written names. Keeps the printed form reparsable with
    /// identical semantics.
    fn finalize_var_names(&mut self) -> Vec<String> {
        let mut names = std::mem::take(&mut self.var_names);
        let taken: std::collections::HashSet<String> =
            names.iter().zip(&self.anon).filter(|(_, &a)| !a).map(|(n, _)| n.clone()).collect();
        let mut candidates = std::iter::once("_".to_owned())
            .chain((2usize..).map(|k| format!("_{k}")))
            .filter(|c| !taken.contains(c));
        for (i, is_anon) in self.anon.iter().enumerate() {
            if *is_anon {
                names[i] = candidates.next().expect("infinite candidate stream");
            }
        }
        names
    }

    // ---- grammar ---------------------------------------------------------

    fn clause(&mut self) -> Result<Rule, ParseError> {
        self.begin_clause();
        let rule_start = self.tok_start();
        let (head, head_span, head_args) = self.atom()?;
        let mut body = Vec::new();
        let mut literals = Vec::new();
        if self.eat(&TokenKind::Arrow) {
            loop {
                let (lit, spans) = self.literal()?;
                body.push(lit);
                literals.push(spans);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::Dot)?;
        let span = Span::new(rule_start, self.prev_end());
        let var_names = self.finalize_var_names();
        Ok(Rule::new(head, body, var_names).with_spans(RuleSpans {
            span,
            head: head_span,
            head_args,
            literals,
        }))
    }

    /// An atom with its span and the spans of its top-level arguments.
    fn atom(&mut self) -> Result<(Atom, Span, Vec<Span>), ParseError> {
        let start = self.tok_start();
        let name = match self.bump() {
            TokenKind::Ident(s) => s,
            other => return Err(self.err_here(format!("expected predicate name, found {other}"))),
        };
        let mut args = Vec::new();
        let mut arg_spans = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                let (t, s) = self.term_spanned()?;
                args.push(t);
                arg_spans.push(s);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let span = Span::new(start, self.prev_end());
        Ok((Atom::new(Symbol::intern(&name), args), span, arg_spans))
    }

    fn literal(&mut self) -> Result<(Literal, LiteralSpans), ParseError> {
        let start = self.tok_start();
        if self.eat(&TokenKind::Not) {
            let (a, _, arg_spans) = self.atom()?;
            let span = Span::new(start, self.prev_end());
            return Ok((Literal::Neg(a), LiteralSpans { span, args: arg_spans }));
        }
        // Keyword goals: only when the identifier is immediately applied.
        if let TokenKind::Ident(name) = self.peek() {
            if matches!(self.peek2(), TokenKind::LParen) {
                match name.as_str() {
                    "choice" => return self.choice_goal(start),
                    "least" => return self.extremum_goal(true, start),
                    "most" => return self.extremum_goal(false, start),
                    "next" => return self.next_goal(start),
                    _ => {}
                }
            }
        }
        // Positive-atom fast path: an applied identifier directly
        // followed by `,` or `.` is a plain atom, parsed through
        // `atom()` so its argument spans are recorded. When an operator
        // follows instead, the atom re-enters the expression grammar as
        // a functor term (`t(X, Y) = Z`, `f(X) + 1 < C`).
        let lhs = if matches!(self.peek(), TokenKind::Ident(n)
                if !matches!(n.as_str(), "max" | "min" | "nil"))
            && matches!(self.peek2(), TokenKind::LParen)
        {
            let (a, span, arg_spans) = self.atom()?;
            if matches!(self.peek(), TokenKind::Comma | TokenKind::Dot) {
                return Ok((Literal::Pos(a), LiteralSpans { span, args: arg_spans }));
            }
            self.expr_from(Expr::Term(Term::Func(a.pred, a.args)))?
        } else {
            self.expr()?
        };
        let lhs_span = Span::new(start, self.prev_end());
        let op = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Ne => Some(CmpOp::Ne),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs_start = self.tok_start();
            let rhs = self.expr()?;
            let rhs_span = Span::new(rhs_start, self.prev_end());
            let span = Span::new(start, self.prev_end());
            return Ok((
                Literal::Compare { op, lhs, rhs },
                LiteralSpans { span, args: vec![lhs_span, rhs_span] },
            ));
        }
        // Bare expression must be an atom.
        let atom = match lhs {
            Expr::Term(Term::Func(pred, args)) => Atom { pred, args },
            Expr::Term(Term::Const(gbc_ast::Value::Sym(pred))) => Atom { pred, args: Vec::new() },
            Expr::Term(Term::Const(gbc_ast::Value::Func(pred, args))) => {
                Atom { pred, args: args.iter().cloned().map(Term::Const).collect() }
            }
            _ => return Err(self.err_here("expected an atom or a comparison")),
        };
        Ok((Literal::Pos(atom), LiteralSpans { span: lhs_span, args: Vec::new() }))
    }

    fn choice_goal(&mut self, start: u32) -> Result<(Literal, LiteralSpans), ParseError> {
        self.bump(); // `choice`
        self.expect(TokenKind::LParen)?;
        let (left, mut args) = self.term_tuple()?;
        self.expect(TokenKind::Comma)?;
        let (right, right_spans) = self.term_tuple()?;
        args.extend(right_spans);
        self.expect(TokenKind::RParen)?;
        let span = Span::new(start, self.prev_end());
        Ok((Literal::Choice { left, right }, LiteralSpans { span, args }))
    }

    fn extremum_goal(
        &mut self,
        least: bool,
        start: u32,
    ) -> Result<(Literal, LiteralSpans), ParseError> {
        self.bump(); // `least` / `most`
        self.expect(TokenKind::LParen)?;
        let (cost, cost_span) = self.term_spanned()?;
        let mut args = vec![cost_span];
        let group = if self.eat(&TokenKind::Comma) {
            let (g, gs) = self.term_tuple()?;
            args.extend(gs);
            g
        } else {
            Vec::new()
        };
        self.expect(TokenKind::RParen)?;
        let span = Span::new(start, self.prev_end());
        let lit =
            if least { Literal::Least { cost, group } } else { Literal::Most { cost, group } };
        Ok((lit, LiteralSpans { span, args }))
    }

    fn next_goal(&mut self, start: u32) -> Result<(Literal, LiteralSpans), ParseError> {
        self.bump(); // `next`
        self.expect(TokenKind::LParen)?;
        let var_start = self.tok_start();
        let var = match self.bump() {
            TokenKind::Var(name) => self.var(&name),
            other => {
                return Err(self.err_here(format!("next(…) takes a single variable, found {other}")))
            }
        };
        let var_span = Span::new(var_start, self.prev_end());
        self.expect(TokenKind::RParen)?;
        let span = Span::new(start, self.prev_end());
        Ok((Literal::Next { var }, LiteralSpans { span, args: vec![var_span] }))
    }

    /// A term or a parenthesised term tuple; `()` is the empty tuple.
    /// Returns per-element spans alongside the terms.
    fn term_tuple(&mut self) -> Result<(Vec<Term>, Vec<Span>), ParseError> {
        if self.eat(&TokenKind::LParen) {
            let mut ts = Vec::new();
            let mut spans = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    let (t, s) = self.term_spanned()?;
                    ts.push(t);
                    spans.push(s);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
            Ok((ts, spans))
        } else {
            let (t, s) = self.term_spanned()?;
            Ok((vec![t], vec![s]))
        }
    }

    /// A term with the byte span it occupies.
    fn term_spanned(&mut self) -> Result<(Term, Span), ParseError> {
        let start = self.tok_start();
        let t = self.term()?;
        Ok((t, Span::new(start, self.prev_end())))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            TokenKind::Var(name) => Ok(Term::Var(self.var(&name))),
            TokenKind::Int(i) => Ok(Term::int(i)),
            TokenKind::Minus => match self.bump() {
                TokenKind::Int(i) => Ok(Term::int(-i)),
                other => Err(self.err_here(format!("expected integer after `-`, found {other}"))),
            },
            TokenKind::Str(s) => Ok(Term::Const(gbc_ast::Value::str(&s))),
            TokenKind::Ident(name) if name == "nil" => Ok(Term::Const(gbc_ast::Value::Nil)),
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.term()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                    }
                    Ok(Term::Func(Symbol::intern(&name), args))
                } else {
                    Ok(Term::sym(&name))
                }
            }
            other => Err(self.err_here(format!("expected a term, found {other}"))),
        }
    }

    // Expressions: standard precedence climbing.

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.mul_expr()?;
        self.expr_from_mul(first)
    }

    /// Continue the additive grammar from an already-parsed primary
    /// (used by the positive-atom fast path in [`Parser::literal`]).
    fn expr_from(&mut self, first: Expr) -> Result<Expr, ParseError> {
        let first = self.mul_expr_from(first)?;
        self.expr_from_mul(first)
    }

    fn expr_from_mul(&mut self, mut lhs: Expr) -> Result<Expr, ParseError> {
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.unary_expr()?;
        self.mul_expr_from(first)
    }

    fn mul_expr_from(&mut self, mut lhs: Expr) -> Result<Expr, ParseError> {
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                TokenKind::Ident(s) if s == "mod" => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if matches!(self.peek(), TokenKind::Minus) {
            // `-3` lexes as Minus Int and is folded; `-X` becomes Neg.
            self.bump();
            let e = self.unary_expr()?;
            if let Expr::Term(Term::Const(gbc_ast::Value::Int(i))) = e {
                return Ok(Expr::int(-i));
            }
            return Ok(Expr::Neg(Box::new(e)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        // max/min built-ins.
        if let TokenKind::Ident(name) = self.peek() {
            let is_builtin =
                matches!(name.as_str(), "max" | "min") && matches!(self.peek2(), TokenKind::LParen);
            if is_builtin {
                let op = if name == "max" { ArithOp::Max } else { ArithOp::Min };
                self.bump();
                self.expect(TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let b = self.expr()?;
                self.expect(TokenKind::RParen)?;
                return Ok(Expr::binary(op, a, b));
            }
        }
        if self.eat(&TokenKind::LParen) {
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            return Ok(e);
        }
        Ok(Expr::Term(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_fact() {
        let r = parse_rule("takes(andy, engl, 4).").unwrap();
        assert!(r.is_fact());
        assert_eq!(r.to_string(), "takes(andy,engl,4).");
    }

    #[test]
    fn parses_example_1_choice_rule() {
        let r = parse_rule("a_st(St, Crs) <- takes(St, Crs), choice(Crs, St), choice(St, Crs).")
            .unwrap();
        assert!(r.has_choice());
        assert_eq!(r.body.len(), 3);
        assert!(matches!(&r.body[1], Literal::Choice { left, right }
            if left.len() == 1 && right.len() == 1));
    }

    #[test]
    fn parses_prim_next_rule() {
        let r = parse_rule(
            "prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).",
        )
        .unwrap();
        assert!(r.has_next());
        assert!(r.has_extrema());
        assert!(r.has_choice());
        assert_eq!(r.head.arity(), 4);
    }

    #[test]
    fn parses_empty_tuple_choice() {
        let r = parse_rule("tsp(X, Y, C, 1) <- least_arcs(X, Y, C), choice((), (X, Y)).").unwrap();
        match &r.body[1] {
            Literal::Choice { left, right } => {
                assert!(left.is_empty());
                assert_eq!(right.len(), 2);
            }
            other => panic!("expected choice, got {other:?}", other = other.vars()),
        }
    }

    #[test]
    fn parses_arithmetic_assignment() {
        let r = parse_rule("p(I) <- q(J), I = J + 1.").unwrap();
        assert!(matches!(&r.body[1], Literal::Compare { op: CmpOp::Eq, .. }));
    }

    #[test]
    fn parses_max_builtin() {
        let r = parse_rule("p(I) <- q(J), q(K), I = max(J, K).").unwrap();
        let Literal::Compare { rhs, .. } = &r.body[2] else {
            panic!("expected comparison");
        };
        assert!(rhs.has_arith());
    }

    #[test]
    fn parses_negation_and_functor_terms() {
        let r = parse_rule("subtree(X, I) <- h(t(X, _), _, I).").unwrap();
        assert_eq!(r.body.len(), 1);
        let Literal::Pos(a) = &r.body[0] else { panic!() };
        assert!(matches!(&a.args[0], Term::Func(f, args) if f.as_str() == "t" && args.len() == 2));

        let r2 = parse_rule("p(X) <- q(X), not r(X).").unwrap();
        assert!(r2.has_negation());
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let r = parse_rule("new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).").unwrap();
        // prm's first and third args must be distinct variables.
        let Literal::Pos(a) = &r.body[0] else { panic!() };
        let (Term::Var(v1), Term::Var(v3)) = (&a.args[0], &a.args[2]) else { panic!() };
        assert_ne!(v1, v3);
    }

    #[test]
    fn nil_parses_as_value() {
        let r = parse_rule("st(nil, a, 0, 0).").unwrap();
        assert_eq!(r.head.args[0], Term::Const(gbc_ast::Value::Nil));
    }

    #[test]
    fn zero_arity_atoms() {
        let r = parse_rule("done <- finished.").unwrap();
        assert_eq!(r.head.arity(), 0);
        let Literal::Pos(a) = &r.body[0] else { panic!() };
        assert_eq!(a.arity(), 0);
    }

    #[test]
    fn program_with_comments() {
        let p = parse_program(
            "% Prim exit rule\nprm(nil, a, 0, 0).\n% recursive rule follows\nnew_g(X,Y,C,J) <- prm(_, X, _, J), g(X,Y,C).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn error_reports_position() {
        let e = parse_rule("p(X) <- q(X)").unwrap_err();
        assert!(e.message.contains("expected `.`"), "{}", e.message);
    }

    #[test]
    fn rejects_next_with_nonvariable() {
        assert!(parse_rule("p(X, 1) <- next(1), q(X).").is_err());
    }

    #[test]
    fn negative_integers_in_facts_and_exprs() {
        let r = parse_rule("g(a, b, -5).").unwrap();
        assert_eq!(r.head.args[2], Term::int(-5));
        let r2 = parse_rule("p(X) <- q(X, C), C > -2.").unwrap();
        assert!(matches!(&r2.body[1], Literal::Compare { .. }));
    }

    #[test]
    fn least_group_forms() {
        // least(C) — empty group
        let r1 = parse_rule("p(X, C) <- q(X, C), least(C).").unwrap();
        let Literal::Least { group, .. } = &r1.body[1] else { panic!() };
        assert!(group.is_empty());
        // least(C, I) — singleton group, bare
        let r2 = parse_rule("p(X, C, I) <- q(X, C, I), least(C, I).").unwrap();
        let Literal::Least { group, .. } = &r2.body[1] else { panic!() };
        assert_eq!(group.len(), 1);
        // least(C, (X, I)) — tuple group
        let r3 = parse_rule("p(X, C, I) <- q(X, C, I), least(C, (X, I)).").unwrap();
        let Literal::Least { group, .. } = &r3.body[1] else { panic!() };
        assert_eq!(group.len(), 2);
        // least(G, ()) — explicit empty group
        let r4 = parse_rule("p(X, G) <- q(X, G), least(G, ()).").unwrap();
        let Literal::Least { group, .. } = &r4.body[1] else { panic!() };
        assert!(group.is_empty());
    }

    #[test]
    fn most_parses_like_least() {
        let r = parse_rule("last_comp(X, J, I) <- comp(X, J, I1), I1 <= I, most(J, X).").unwrap();
        assert!(matches!(&r.body[2], Literal::Most { .. }));
    }

    fn snip(src: &str, span: gbc_ast::Span) -> &str {
        &src[span.start as usize..span.end as usize]
    }

    #[test]
    fn rule_spans_point_into_source() {
        let src =
            "prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, least(C, I), choice(Y, X).";
        let r = parse_rule(src).unwrap();
        let rs = r.spans.as_ref().expect("parsed rules carry spans");
        assert_eq!(snip(src, rs.span), src);
        assert_eq!(snip(src, rs.head), "prm(X, Y, C, I)");
        assert_eq!(snip(src, rs.head_arg(0)), "X");
        assert_eq!(snip(src, rs.head_arg(3)), "I");
        assert_eq!(snip(src, rs.literal(0)), "next(I)");
        assert_eq!(snip(src, rs.literal_arg(0, 0)), "I");
        assert_eq!(snip(src, rs.literal(1)), "new_g(X, Y, C, J)");
        assert_eq!(snip(src, rs.literal_arg(1, 3)), "J");
        assert_eq!(snip(src, rs.literal(2)), "J < I");
        assert_eq!(snip(src, rs.literal_arg(2, 0)), "J");
        assert_eq!(snip(src, rs.literal_arg(2, 1)), "I");
        assert_eq!(snip(src, rs.literal(3)), "least(C, I)");
        assert_eq!(snip(src, rs.literal_arg(3, 1)), "I");
        assert_eq!(snip(src, rs.literal(4)), "choice(Y, X)");
        assert_eq!(snip(src, rs.literal_arg(4, 1)), "X");
    }

    #[test]
    fn negated_literal_span_includes_not() {
        let src = "p(X) <- q(X), not r(X, Y).";
        let r = parse_rule(src).unwrap();
        let rs = r.spans.as_ref().unwrap();
        assert_eq!(snip(src, rs.literal(1)), "not r(X, Y)");
        assert_eq!(snip(src, rs.literal_arg(1, 1)), "Y");
    }

    #[test]
    fn functor_lhs_comparison_still_parses() {
        // The positive-atom fast path must hand `t(X, Y)` back to the
        // expression grammar when an operator follows.
        let r = parse_rule("p(X, Y, Z) <- q(X, Y, Z), t(X, Y) = Z.").unwrap();
        assert!(matches!(&r.body[1], Literal::Compare { op: CmpOp::Eq, .. }));
        let src = "p(X, C) <- q(X, C), f(X) + 1 < C.";
        let r2 = parse_rule(src).unwrap();
        assert!(matches!(&r2.body[1], Literal::Compare { op: CmpOp::Lt, .. }));
        let rs = r2.spans.as_ref().unwrap();
        assert_eq!(snip(src, rs.literal(1)), "f(X) + 1 < C");
        assert_eq!(snip(src, rs.literal_arg(1, 0)), "f(X) + 1");
        assert_eq!(snip(src, rs.literal_arg(1, 1)), "C");
    }

    #[test]
    fn spans_ignored_by_rule_equality() {
        let a = parse_rule("p(X) <- q(X).").unwrap();
        let mut b = parse_rule("p(X) <- q(X).").unwrap();
        b.spans = None;
        assert_eq!(a, b);
    }

    #[test]
    fn parse_error_carries_span() {
        let src = "p(X) <- q(X)";
        let e = parse_rule(src).unwrap_err();
        // Points at EOF (offset 12).
        assert_eq!(e.span.start, 12);
    }

    #[test]
    fn multi_rule_spans_use_global_offsets() {
        let src = "p(a).\nq(X) <- p(X).\n";
        let p = parse_program(src).unwrap();
        let rs = p.rules[1].spans.as_ref().unwrap();
        assert_eq!(snip(src, rs.span), "q(X) <- p(X).");
        assert_eq!(snip(src, rs.head), "q(X)");
    }
}
