//! The value dictionary: every [`Value`] the engine ever stores is
//! interned to a dense `u32` id, and relations/indexes/heaps operate
//! on ids until an output boundary decodes them back.
//!
//! Design (DESIGN.md §11):
//!
//! - **Global, append-only.** Ids are assigned once, in first-intern
//!   order, and never recycled. The id → value side is a chunked
//!   array of `OnceLock` slots (geometrically sized chunks, so lookup
//!   is two shifts and two indexed loads), which makes [`decode_ref`]
//!   lock-free: readers never contend with writers.
//! - **Deterministic assignment.** All interning happens at
//!   single-threaded points — EDB load, plan compilation, and the
//!   coordinator's merge loops — never inside pool workers, so the id
//!   assignment order (and therefore every id-keyed structure) is
//!   independent of the thread count. `debug_assert`s in the pool
//!   enforce the "workers never intern" contract.
//! - **Functor terms stay flat.** Interning `t(X, Y)` first interns
//!   `X` and `Y`, then records their ids alongside the entry, so
//!   [`func_parts`] destructures a functor without leaving id space.
//! - **Ordering contract.** [`cmp_ids`] orders ids by their *decoded*
//!   [`Value`] ordering (`Nil < Int < Sym < Str < Func`, then
//!   value-wise) — id magnitude is meaningless. Encoded cost keys in
//!   the (R,Q,L) heap use exactly this comparator, so heap behaviour
//!   is byte-identical to the pre-columnar row representation.
//! - **Exhaustion is an error, not a panic**, on the fallible
//!   instance API: [`Dictionary::try_intern`] returns
//!   [`DictionaryFull`] once `limit` ids exist. The global table's
//!   limit is `u32::MAX` (the [`DICT_MISS`] sentinel is reserved), a
//!   ceiling no realistic workload reaches before exhausting memory.

use std::collections::HashMap;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

use gbc_ast::{Symbol, Value};

use crate::fx::FxBuildHasher;
use crate::tuple::Row;

/// Sentinel for "this value has never been interned". Never a valid
/// id: the global table refuses to assign it. A lookup key containing
/// `DICT_MISS` matches no stored row (stored rows only hold real ids),
/// which is exactly the semantics a probe for an unseen constant needs.
pub const DICT_MISS: u32 = u32::MAX;

/// One interned value plus, for functor terms, the pre-interned ids of
/// its arguments (so destructuring stays in id space).
struct Entry {
    value: Value,
    func_args: Option<Box<[u32]>>,
}

/// Chunked id → entry storage: chunk `c` holds `BASE << c` slots, so
/// 21 chunks cover the full u32 range while keeping early lookups in
/// one small always-hot array.
const BASE: u32 = 4096;
const NUM_CHUNKS: usize = 21;

struct Slots {
    chunks: [OnceLock<Box<[OnceLock<&'static Entry>]>>; NUM_CHUNKS],
}

impl Slots {
    const fn new() -> Slots {
        // OnceLock::new() is const, but array-of-const-init needs the
        // inline-const repeat form.
        Slots { chunks: [const { OnceLock::new() }; NUM_CHUNKS] }
    }

    /// (chunk index, offset within chunk) for an id.
    fn locate(id: u32) -> (usize, usize) {
        let k = (id / BASE) + 1;
        let c = (31 - k.leading_zeros()) as usize;
        let start = (BASE as u64) * ((1u64 << c) - 1);
        (c, (id as u64 - start) as usize)
    }

    fn chunk(&self, c: usize) -> &[OnceLock<&'static Entry>] {
        self.chunks[c].get_or_init(|| {
            let len = (BASE as usize) << c;
            let mut v = Vec::with_capacity(len);
            v.resize_with(len, OnceLock::new);
            v.into_boxed_slice()
        })
    }

    fn get(&self, id: u32) -> Option<&'static Entry> {
        let (c, off) = Slots::locate(id);
        // A never-initialised chunk means the id was never assigned.
        self.chunks[c].get().and_then(|ch| ch[off].get().copied())
    }

    fn set(&self, id: u32, entry: &'static Entry) {
        let (c, off) = Slots::locate(id);
        self.chunk(c)[off].set(entry).unwrap_or_else(|_| panic!("dictionary id {id} set twice"));
    }
}

static SLOTS: Slots = Slots::new();

/// value → id map. Keys borrow the leaked entry's `Value`, so probes
/// take `&Value` without cloning (`Borrow<Value> for &'static Value`).
static MAP: OnceLock<RwLock<HashMap<&'static Value, u32, FxBuildHasher>>> = OnceLock::new();

fn map() -> &'static RwLock<HashMap<&'static Value, u32, FxBuildHasher>> {
    MAP.get_or_init(|| RwLock::new(HashMap::default()))
}

// Interning-overhead counters (satellite: `dictionary` block in
// `--stats-json`). Deliberately *not* part of `gbc-telemetry`'s
// `Metrics`/`Snapshot`: the dictionary is process-global, so its
// counters accumulate across runs in one process, and folding them
// into per-run snapshots would break run-to-run equality contracts
// (tests/parallel_equivalence.rs). The CLI reports them as a
// before/after delta instead.
static ENTRIES: AtomicU64 = AtomicU64::new(0);
static ENCODE_HITS: AtomicU64 = AtomicU64::new(0);
static DECODE_CALLS: AtomicU64 = AtomicU64::new(0);

// Debug-only "workers never intern" guard: the PR 5 pool flips this
// on worker threads; any intern attempt there is a determinism bug.
#[cfg(debug_assertions)]
thread_local! {
    static INTERN_FORBIDDEN: AtomicBool = const { AtomicBool::new(false) };
}

/// Mark (or unmark) the current thread as forbidden from interning.
/// Debug builds panic on [`encode`] from a marked thread; release
/// builds compile this to nothing.
pub fn forbid_intern_on_this_thread(forbid: bool) {
    #[cfg(debug_assertions)]
    INTERN_FORBIDDEN.with(|f| f.store(forbid, Ordering::Relaxed));
    #[cfg(not(debug_assertions))]
    let _ = forbid;
}

#[cfg(debug_assertions)]
fn assert_intern_allowed() {
    INTERN_FORBIDDEN.with(|f| {
        debug_assert!(
            !f.load(Ordering::Relaxed),
            "dictionary intern from a pool worker — interning must stay on \
             deterministic single-threaded paths (EDB load, plan compile, merge)"
        );
    });
}

/// A point-in-time copy of the dictionary counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DictStats {
    /// Distinct values interned so far (dense id count).
    pub dict_entries: u64,
    /// Encode probes answered by an existing entry.
    pub encode_hits: u64,
    /// Boundary decodes that cloned a value back out.
    pub decode_calls: u64,
}

impl DictStats {
    /// Counter movement between two snapshots (`self` later).
    pub fn since(&self, earlier: &DictStats) -> DictStats {
        DictStats {
            dict_entries: self.dict_entries - earlier.dict_entries,
            encode_hits: self.encode_hits - earlier.encode_hits,
            decode_calls: self.decode_calls - earlier.decode_calls,
        }
    }
}

/// Current global counter values.
pub fn dict_stats() -> DictStats {
    DictStats {
        dict_entries: ENTRIES.load(Ordering::Relaxed),
        encode_hits: ENCODE_HITS.load(Ordering::Relaxed),
        decode_calls: DECODE_CALLS.load(Ordering::Relaxed),
    }
}

/// Intern `v`, returning its dense id (assigning one on first sight).
/// Functor arguments are interned first, depth-first, so every id a
/// stored functor references is itself valid.
pub fn encode(v: &Value) -> u32 {
    if let Some(id) = lookup(v) {
        return id;
    }
    #[cfg(debug_assertions)]
    assert_intern_allowed();
    // Intern functor arguments *outside* the write lock (recursion
    // would deadlock under it), then re-check under the lock.
    let func_args: Option<Box<[u32]>> = match v {
        Value::Func(_, args) => Some(args.iter().map(encode).collect()),
        _ => None,
    };
    let mut m = map().write().expect("dictionary poisoned");
    if let Some(&id) = m.get(v) {
        // Raced with another interning thread; count it as a hit.
        ENCODE_HITS.fetch_add(1, Ordering::Relaxed);
        return id;
    }
    let id = m.len() as u32;
    assert!(id != DICT_MISS, "{}", DictionaryFull { limit: DICT_MISS });
    let entry: &'static Entry = Box::leak(Box::new(Entry { value: v.clone(), func_args }));
    SLOTS.set(id, entry);
    m.insert(&entry.value, id);
    ENTRIES.fetch_add(1, Ordering::Relaxed);
    id
}

/// Lookup-only probe: the id if `v` was ever interned, else
/// [`DICT_MISS`]. Never assigns an id, so it is safe on any thread.
pub fn try_encode(v: &Value) -> u32 {
    lookup(v).unwrap_or(DICT_MISS)
}

fn lookup(v: &Value) -> Option<u32> {
    let id = *map().read().expect("dictionary poisoned").get(v)?;
    ENCODE_HITS.fetch_add(1, Ordering::Relaxed);
    Some(id)
}

/// Borrow the interned value for `id`. Lock-free; panics on an id the
/// dictionary never assigned (such ids cannot appear in any relation).
pub fn decode_ref(id: u32) -> &'static Value {
    &SLOTS.get(id).unwrap_or_else(|| panic!("decode of unassigned dictionary id {id}")).value
}

/// Clone the value for `id` back out — the counted boundary decode.
pub fn decode(id: u32) -> Value {
    DECODE_CALLS.fetch_add(1, Ordering::Relaxed);
    decode_ref(id).clone()
}

/// Functor destructuring in id space: `Some((name, arg_ids))` when
/// `id` is a `Func`, `None` otherwise.
pub fn func_parts(id: u32) -> Option<(Symbol, &'static [u32])> {
    let entry = SLOTS.get(id)?;
    match (&entry.value, &entry.func_args) {
        (Value::Func(name, _), Some(args)) => Some((*name, args)),
        _ => None,
    }
}

/// Order two ids by their decoded values. Equal ids short-circuit
/// without touching the slot array (interning guarantees id equality
/// ⇔ value equality).
pub fn cmp_ids(a: u32, b: u32) -> std::cmp::Ordering {
    if a == b {
        std::cmp::Ordering::Equal
    } else {
        decode_ref(a).cmp(decode_ref(b))
    }
}

/// Lexicographic row ordering under [`cmp_ids`] — exactly the `Ord`
/// of the pre-columnar `[Value]` slices.
pub fn cmp_id_rows(a: &[u32], b: &[u32]) -> std::cmp::Ordering {
    for (&x, &y) in a.iter().zip(b.iter()) {
        match cmp_ids(x, y) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// Encode a full row of values.
pub fn encode_row(values: &[Value]) -> Vec<u32> {
    values.iter().map(encode).collect()
}

/// Decode a full id row to a boundary [`Row`]. One counted decode per
/// cell.
pub fn decode_row(ids: &[u32]) -> Row {
    DECODE_CALLS.fetch_add(ids.len() as u64, Ordering::Relaxed);
    Row::new(ids.iter().map(|&id| decode_ref(id).clone()).collect())
}

/// Structured exhaustion error: the dictionary's id space is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DictionaryFull {
    /// The id limit that was reached.
    pub limit: u32,
}

impl std::fmt::Display for DictionaryFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value dictionary full: {} id(s) exhausted", self.limit)
    }
}

impl std::error::Error for DictionaryFull {}

/// An owned, bounded dictionary instance with the same assignment
/// semantics as the global table but a fallible intern. The engine
/// runs on the global table; this type exists so exhaustion behaviour
/// is testable (and so embedders can build bounded side dictionaries).
#[derive(Debug, Default)]
pub struct Dictionary {
    inner: Mutex<DictionaryInner>,
    limit: u32,
}

#[derive(Debug, Default)]
struct DictionaryInner {
    map: HashMap<Value, u32, FxBuildHasher>,
    values: Vec<Value>,
}

impl Dictionary {
    /// Unbounded (full u32 range minus the sentinel).
    pub fn new() -> Dictionary {
        Dictionary::with_limit(DICT_MISS)
    }

    /// At most `limit` ids (`0..limit`); the [`DICT_MISS`] sentinel is
    /// never assigned because `id >= limit` fails first.
    pub fn with_limit(limit: u32) -> Dictionary {
        Dictionary { inner: Mutex::new(DictionaryInner::default()), limit }
    }

    /// Intern `v`, or report [`DictionaryFull`] once `limit` distinct
    /// values exist. Functor arguments intern first, like the global
    /// table, so a success guarantees the whole subterm tree fits.
    pub fn try_intern(&self, v: &Value) -> Result<u32, DictionaryFull> {
        if let Value::Func(_, args) = v {
            for arg in args.iter() {
                self.try_intern(arg)?;
            }
        }
        let mut inner = self.inner.lock().expect("dictionary poisoned");
        if let Some(&id) = inner.map.get(v) {
            return Ok(id);
        }
        let id = inner.values.len() as u32;
        if id >= self.limit {
            return Err(DictionaryFull { limit: self.limit });
        }
        inner.values.push(v.clone());
        inner.map.insert(v.clone(), id);
        Ok(id)
    }

    /// The value for `id`, if assigned.
    pub fn resolve(&self, id: u32) -> Option<Value> {
        self.inner.lock().expect("dictionary poisoned").values.get(id as usize).cloned()
    }

    /// Distinct values interned.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("dictionary poisoned").values.len()
    }

    /// No values interned yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Nil,
            Value::int(0),
            Value::int(-7),
            Value::int(i64::MAX),
            Value::sym("a"),
            Value::sym("zebra"),
            Value::Str(Arc::from("hello world")),
            Value::Func(Symbol::intern("t"), Arc::from(vec![Value::int(1), Value::sym("x")])),
            // Nested Huffman-style tree: t(t(1, 2), t(3, nil)).
            Value::Func(
                Symbol::intern("t"),
                Arc::from(vec![
                    Value::Func(Symbol::intern("t"), Arc::from(vec![Value::int(1), Value::int(2)])),
                    Value::Func(Symbol::intern("t"), Arc::from(vec![Value::int(3), Value::Nil])),
                ]),
            ),
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for v in sample_values() {
            let id = encode(&v);
            assert_eq!(encode(&v), id, "second encode must be stable");
            assert_eq!(*decode_ref(id), v);
            assert_eq!(decode(id), v);
            assert_eq!(try_encode(&v), id);
        }
    }

    #[test]
    fn ids_are_value_identity() {
        let a = encode(&Value::int(999_001));
        let b = encode(&Value::int(999_002));
        assert_ne!(a, b);
        assert_eq!(encode(&Value::int(999_001)), a);
    }

    #[test]
    fn func_parts_destructure_in_id_space() {
        let x = Value::int(41);
        let y = Value::sym("leaf");
        let t = Value::Func(Symbol::intern("t"), Arc::from(vec![x.clone(), y.clone()]));
        let id = encode(&t);
        let (name, args) = func_parts(id).expect("functor entry");
        assert_eq!(name, Symbol::intern("t"));
        assert_eq!(args, &[encode(&x), encode(&y)]);
        assert_eq!(func_parts(encode(&x)), None, "non-functors have no parts");
    }

    #[test]
    fn cmp_ids_follows_value_order() {
        let vals = sample_values();
        for a in &vals {
            for b in &vals {
                assert_eq!(cmp_ids(encode(a), encode(b)), a.cmp(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cmp_id_rows_matches_slice_order() {
        let r1 = encode_row(&[Value::int(1), Value::int(2)]);
        let r2 = encode_row(&[Value::int(1), Value::int(3)]);
        let r3 = encode_row(&[Value::int(1)]);
        assert_eq!(cmp_id_rows(&r1, &r2), std::cmp::Ordering::Less);
        assert_eq!(cmp_id_rows(&r2, &r1), std::cmp::Ordering::Greater);
        assert_eq!(cmp_id_rows(&r3, &r1), std::cmp::Ordering::Less, "prefix sorts first");
        assert_eq!(cmp_id_rows(&r1, &r1), std::cmp::Ordering::Equal);
    }

    #[test]
    fn try_encode_misses_unseen_values() {
        assert_eq!(try_encode(&Value::sym("never-interned-sentinel-xyzzy")), DICT_MISS);
    }

    #[test]
    fn row_round_trip() {
        let vals = vec![Value::sym("edge"), Value::int(3), Value::Nil];
        let ids = encode_row(&vals);
        assert_eq!(&decode_row(&ids)[..], vals.as_slice());
    }

    #[test]
    fn exhaustion_is_a_structured_error() {
        let d = Dictionary::with_limit(2);
        assert_eq!(d.try_intern(&Value::int(1)), Ok(0));
        assert_eq!(d.try_intern(&Value::int(2)), Ok(1));
        assert_eq!(d.try_intern(&Value::int(1)), Ok(0), "existing ids still resolve");
        let err = d.try_intern(&Value::int(3)).unwrap_err();
        assert_eq!(err, DictionaryFull { limit: 2 });
        assert_eq!(err.to_string(), "value dictionary full: 2 id(s) exhausted");
        assert_eq!(d.len(), 2, "failed intern must not consume an id");
    }

    #[test]
    fn exhaustion_counts_functor_subterms() {
        let d = Dictionary::with_limit(2);
        let t = Value::Func(Symbol::intern("t"), Arc::from(vec![Value::int(1), Value::int(2)]));
        // t's two arguments fill the table before t itself can intern.
        assert_eq!(d.try_intern(&t), Err(DictionaryFull { limit: 2 }));
    }

    #[test]
    fn stats_move_monotonically() {
        let before = dict_stats();
        let v = Value::sym("stats-probe-value");
        encode(&v);
        encode(&v);
        decode(encode(&v));
        let after = dict_stats();
        let delta = after.since(&before);
        assert!(delta.dict_entries >= 1);
        assert!(delta.encode_hits >= 2);
        assert!(delta.decode_calls >= 1);
    }

    #[test]
    fn chunk_locate_covers_boundaries() {
        for id in [0, 1, BASE - 1, BASE, 3 * BASE - 1, 3 * BASE, 7 * BASE - 1, 1_000_000] {
            let (c, off) = Slots::locate(id);
            assert!(c < NUM_CHUNKS);
            assert!(off < (BASE as usize) << c, "id {id} → chunk {c} off {off}");
        }
    }
}
