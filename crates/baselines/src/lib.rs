//! # gbc-baselines
//!
//! Textbook procedural implementations of the algorithms whose
//! declarative formulations *Greedy by Choice* (PODS 1992) presents.
//! Section 6 compares its fixpoint implementations against "the
//! classical complexity"; these are the comparators:
//!
//! * [`prim`] — Prim's MST with a binary heap, `O(e log n)` (Example 4's
//!   comparator);
//! * [`kruskal`] — Kruskal's MST with union-find (`O(e log e)`), plus
//!   the *relabel* variant that mirrors the paper's `O(e·n)` declarative
//!   cost analysis of Example 8;
//! * [`sorts`] — heap-sort (what the fixpoint "actually runs",
//!   Section 6) and insertion sort (what Example 5 "looks like");
//! * [`matching`] — greedy min-cost maximal matching by sorted edges
//!   (Example 7's comparator);
//! * [`tsp`] — greedy-edge chain and nearest-neighbour Hamiltonian-path
//!   heuristics (the "computation of sub-optimals");
//! * [`huffman`] — classical heap-based Huffman tree construction
//!   (Example 6's comparator);
//! * [`unionfind`] — disjoint sets with union by rank and path
//!   compression.
//!
//! All functions are deterministic: ties break on the full edge/item
//! tuple, matching the deterministic tie-breaking of the `gbc-core`
//! executor so that cross-validation tests can compare outputs exactly
//! where the algorithms are deterministic, and compare *costs* where
//! only the optimum is unique.

pub mod huffman;
pub mod kruskal;
pub mod matching;
pub mod prim;
pub mod scheduling;
pub mod sorts;
pub mod tsp;
pub mod unionfind;

/// A weighted directed edge `(from, to, cost)` over dense node ids.
/// Undirected graphs are represented by listing both orientations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    pub from: u32,
    pub to: u32,
    pub cost: i64,
}

impl Edge {
    /// Construct an edge.
    pub fn new(from: u32, to: u32, cost: i64) -> Edge {
        Edge { from, to, cost }
    }
}

/// Sum of edge costs.
pub fn total_cost(edges: &[Edge]) -> i64 {
    edges.iter().map(|e| e.cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_sums() {
        let es = [Edge::new(0, 1, 3), Edge::new(1, 2, 4)];
        assert_eq!(total_cost(&es), 7);
    }
}
