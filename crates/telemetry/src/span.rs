//! Phase timers with a hierarchical report.
//!
//! A [`Phases`] accumulates wall-clock time per named phase. Names use
//! `/` as a hierarchy separator (`run/flat`, `run/gamma`, …) and the
//! report renders children indented under their parents with
//! percentages of the run total. When disabled (the default), timing
//! closures run untouched — no `Instant::now` calls at all — which is
//! what keeps the instrumentation safe to leave in hot loops.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::Json;

#[derive(Debug, Clone)]
struct Acc {
    name: String,
    total: Duration,
    count: u64,
}

/// A named-phase stopwatch. Shared via `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Phases {
    enabled: bool,
    /// Accumulators in first-use order (stable report layout).
    accs: Mutex<Vec<Acc>>,
}

impl Phases {
    /// A disabled stopwatch: `time` runs closures without timing.
    pub fn disabled() -> Phases {
        Phases::default()
    }

    /// An enabled stopwatch.
    pub fn enabled() -> Phases {
        Phases { enabled: true, accs: Mutex::new(Vec::new()) }
    }

    /// Is timing on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Run `f`, charging its wall-clock time to `name` when enabled.
    #[inline]
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.add(name, start.elapsed());
        out
    }

    /// Charge `dur` to `name` directly.
    pub fn add(&self, name: &str, dur: Duration) {
        if !self.enabled {
            return;
        }
        let mut accs = self.accs.lock().expect("phase lock");
        match accs.iter_mut().find(|a| a.name == name) {
            Some(a) => {
                a.total += dur;
                a.count += 1;
            }
            None => accs.push(Acc { name: name.to_owned(), total: dur, count: 1 }),
        }
    }

    /// `(name, seconds, count)` triples in first-use order.
    pub fn entries(&self) -> Vec<(String, f64, u64)> {
        self.accs
            .lock()
            .expect("phase lock")
            .iter()
            .map(|a| (a.name.clone(), a.total.as_secs_f64(), a.count))
            .collect()
    }

    /// Hierarchical plain-text report. Top-level phases are listed with
    /// their share of the top-level total; children (`parent/child`)
    /// indent beneath their parent.
    pub fn render(&self) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return String::new();
        }
        let top_total: f64 =
            entries.iter().filter(|(n, _, _)| !n.contains('/')).map(|(_, s, _)| s).sum();
        let mut out = String::new();
        let name_w = entries.iter().map(|(n, _, _)| n.len() + 2).max().unwrap_or(0);
        for (name, secs, count) in &entries {
            let depth = name.matches('/').count();
            let leaf = name.rsplit('/').next().unwrap_or(name);
            let label = format!("{}{leaf}", "  ".repeat(depth));
            let pct = if top_total > 0.0 && depth == 0 {
                format!("{:5.1}%", 100.0 * secs / top_total)
            } else {
                "      ".to_owned()
            };
            out.push_str(&format!("{label:<name_w$}  {secs:>10.6}s  {pct}  ×{count}\n"));
        }
        out
    }

    /// JSON array of `{name, secs, count}` objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries()
                .into_iter()
                .map(|(name, secs, count)| {
                    Json::obj(vec![
                        ("name", Json::Str(name)),
                        ("secs", Json::Float(secs)),
                        ("count", Json::UInt(count)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_phases_record_nothing() {
        let p = Phases::disabled();
        assert_eq!(p.time("x", || 7), 7);
        p.add("y", Duration::from_secs(1));
        assert!(p.entries().is_empty());
    }

    #[test]
    fn enabled_phases_accumulate_and_count() {
        let p = Phases::enabled();
        p.add("run", Duration::from_millis(10));
        p.add("run", Duration::from_millis(5));
        p.add("run/flat", Duration::from_millis(3));
        let e = p.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].0, "run");
        assert_eq!(e[0].2, 2);
        assert!((e[0].1 - 0.015).abs() < 1e-9);
    }

    #[test]
    fn report_indents_children() {
        let p = Phases::enabled();
        p.add("run", Duration::from_millis(10));
        p.add("run/gamma", Duration::from_millis(4));
        let r = p.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("run "));
        assert!(lines[1].starts_with("  gamma"), "{r}");
        assert!(lines[0].contains("100.0%"));
    }

    #[test]
    fn report_indents_by_nesting_depth() {
        let p = Phases::enabled();
        p.add("run", Duration::from_millis(8));
        p.add("run/flat", Duration::from_millis(5));
        p.add("run/flat/delta", Duration::from_millis(2));
        let r = p.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("run "), "{r}");
        assert!(lines[1].starts_with("  flat"), "{r}");
        assert!(lines[2].starts_with("    delta"), "{r}");
        // Leaf labels drop the parent path prefix.
        assert!(!lines[2].contains("run/flat/delta"), "{r}");
    }

    #[test]
    fn percentages_split_across_top_level_phases_only() {
        let p = Phases::enabled();
        p.add("load", Duration::from_millis(25));
        p.add("run", Duration::from_millis(75));
        p.add("run/gamma", Duration::from_millis(75));
        let r = p.render();
        let lines: Vec<&str> = r.lines().collect();
        // Top-level shares are taken against the top-level sum (100 ms).
        assert!(lines[0].contains(" 25.0%"), "{r}");
        assert!(lines[1].contains(" 75.0%"), "{r}");
        // Children never get a percentage column, even at 100% of their
        // parent.
        assert!(!lines[2].contains('%'), "{r}");
    }

    #[test]
    fn disabled_phases_render_empty_and_skip_the_clock() {
        let p = Phases::disabled();
        assert!(!p.is_enabled());
        // The closure still runs (and its value is returned)...
        let mut ran = false;
        p.time("x", || ran = true);
        assert!(ran);
        // ...but nothing is recorded, so the report and JSON are empty.
        assert_eq!(p.render(), "");
        assert_eq!(p.to_json().to_string(), "[]");
    }

    #[test]
    fn time_measures_something() {
        let p = Phases::enabled();
        p.time("spin", || std::hint::black_box((0..1000).sum::<u64>()));
        let e = p.entries();
        assert_eq!(e[0].2, 1);
        assert!(e[0].1 >= 0.0);
    }

    #[test]
    fn json_has_name_secs_count() {
        let p = Phases::enabled();
        p.add("a", Duration::from_millis(1));
        let s = p.to_json().to_string();
        assert!(s.contains("\"name\":\"a\""));
        assert!(s.contains("\"count\":1"));
    }
}
