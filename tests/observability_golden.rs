//! Golden observability test — the telemetry counters for a fixed
//! workload are part of the repo's contract.
//!
//! Prim (Example 4, the paper's E1 complexity claim) runs on a
//! fixed-seed 64-node graph. Everything in the pipeline is
//! deterministic — the workload generator (in-tree xoshiro256**), the
//! greedy executor's sorted candidate handling, and the (R,Q,L)
//! structure — so every counter must come out *exactly* the same on
//! every run, on every machine. A drift in any of these numbers means
//! the executor's operational behaviour changed, which is precisely
//! what this test is here to catch.

use std::sync::Arc;

use gbc_core::GreedyConfig;
use gbc_greedy::{prim, workload};
use gbc_telemetry::{BufferTrace, Telemetry};

/// The fixed workload: 64 nodes, 192 extra edges, costs ≤ 1000, seed 42.
fn fixed_graph() -> gbc_greedy::graph::Graph {
    workload::connected_graph(64, 192, 1000, 42)
}

#[test]
fn prim_counters_are_golden() {
    let g = fixed_graph();
    let (compiled, edb) = prim::prepared(&g, 0);
    let tel = Telemetry::enabled();
    let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
    let snap = &run.snapshot;

    // Structural facts first: a spanning tree of 64 nodes has 63 edges,
    // and the γ operator commits exactly one stage per tree edge
    // (Section 3's tuple ↔ stage bijection; the exit fact is ground and
    // loads with the program, so it is not a γ commit).
    assert_eq!(prim::decode(&run).len(), 63);
    assert_eq!(snap.gamma_steps, 63, "γ steps = n − 1");
    assert_eq!(run.stats.gamma_steps, 63);

    // The golden numbers. Hard-coded from the first recorded run;
    // byte-for-byte stable because every stage of the pipeline is
    // deterministic. If a legitimate executor change moves them, update
    // them *in the same commit* and say why in the message.
    assert_eq!(snap.heap_inserts, GOLDEN_HEAP_INSERTS);
    assert_eq!(snap.heap_replaces, GOLDEN_HEAP_REPLACES);
    assert_eq!(snap.heap_pops, GOLDEN_HEAP_POPS);
    assert_eq!(snap.discarded_pops, GOLDEN_DISCARDED_POPS);
    assert_eq!(snap.congruence_replacements, GOLDEN_CONGRUENCE_REPLACEMENTS);
    assert_eq!(snap.rql_dominated, GOLDEN_RQL_DOMINATED);
    assert_eq!(snap.rql_used_blocked, GOLDEN_RQL_USED_BLOCKED);
    assert_eq!(snap.queue_peak, GOLDEN_QUEUE_PEAK);
    assert_eq!(snap.tuples_derived, GOLDEN_TUPLES_DERIVED);

    // E1's machine-independent bound: heap operations stay within a
    // small constant of e·log₂e.
    let e = g.num_edges() as f64;
    let ratio = snap.heap_ops() as f64 / (e * e.log2());
    assert!(ratio < 3.0, "heap ops per e·lg e must stay O(1), got {ratio}");
}

// One queued representative per r-congruence class means exactly one
// pop per committed stage: 63 pops, zero discards — the paper's "no
// wasted pops" property, checked to the tuple.
const GOLDEN_HEAP_INSERTS: u64 = 63;
const GOLDEN_HEAP_REPLACES: u64 = 93;
const GOLDEN_HEAP_POPS: u64 = 63;
const GOLDEN_DISCARDED_POPS: u64 = 0;
const GOLDEN_CONGRUENCE_REPLACEMENTS: u64 = 93;
const GOLDEN_RQL_DOMINATED: u64 = 99;
const GOLDEN_RQL_USED_BLOCKED: u64 = 244;
const GOLDEN_QUEUE_PEAK: u64 = 45;
const GOLDEN_TUPLES_DERIVED: u64 = 510;

/// E2 (sorting, Example 5) pinned alongside Prim: a fixed-seed item
/// list must produce exactly these counters. Sorting exercises the
/// γ/(R,Q,L) path with *no* flat rules, so this golden pins the
/// executor loop itself (feed, pop, commit) where the Prim golden
/// mostly pins seminaive + congruence behaviour.
#[test]
fn sort_counters_are_golden() {
    let items = gbc_greedy::workload::random_items(256, 42);
    let compiled = gbc_greedy::sorting::compiled();
    let edb = gbc_greedy::sorting::edb(&items);
    let tel = Telemetry::enabled();
    let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
    let snap = &run.snapshot;

    // One γ commit per item: the tuple ↔ stage bijection of Section 3.
    assert_eq!(snap.gamma_steps, 256, "γ steps = n");
    // Every item is its own congruence class (the key is the whole
    // row), so the heap sees exactly one insert and one pop per item —
    // heap-sort, operation for operation.
    assert_eq!(snap.heap_inserts, GOLDEN_SORT_HEAP_INSERTS);
    assert_eq!(snap.heap_replaces, GOLDEN_SORT_HEAP_REPLACES);
    assert_eq!(snap.heap_pops, GOLDEN_SORT_HEAP_POPS);
    assert_eq!(snap.discarded_pops, GOLDEN_SORT_DISCARDED_POPS);
    assert_eq!(snap.queue_peak, GOLDEN_SORT_QUEUE_PEAK);
    assert_eq!(snap.tuples_derived, GOLDEN_SORT_TUPLES_DERIVED);
}

const GOLDEN_SORT_HEAP_INSERTS: u64 = 256;
const GOLDEN_SORT_HEAP_REPLACES: u64 = 0;
const GOLDEN_SORT_HEAP_POPS: u64 = 256;
const GOLDEN_SORT_DISCARDED_POPS: u64 = 0;
const GOLDEN_SORT_QUEUE_PEAK: u64 = 256;
const GOLDEN_SORT_TUPLES_DERIVED: u64 = 0;

/// Two identical runs produce byte-identical counter reports and
/// byte-identical traces.
#[test]
fn observability_is_deterministic_across_runs() {
    let mut reports = Vec::new();
    let mut traces = Vec::new();
    for _ in 0..2 {
        let g = fixed_graph();
        let (compiled, edb) = prim::prepared(&g, 0);
        let buf = Arc::new(BufferTrace::new());
        let tel = Telemetry::enabled().with_trace(buf.clone());
        let run = compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), &tel).unwrap();
        // The counters section of the JSON report (phase timings are
        // wall-clock and excluded by construction here).
        reports.push(run.snapshot.to_json().pretty());
        traces.push(buf.lines().join("\n"));
    }
    assert_eq!(reports[0], reports[1], "counter JSON must be byte-identical");
    assert_eq!(traces[0], traces[1], "trace must be byte-identical");
    assert!(traces[0].contains("γ stage"), "trace shows stage commits");
}
