//! Timing and scaling-fit utilities: single-shot timers, a
//! warmup + median-of-k repetition harness (the in-tree replacement for
//! criterion), and log-log scaling fits.

use std::time::Instant;

/// One measurement: problem size and elapsed seconds.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Problem size (n, e, …).
    pub size: u64,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// Time one execution of `f`, returning `(result, seconds)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The repetition harness: `warmup` unmeasured runs, then `reps` timed
/// runs reported as their median.
///
/// The median is robust against the one-off outliers (allocator warmup,
/// scheduler preemption) that make min/mean noisy on shared machines,
/// which is all the statistical machinery these tables need.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    /// Unmeasured warmup executions before timing starts.
    pub warmup: usize,
    /// Timed repetitions; the median is reported. Must be ≥ 1.
    pub reps: usize,
}

/// The result of a [`Harness::run`]: the last value `f` produced plus
/// the timing distribution.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Median of the timed repetitions, seconds.
    pub median_secs: f64,
    /// Fastest repetition, seconds.
    pub min_secs: f64,
    /// Slowest repetition, seconds.
    pub max_secs: f64,
}

impl Harness {
    /// The default harness: 1 warmup run, median of 5.
    pub fn new() -> Harness {
        Harness { warmup: 1, reps: 5 }
    }

    /// A reduced harness for `--quick` sweeps: no warmup, median of 3.
    pub fn quick() -> Harness {
        Harness { warmup: 0, reps: 3 }
    }

    /// Run `f` under the harness, returning its last result and the
    /// timing distribution over the measured repetitions.
    pub fn run<T>(&self, mut f: impl FnMut() -> T) -> (T, Timing) {
        assert!(self.reps >= 1, "harness needs at least one repetition");
        for _ in 0..self.warmup {
            f();
        }
        let mut times = Vec::with_capacity(self.reps);
        let mut out = None;
        for _ in 0..self.reps {
            let (v, secs) = time_once(&mut f);
            out = Some(v);
            times.push(secs);
        }
        times.sort_by(f64::total_cmp);
        let timing = Timing {
            median_secs: times[times.len() / 2],
            min_secs: times[0],
            max_secs: times[times.len() - 1],
        };
        (out.expect("reps >= 1"), timing)
    }
}

impl Default for Harness {
    fn default() -> Harness {
        Harness::new()
    }
}

/// Least-squares slope of `log(time)` against `log(size)` — the
/// empirical scaling exponent. `O(n)` ⇒ ≈1, `O(n log n)` ⇒ slightly
/// above 1, `O(n²)` ⇒ ≈2.
pub fn fit_exponent(samples: &[Sample]) -> f64 {
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.secs > 0.0 && s.size > 0)
        .map(|s| ((s.size as f64).ln(), s.secs.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(f: impl Fn(f64) -> f64) -> Vec<Sample> {
        [1024u64, 4096, 16384, 65536]
            .iter()
            .map(|&size| Sample { size, secs: f(size as f64) })
            .collect()
    }

    #[test]
    fn linear_fits_to_one() {
        let e = fit_exponent(&samples(|n| 3e-6 * n));
        assert!((e - 1.0).abs() < 0.01, "{e}");
    }

    #[test]
    fn quadratic_fits_to_two() {
        let e = fit_exponent(&samples(|n| 1e-9 * n * n));
        assert!((e - 2.0).abs() < 0.01, "{e}");
    }

    #[test]
    fn nlogn_fits_between() {
        let e = fit_exponent(&samples(|n| 1e-7 * n * n.ln()));
        assert!(e > 1.05 && e < 1.25, "{e}");
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(fit_exponent(&[]).is_nan());
        assert!(fit_exponent(&[Sample { size: 8, secs: 1.0 }]).is_nan());
    }

    #[test]
    fn time_once_returns_the_value() {
        let (v, secs) = time_once(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn harness_runs_warmup_plus_reps_and_reports_median() {
        let mut calls = 0u32;
        let h = Harness { warmup: 2, reps: 5 };
        let (last, timing) = h.run(|| {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7, "2 warmup + 5 measured");
        assert_eq!(last, 7);
        assert!(timing.min_secs <= timing.median_secs);
        assert!(timing.median_secs <= timing.max_secs);
    }

    #[test]
    fn quick_harness_skips_warmup() {
        let mut calls = 0u32;
        let (_, _) = Harness::quick().run(|| calls += 1);
        assert_eq!(calls, 3);
    }
}
