//! Hash indices on column subsets of a columnar relation.

use crate::fx::FxHashMap;
use crate::relation::RowsView;

/// A hash index mapping the projection of a row onto `key_cols` to the
/// list of matching **row ids** — positions in the owning relation's
/// insertion-ordered arena. Keys are dictionary ids, so a probe is a
/// hash of a few `u32`s and key equality is branch-light integer
/// comparison — no value hashing or deep compares on the join path.
/// Storing `u32` ids instead of cloned rows keeps an index at four
/// bytes per entry and makes it valid across `Relation::clone()` (the
/// arena is copied verbatim, so ids keep pointing at the same rows).
/// Built once per (relation, column-set) pair on first use and
/// maintained incrementally as the relation grows — the "availability
/// of indices" assumption of the paper's Section 6 cost model.
#[derive(Clone, Debug)]
pub struct Index {
    key_cols: Vec<usize>,
    map: FxHashMap<Vec<u32>, Vec<u32>>,
}

impl Index {
    /// Build an index over an arena view keyed on `key_cols`. Row ids
    /// are the positions in `rows`.
    pub fn build(key_cols: Vec<usize>, rows: RowsView<'_>) -> Index {
        let mut idx = Index { key_cols, map: FxHashMap::default() };
        for id in 0..rows.len() {
            let key = idx.key_cols.iter().map(|&c| rows.cell(id, c)).collect();
            idx.map.entry(key).or_default().push(id as u32);
        }
        idx
    }

    /// The indexed columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Add an encoded row with its arena position (called by the
    /// owning relation on insert).
    pub fn insert_row(&mut self, row: &[u32], id: u32) {
        let key = self.key_cols.iter().map(|&c| row[c]).collect();
        self.map.entry(key).or_default().push(id);
    }

    /// Ids of rows whose projection equals the encoded `key`, in
    /// insertion order.
    pub fn get(&self, key: &[u32]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary;
    use crate::relation::ColumnBuf;
    use gbc_ast::Value;

    fn id(v: i64) -> u32 {
        dictionary::encode(&Value::int(v))
    }

    fn buf(rows: &[&[i64]]) -> ColumnBuf {
        let mut b = ColumnBuf::new();
        for r in rows {
            let ids: Vec<u32> = r.iter().map(|&v| id(v)).collect();
            b.push_ids(&ids);
        }
        b
    }

    #[test]
    fn lookup_by_single_column() {
        let rows = buf(&[&[1, 10], &[1, 20], &[2, 30]]);
        let idx = Index::build(vec![0], rows.view());
        assert_eq!(idx.get(&[id(1)]), &[0, 1]);
        assert_eq!(idx.get(&[id(2)]), &[2]);
        assert_eq!(idx.get(&[id(9)]), &[] as &[u32]);
    }

    #[test]
    fn lookup_by_multiple_columns_respects_order() {
        let rows = buf(&[&[1, 2, 3], &[2, 1, 4]]);
        let idx = Index::build(vec![1, 0], rows.view());
        // Key is (col1, col0).
        assert_eq!(idx.get(&[id(2), id(1)]), &[0]);
        assert_eq!(idx.get(&[id(1), id(2)]), &[1]);
    }

    #[test]
    fn incremental_insert_extends_the_index() {
        let mut idx = Index::build(vec![0], ColumnBuf::new().view());
        assert_eq!(idx.num_keys(), 0);
        idx.insert_row(&[id(5), id(1)], 0);
        idx.insert_row(&[id(5), id(2)], 1);
        assert_eq!(idx.get(&[id(5)]), &[0, 1]);
        assert_eq!(idx.num_keys(), 1);
    }
}
