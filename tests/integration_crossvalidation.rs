//! Cross-validation of every declarative algorithm against its
//! procedural baseline, including seeded sweeps over random workloads.
//!
//! Seeded-loop style: random cases come from the in-tree deterministic
//! PRNG, so every failure reproduces exactly.

use gbc_baselines::huffman::{huffman_tree, weighted_path_length as wpl_base};
use gbc_baselines::kruskal::kruskal_mst;
use gbc_baselines::matching::{greedy_matching, is_matching, is_maximal};
use gbc_baselines::prim::prim_mst;
use gbc_baselines::total_cost;
use gbc_baselines::tsp::{greedy_chain, is_hamiltonian_path};
use gbc_greedy::{huffman, kruskal, matching, prim, sorting, spanning, tsp, workload};
use gbc_telemetry::rng::Rng;

#[test]
fn prim_equals_kruskal_equals_baselines_on_a_sweep() {
    for seed in 0..8 {
        let n = 10 + (seed as usize % 5) * 7;
        let g = workload::connected_graph(n, 2 * n, 500, seed);
        let decl_prim = prim::run_greedy(&g, 0).unwrap();
        let decl_kruskal = kruskal::run_stage_views(&g);
        let base_prim = prim_mst(g.n, &g.edges, 0);
        let base_kruskal = kruskal_mst(g.n, &g.edges);
        let costs = [
            total_cost(&decl_prim),
            total_cost(&decl_kruskal.tree),
            total_cost(&base_prim),
            total_cost(&base_kruskal),
        ];
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {costs:?}");
    }
}

/// MST optimality: declarative Prim matches union-find Kruskal on
/// arbitrary connected graphs.
#[test]
fn prop_prim_is_optimal() {
    let mut rng = Rng::new(0x5EED_0010);
    for case in 0..16 {
        let n = 3 + rng.below_usize(13);
        let extra = rng.below_usize(24);
        let seed = rng.below(1000);
        let g = workload::connected_graph(n, extra, 50, seed);
        let decl = prim::run_greedy(&g, 0).unwrap();
        assert_eq!(decl.len(), g.n - 1, "case {case}");
        let base = kruskal_mst(g.n, &g.edges);
        assert_eq!(total_cost(&decl), total_cost(&base), "case {case}");
    }
}

/// Sorting: the declarative ranks are a sorted permutation.
#[test]
fn prop_sorting_is_a_sorted_permutation() {
    let mut rng = Rng::new(0x5EED_0011);
    for case in 0..16 {
        let n = rng.below_usize(64);
        let seed = rng.below(1000);
        let items = workload::random_items(n, seed);
        let sorted = sorting::run_greedy(&items).unwrap();
        assert_eq!(sorted.len(), n, "case {case}");
        // Ranks are exactly 1..=n in order; costs ascend.
        for (k, &(_, c, i)) in sorted.iter().enumerate() {
            assert_eq!(i, k as i64 + 1, "case {case}");
            if k > 0 {
                assert!(sorted[k - 1].1 <= c, "case {case}");
            }
        }
        // The multiset of ids is preserved.
        let mut ids: Vec<i64> = sorted.iter().map(|&(x, _, _)| x).collect();
        ids.sort_unstable();
        let mut expected: Vec<i64> = items.iter().map(|&(x, _)| x).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected, "case {case}");
    }
}

/// Matching: declarative output is a maximal matching identical to the
/// baseline (workload costs are unique).
#[test]
fn prop_matching_is_maximal_and_matches_baseline() {
    let mut rng = Rng::new(0x5EED_0012);
    for case in 0..16 {
        let n = 4 + rng.below_usize(16);
        let m_frac = 1 + rng.below_usize(3);
        let seed = rng.below(1000);
        let m = (n * m_frac).min(n * (n - 1) / 2);
        let g = workload::random_arcs(n, m.max(1), seed);
        let mut decl = matching::run_greedy(&g).unwrap();
        assert!(is_matching(&decl), "case {case}");
        assert!(is_maximal(g.n, &g.edges, &decl), "case {case}");
        let mut base = greedy_matching(g.n, &g.edges);
        decl.sort_unstable();
        base.sort_unstable();
        assert_eq!(decl, base, "case {case}");
    }
}

/// Huffman: equal weighted path length to the classical optimum.
#[test]
fn prop_huffman_wpl_is_optimal() {
    let mut rng = Rng::new(0x5EED_0013);
    for case in 0..16 {
        let k = 2 + rng.below_usize(8);
        let seed = rng.below(1000);
        let w = workload::letter_freqs(k, seed);
        let run = huffman::run_greedy(&w).unwrap();
        let decl = huffman::weighted_path_length(&run, &w).unwrap();
        let base = huffman_tree(&w).map(|t| wpl_base(&t, &w)).unwrap();
        assert_eq!(decl, base, "case {case}");
    }
}

/// TSP: the declarative chain is Hamiltonian with the same cost as the
/// procedural greedy chain.
#[test]
fn prop_tsp_chain_is_hamiltonian() {
    let mut rng = Rng::new(0x5EED_0014);
    for case in 0..16 {
        let n = 3 + rng.below_usize(7);
        let seed = rng.below(1000);
        let g = workload::complete_geometric(n, seed);
        let decl = tsp::run_greedy(&g).unwrap();
        assert!(is_hamiltonian_path(g.n, &decl), "case {case}");
        let base = greedy_chain(g.n, &g.edges);
        assert_eq!(total_cost(&decl), total_cost(&base), "case {case}");
    }
}

/// Spanning trees: both evaluation styles always produce one.
#[test]
fn prop_spanning_trees_span() {
    let mut rng = Rng::new(0x5EED_0015);
    for case in 0..16 {
        let n = 2 + rng.below_usize(10);
        let extra = rng.below_usize(12);
        let seed = rng.below(1000);
        let g = workload::connected_graph(n, extra, 20, seed);
        let stage = spanning::run_stage(&g, 0).unwrap();
        assert!(spanning::is_spanning_tree(&g, 0, &stage), "case {case}");
        let choice = spanning::run_choice(&g, 0).unwrap();
        assert!(spanning::is_spanning_tree(&g, 0, &choice), "case {case}");
    }
}

/// The greedy executor and the generic fixpoint compute the same model
/// for deterministic (least-driven, unique-cost) programs.
#[test]
fn prop_greedy_equals_generic_on_sorting() {
    let mut rng = Rng::new(0x5EED_0016);
    for case in 0..16 {
        let n = rng.below_usize(24);
        let seed = rng.below(1000);
        let items = workload::random_items(n, seed);
        assert_eq!(
            sorting::run_greedy(&items).unwrap(),
            sorting::run_generic(&items).unwrap(),
            "case {case}"
        );
    }
}
