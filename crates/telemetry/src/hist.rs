//! Log-linear (HDR-style) latency histograms.
//!
//! A [`Histogram`] records `u64` values (nanoseconds, item counts, …)
//! into buckets whose width grows with magnitude: values below
//! `2^bits` land in exact unit buckets, and each octave above is split
//! into `2^bits` sub-buckets, so every recorded value is reproduced to
//! a relative error of at most `2^-bits` at any scale. That bound is
//! what makes the quantile columns of the serve-load bench trustworthy
//! without storing raw samples.
//!
//! The representation is **mergeable**: two histograms with the same
//! precision share one bucket boundary grid, so [`Histogram::merge`]
//! adds bucket counts and is exact — merging per-worker histograms at
//! the end of a load run loses nothing relative to recording every
//! sample into one shared (contended) histogram. Merge is associative
//! and commutative by construction, which lets the serve-load harness
//! combine per-session histograms in any order.
//!
//! No atomics: recording is single-writer per histogram. Concurrent
//! use is per-thread histograms merged after the fact — the cheap,
//! contention-free discipline the rest of the workspace follows.

use crate::json::Json;

/// Default sub-bucket precision: `2^-7` ≈ 0.8% worst-case relative
/// error, plenty for latency percentiles, with at most a few thousand
/// buckets across the full `u64` range.
pub const DEFAULT_BITS: u32 = 7;

/// A mergeable log-linear histogram over `u64` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Sub-bucket precision bits; relative error ≤ `2^-bits`.
    bits: u32,
    /// Bucket counts, grown on demand (index via [`bucket_index`]).
    counts: Vec<u64>,
    /// Total recorded values.
    count: u64,
    /// Sum of recorded values (for the mean; saturating).
    sum: u128,
    /// Exact smallest recorded value.
    min: u64,
    /// Exact largest recorded value.
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(DEFAULT_BITS)
    }
}

impl Histogram {
    /// An empty histogram with `bits` sub-bucket precision bits
    /// (clamped to `1..=16`).
    pub fn new(bits: u32) -> Histogram {
        let bits = bits.clamp(1, 16);
        Histogram { bits, counts: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The precision configuration. Only histograms with equal `bits`
    /// share a bucket grid and can merge.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Worst-case relative error of any reported quantile: `2^-bits`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.bits) as f64
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(value, self.bits);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value as u128 * n as u128);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of the recorded values (saturating at `u128::MAX`).
    /// Survives [`Histogram::merge`] exactly — merged sums add — which
    /// is what lets a mean be recomputed after any bucket merge.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`): an upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value, clamped to the exact
    /// observed extremes — so the result is within `2^-bits` relative
    /// error of the true order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx, self.bits).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Add every bucket of `other` into `self`. Exact: both histograms
    /// share the same boundary grid, so the result is identical to
    /// having recorded both value streams into one histogram — which
    /// is what makes merge associative and commutative.
    ///
    /// # Panics
    /// When the precision configurations differ (the grids would not
    /// line up); callers construct matching histograms by design.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bits, other.bits, "histogram precision mismatch: cannot merge");
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary as a JSON object: precision, count, exact sum and
    /// min/max, mean, and the standard latency percentiles. `sum` is
    /// what makes the mean recomputable after downstream bucket merges
    /// (merged counts and sums both add exactly); it saturates to
    /// `u64::MAX` in the unlikely event the u128 accumulator exceeds it.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bits", Json::UInt(self.bits as u64)),
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(u64::try_from(self.sum).unwrap_or(u64::MAX))),
            ("min", Json::UInt(self.min())),
            ("max", Json::UInt(self.max())),
            ("mean", Json::Float(self.mean())),
            ("p50", Json::UInt(self.p50())),
            ("p90", Json::UInt(self.p90())),
            ("p99", Json::UInt(self.p99())),
            ("p999", Json::UInt(self.p999())),
        ])
    }
}

/// Bucket index of `value` on the `bits`-precision grid. Values below
/// `2^bits` map to themselves (exact unit buckets); above, each octave
/// contributes `2^bits` sub-buckets.
fn bucket_index(value: u64, bits: u32) -> usize {
    let m = bits;
    if value < (1 << m) {
        return value as usize;
    }
    let e = 63 - value.leading_zeros();
    let region = (e - m + 1) as usize;
    let mantissa = ((value >> (e - m)) & ((1 << m) - 1)) as usize;
    (region << m) + mantissa
}

/// Largest value mapping to bucket `idx` — the reported representative.
fn bucket_upper(idx: usize, bits: u32) -> u64 {
    let m = bits;
    if idx < (1 << m) {
        return idx as u64;
    }
    let region = (idx >> m) as u32;
    let mantissa = (idx & ((1 << m) - 1)) as u64;
    let shift = region - 1;
    let lower = ((1u64 << m) + mantissa) << shift;
    lower + ((1u64 << shift) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn unit_buckets_are_exact_below_the_linear_threshold() {
        for bits in [1u32, 4, 7, 10] {
            let mut h = Histogram::new(bits);
            for v in 0..(1u64 << bits) {
                h.record(v);
            }
            // Every value below 2^bits has its own bucket: quantiles of
            // a single-value histogram reproduce the value exactly.
            for v in [0u64, 1, (1 << bits) - 1] {
                let mut one = Histogram::new(bits);
                one.record(v);
                assert_eq!(one.p50(), v, "bits {bits} value {v}");
                assert_eq!(one.p999(), v, "bits {bits} value {v}");
            }
            assert_eq!(h.count(), 1 << bits);
        }
    }

    #[test]
    fn quantile_error_stays_within_the_per_config_bound() {
        // Pin the promised bound per bucket config: any recorded value
        // is reported within a 2^-bits relative error at every scale.
        for bits in [2u32, 5, 7, 12] {
            let bound = 1.0 / (1u64 << bits) as f64;
            let mut h = Histogram::new(bits);
            assert_eq!(h.relative_error(), bound);
            let mut rng = Rng::new(0xB17 + bits as u64);
            for _ in 0..2_000 {
                let scale = rng.range_i64(0, 40) as u32;
                let v = (rng.next_u64() >> scale).max(1);
                h = Histogram::new(bits);
                h.record(v);
                let got = h.p50() as f64;
                let err = (got - v as f64).abs() / v as f64;
                assert!(err <= bound, "bits {bits}: value {v} reported {got}, err {err} > {bound}");
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_and_clamped_to_observed_extremes() {
        let mut h = Histogram::new(7);
        for v in [10u64, 20, 30, 40, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000_000);
        let qs: Vec<u64> =
            [0.0, 0.25, 0.5, 0.75, 0.99, 1.0].iter().map(|&q| h.quantile(q)).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert!(qs[0] >= 10 && qs[5] <= 1_000_000);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new(7);
        assert!(h.is_empty());
        assert_eq!((h.count(), h.min(), h.max(), h.p50(), h.p999()), (0, 0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_the_combined_stream() {
        // Seeded-loop contract: merge(a, b) is EXACT — its buckets, and
        // therefore its quantiles, equal the histogram of the combined
        // stream, not merely approximate it.
        let mut rng = Rng::new(42);
        for _ in 0..20 {
            let mut a = Histogram::new(7);
            let mut b = Histogram::new(7);
            let mut combined = Histogram::new(7);
            for i in 0..500 {
                let v = rng.next_u64() >> (rng.range_i64(0, 50) as u32);
                if i % 2 == 0 {
                    a.record(v);
                } else {
                    b.record(v);
                }
                combined.record(v);
            }
            let mut merged = a.clone();
            merged.merge(&b);
            assert_eq!(merged, combined, "bucket-level merge must be exact");
            for q in [0.5, 0.9, 0.99, 0.999] {
                assert_eq!(merged.quantile(q), combined.quantile(q));
            }
            // Sums add exactly under merge — the invariant that lets a
            // mean be recomputed from any downstream aggregate.
            assert_eq!(merged.sum(), a.sum() + b.sum());
            assert_eq!(merged.sum(), combined.sum());
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = Rng::new(7);
        let mut hs: Vec<Histogram> = (0..3)
            .map(|_| {
                let mut h = Histogram::new(6);
                for _ in 0..200 {
                    h.record(rng.next_u64() >> 32);
                }
                h
            })
            .collect();
        let (c, b, a) = (hs.pop().unwrap(), hs.pop().unwrap(), hs.pop().unwrap());
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "associativity");
        // b ∪ a == a ∪ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutativity");
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merging_different_precisions_panics() {
        let mut a = Histogram::new(5);
        a.merge(&Histogram::new(7));
    }

    #[test]
    fn json_summary_has_the_percentile_fields() {
        let mut h = Histogram::new(7);
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.to_json().to_string();
        for key in ["bits", "count", "sum", "min", "max", "mean", "p50", "p90", "p99", "p999"] {
            assert!(s.contains(&format!("\"{key}\":")), "{key} missing from {s}");
        }
        assert!(s.contains("\"count\":1000"));
        // sum = 1000·1001/2 · 1000 — exact, so the mean is recomputable
        // from the JSON alone: sum / count.
        assert!(s.contains("\"sum\":500500000"), "exact sum missing from {s}");
    }

    #[test]
    fn json_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new(7);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
        assert_eq!(h.to_json().get("sum").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new(7);
        let mut b = Histogram::new(7);
        a.record_n(12345, 7);
        for _ in 0..7 {
            b.record(12345);
        }
        assert_eq!(a, b);
    }
}
