//! A1 — ablation: the (R,Q,L) structure is what buys the asymptotics.
//!
//! The same stage-stratified programs run (a) on the greedy executor
//! with `D_r = (R, Q, L)` and (b) on the generic Choice Fixpoint, which
//! recomputes the full γ candidate set (a re-scan `least`) every step.
//! The paper's Section 6 claim is precisely that (a) reaches the
//! procedural bound while a naive fixpoint does not: (b) is quadratic
//! or worse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbc_greedy::{sorting, workload};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_rql_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[32usize, 64, 128, 256] {
        let items = workload::random_items(n, 42);
        let compiled = sorting::compiled();
        let edb = sorting::edb(&items);

        group.bench_with_input(BenchmarkId::new("rql_executor", n), &(), |b, ()| {
            b.iter(|| compiled.run_greedy(&edb).unwrap().stats.gamma_steps);
        });

        group.bench_with_input(BenchmarkId::new("generic_rescan", n), &(), |b, ()| {
            b.iter(|| compiled.run_generic(&edb).unwrap().stats.gamma_steps);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
