//! Structural contracts of the exported observability artefacts:
//!
//! * the `--trace-json` payload must be valid Chrome trace-event JSON
//!   (the object format Perfetto and `chrome://tracing` load): a
//!   `traceEvents` array whose entries carry `name`/`ph`/`ts`/`pid`/
//!   `tid`, instant-scope markers, and the typed payload under `args`;
//! * the `--profile` per-rule profiler must attribute at least 95% of
//!   the run phase's wall-clock time to rules on a non-trivial
//!   workload — anything less means an executor code path is escaping
//!   attribution.

use std::sync::Arc;

use gbc_core::GreedyConfig;
use gbc_greedy::{prim, workload};
use gbc_telemetry::{ChromeTrace, Json, Telemetry};

fn traced_prim_run(tel: &Telemetry, n: usize) {
    let g = workload::connected_graph(n, n * 3, 1000, 42);
    let (compiled, edb) = prim::prepared(&g, 0);
    compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), tel).unwrap();
}

/// Look up a field of a JSON object by key.
fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn chrome_trace_has_the_trace_event_shape() {
    let chrome = Arc::new(ChromeTrace::new());
    let tel = Telemetry::enabled().with_trace(chrome.clone());
    traced_prim_run(&tel, 64);

    let file = chrome.to_json();
    let events = match field(&file, "traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "a 64-node Prim run must emit events");
    assert!(
        matches!(field(&file, "displayTimeUnit"), Some(Json::Str(u)) if u == "ms"),
        "displayTimeUnit hint missing"
    );

    let mut last_ts = 0u64;
    for ev in events {
        // Mandatory trace-event fields, with the types the viewers expect.
        assert!(matches!(field(ev, "name"), Some(Json::Str(n)) if !n.is_empty()));
        assert!(matches!(field(ev, "ph"), Some(Json::Str(ph)) if ph == "i"));
        assert!(matches!(field(ev, "pid"), Some(Json::UInt(_))));
        assert!(matches!(field(ev, "tid"), Some(Json::UInt(_))));
        assert!(matches!(field(ev, "s"), Some(Json::Str(s)) if s == "t"));
        let Some(Json::UInt(ts)) = field(ev, "ts") else {
            panic!("ts must be an unsigned microsecond count")
        };
        assert!(*ts >= last_ts, "timestamps must be monotone");
        last_ts = *ts;
        // The typed payload rides in args, tagged like the journal.
        let args = field(ev, "args").expect("args payload");
        assert!(matches!(field(args, "type"), Some(Json::Str(_))));
    }
    // The γ loop's signature events are all present.
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| match field(e, "name") {
            Some(Json::Str(n)) => Some(n.clone()),
            _ => None,
        })
        .collect();
    for expected in ["flat_round", "stage_commit", "choice_audit", "rule_fired"] {
        assert!(names.iter().any(|n| n == expected), "missing event kind `{expected}`");
    }
}

#[test]
fn profiler_attributes_nearly_all_run_time() {
    // A 256-node graph: large enough that per-rule join work dominates
    // the executor's fixed per-round bookkeeping.
    let tel = Telemetry::enabled().with_profiler();
    traced_prim_run(&tel, 256);

    let attributed = tel.profiler.total_secs();
    let run_secs = tel
        .phases
        .entries()
        .iter()
        .find(|(name, _, _)| name == "run")
        .map(|(_, secs, _)| *secs)
        .expect("run phase timed");
    assert!(run_secs > 0.0);
    let coverage = attributed / run_secs;
    assert!(
        coverage >= 0.95,
        "profiler must attribute ≥95% of run time, got {:.1}% ({attributed:.6}s of {run_secs:.6}s)",
        coverage * 100.0
    );
    assert!(coverage <= 1.02, "attributed time cannot exceed the run phase, got {coverage}");
}
