//! In-tree scoped worker pool for parallel flat-rule evaluation.
//!
//! The workspace has a zero-registry-dependency policy, so this is a
//! plain `std::thread::scope` fan-out rather than rayon: a
//! [`WorkerPool`] is just a thread count, and [`WorkerPool::run`]
//! spawns that many scoped workers which pull task indices from a
//! shared atomic counter (work stealing over a fixed task list) and
//! deposit results into per-task slots. The scope joins every worker
//! before returning, so tasks may freely borrow the caller's stack —
//! in particular the `&Database` the seminaive round reads.
//!
//! Determinism contract: results come back **in task order**, no matter
//! which worker ran which task or in what interleaving. Callers
//! partition work into contiguous chunks ([`WorkerPool::chunk_ranges`])
//! and concatenate the returned buffers, which reproduces the serial
//! enumeration order byte for byte (see DESIGN.md §9).
//!
//! γ-steps, choice commits and `(R,Q,L)` heap maintenance never enter
//! the pool — only the side-effect-free enumeration half of a
//! saturation round does; all inserts happen on the calling thread
//! after the merge.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use gbc_telemetry::{Histogram, RuleProfiler, TraceEvent, TraceSink};

/// The smallest slice of delta rows (or first-scan ids) worth handing
/// to a worker. Rounds below `2 * MIN_CHUNK` run inline on the calling
/// thread: the typical alternation round between γ-steps derives a
/// handful of tuples, and a thread round-trip costs more than the join
/// itself. The threshold only gates *where* work runs — results are
/// identical either way.
pub const MIN_CHUNK: usize = 64;

/// An upper bound on chunks per round, as a multiple of the thread
/// count — enough slack for work stealing to even out skewed chunks
/// without drowning the merge in tiny buffers.
const CHUNKS_PER_THREAD: usize = 4;

/// Resolve the thread count the CLI default asks for: the `GBC_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("GBC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Per-worker occupancy counters, updated with relaxed atomics from the
/// worker thread itself (single writer per lane — the atomics only make
/// the cross-thread read at report time sound).
#[derive(Debug, Default)]
pub struct LaneStats {
    /// Nanoseconds spent executing tasks.
    busy_nanos: AtomicU64,
    /// Nanoseconds inside the pool but not executing (queue contention,
    /// waiting for the scope to wind down).
    idle_nanos: AtomicU64,
    /// Tasks this lane executed.
    tasks: AtomicU64,
    /// Tasks claimed outside the lane's fair contiguous share — the
    /// work-stealing traffic that evens out skewed chunks.
    steals: AtomicU64,
}

/// Shared accumulator for pool-level observability: per-worker lanes,
/// the serial merge cost, and a histogram of chunk sizes. One instance
/// lives for a whole run and is attached to the saturation driver; the
/// CLI snapshots it via [`PoolStats::report`] at the end.
#[derive(Debug)]
pub struct PoolStats {
    lanes: Vec<LaneStats>,
    merge_nanos: AtomicU64,
    chunk_items: Mutex<Histogram>,
}

impl PoolStats {
    /// Fresh counters for a pool of `threads` workers.
    pub fn new(threads: usize) -> PoolStats {
        PoolStats {
            lanes: (0..threads.max(1)).map(|_| LaneStats::default()).collect(),
            merge_nanos: AtomicU64::new(0),
            chunk_items: Mutex::new(Histogram::default()),
        }
    }

    /// Charge serial merge time (concatenating worker buffers on the
    /// calling thread).
    pub fn record_merge(&self, nanos: u64) {
        self.merge_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record the size of one fanned-out chunk.
    pub fn record_chunk(&self, items: u64) {
        self.chunk_items.lock().expect("pool stats lock").record(items);
    }

    /// A plain snapshot of everything recorded so far.
    pub fn report(&self) -> PoolReport {
        PoolReport {
            workers: self
                .lanes
                .iter()
                .map(|l| LaneReport {
                    busy_nanos: l.busy_nanos.load(Ordering::Relaxed),
                    idle_nanos: l.idle_nanos.load(Ordering::Relaxed),
                    tasks: l.tasks.load(Ordering::Relaxed),
                    steals: l.steals.load(Ordering::Relaxed),
                })
                .collect(),
            merge_nanos: self.merge_nanos.load(Ordering::Relaxed),
            chunks: self.chunk_items.lock().expect("pool stats lock").clone(),
        }
    }
}

/// Observability hooks carried into a parallel fan-out: the per-rule
/// profiler's lane clocks, the pool occupancy accumulator, and the
/// trace sink (tagged with the id of the rule being fanned out, so
/// chunk events land on the right rule). All optional and borrowed —
/// `FanoutObs::default()` is the "no observers" case and costs nothing.
#[derive(Clone, Copy, Default)]
pub struct FanoutObs<'a> {
    /// Per-rule profiler; fan-outs charge each chunk's wall time to the
    /// executing worker's lane.
    pub profiler: Option<&'a RuleProfiler>,
    /// Pool occupancy accumulator ([`PoolStats`]); fan-outs record
    /// chunk sizes and per-lane busy/idle time into it.
    pub stats: Option<&'a PoolStats>,
    /// Trace sink plus the rule id chunk events are attributed to.
    pub trace: Option<(&'a dyn TraceSink, usize)>,
}

impl<'a> FanoutObs<'a> {
    /// Emit one `worker_chunk` trace event, when a sink is attached.
    pub fn chunk_event(&self, worker: usize, items: u64, dur_us: u64) {
        if let Some((sink, rule)) = self.trace {
            sink.event(&TraceEvent::WorkerChunk { worker, rule, items, dur_us });
        }
    }
}

/// Snapshot of one worker lane (see [`PoolStats::report`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneReport {
    /// Nanoseconds the lane spent executing tasks.
    pub busy_nanos: u64,
    /// Nanoseconds the lane spent in the pool without a task.
    pub idle_nanos: u64,
    /// Tasks the lane executed.
    pub tasks: u64,
    /// Tasks the lane claimed outside its fair contiguous share.
    pub steals: u64,
}

/// Snapshot of a run's pool activity.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// One entry per worker lane.
    pub workers: Vec<LaneReport>,
    /// Serial merge time on the calling thread, in nanoseconds.
    pub merge_nanos: u64,
    /// Distribution of fanned-out chunk sizes (delta rows per chunk).
    pub chunks: Histogram,
}

impl PoolReport {
    /// Total busy time across lanes, in seconds.
    pub fn busy_secs(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_nanos).sum::<u64>() as f64 / 1e9
    }

    /// Mean busy fraction across lanes that saw any pool time.
    pub fn utilization(&self) -> f64 {
        let (mut busy, mut total) = (0u64, 0u64);
        for w in &self.workers {
            busy += w.busy_nanos;
            total += w.busy_nanos + w.idle_nanos;
        }
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }
}

/// A fixed-width scoped worker pool. Copyable configuration — threads
/// are spawned per [`WorkerPool::run`] call (and only for rounds big
/// enough to cross [`MIN_CHUNK`]), living exactly as long as the
/// borrowed data they read.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool { threads: threads.max(1) }
    }

    /// The single-threaded pool: every `run` executes inline.
    pub fn serial() -> WorkerPool {
        WorkerPool { threads: 1 }
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Would this pool ever fan out?
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Partition `len` items into contiguous `(start, end)` ranges.
    /// Returns a single full range when the pool is serial or `len` is
    /// below the parallel threshold; otherwise up to
    /// `threads * CHUNKS_PER_THREAD` ranges of at least [`MIN_CHUNK`]
    /// items. Concatenating the ranges always re-yields `0..len` in
    /// order.
    pub fn chunk_ranges(&self, len: usize) -> Vec<(usize, usize)> {
        if !self.is_parallel() || len < 2 * MIN_CHUNK {
            return if len == 0 { Vec::new() } else { vec![(0, len)] };
        }
        let max_chunks = self.threads * CHUNKS_PER_THREAD;
        let n_chunks = len.div_ceil(MIN_CHUNK).min(max_chunks).max(1);
        let chunk = len.div_ceil(n_chunks);
        (0..n_chunks)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(len)))
            .filter(|(lo, hi)| lo < hi)
            .collect()
    }

    /// Run `n_tasks` tasks across the pool and return their results in
    /// task order. `task(index, worker)` receives the task index and
    /// the id (0-based) of the worker executing it; it must not rely on
    /// which worker that is. Runs inline, in order, on the calling
    /// thread when the pool is serial or there is at most one task.
    /// Worker panics propagate to the caller when the scope joins.
    pub fn run<T, F>(&self, n_tasks: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        self.run_stats(n_tasks, None, task)
    }

    /// [`WorkerPool::run`] with per-lane occupancy accounting. When
    /// `stats` is given, every worker charges its busy/idle time, task
    /// count and steal count to its lane. A *steal* is a task index
    /// outside the worker's fair contiguous share of `0..n_tasks` —
    /// with the shared-counter queue that means the worker outran its
    /// proportional allotment and is draining a slower lane's work.
    /// Identical results to `run` in every other respect.
    pub fn run_stats<T, F>(&self, n_tasks: usize, stats: Option<&PoolStats>, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if !self.is_parallel() || n_tasks <= 1 {
            return (0..n_tasks)
                .map(|i| {
                    let t0 = stats.map(|_| Instant::now());
                    let out = task(i, 0);
                    if let (Some(stats), Some(t0)) = (stats, t0) {
                        if let Some(lane) = stats.lanes.first() {
                            lane.busy_nanos
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            lane.tasks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    out
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n_tasks);
        // Fair contiguous share per worker, for steal attribution.
        let share = n_tasks.div_ceil(workers);
        let t_fanout = stats.map(|_| Instant::now());
        std::thread::scope(|s| {
            let (next, slots, task) = (&next, &slots, &task);
            for w in 0..workers {
                let lane = stats.and_then(|st| st.lanes.get(w));
                s.spawn(move || {
                    let entered = Instant::now();
                    let mut busy = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        let t0 = Instant::now();
                        let out = task(i, w);
                        *slots[i].lock().expect("pool slot lock") = Some(out);
                        if let Some(lane) = lane {
                            let nanos = t0.elapsed().as_nanos() as u64;
                            busy += nanos;
                            lane.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
                            lane.tasks.fetch_add(1, Ordering::Relaxed);
                            if i / share != w {
                                lane.steals.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    if let Some(lane) = lane {
                        let lifetime = entered.elapsed().as_nanos() as u64;
                        lane.idle_nanos.fetch_add(lifetime.saturating_sub(busy), Ordering::Relaxed);
                    }
                });
            }
        });
        // Coarse fan-outs (fewer tasks than threads — e.g. one task per
        // stage clique) spawn only `workers` lanes; the remaining lanes
        // sat out the whole fan-out. Charge them the fan-out's wall
        // time as idle so the utilization table reports occupancy over
        // the pool's configured width, not just the lanes that ran.
        if let (Some(st), Some(t0)) = (stats, t_fanout) {
            let wall = t0.elapsed().as_nanos() as u64;
            for lane in st.lanes.iter().skip(workers) {
                lane.idle_nanos.fetch_add(wall, Ordering::Relaxed);
            }
        }
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("pool slot lock").expect("every task index is claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = WorkerPool::serial();
        let order = Mutex::new(Vec::new());
        let out = pool.run(5, |i, w| {
            assert_eq!(w, 0);
            order.lock().unwrap().push(i);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_pool_returns_results_in_task_order() {
        let pool = WorkerPool::new(4);
        for _ in 0..16 {
            let out = pool.run(37, |i, _| i as u64 * 3);
            assert_eq!(out, (0..37u64).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_in_order() {
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            for len in [0usize, 1, 63, 64, 127, 128, 129, 1000, 4096, 100_000] {
                let ranges = pool.chunk_ranges(len);
                let mut pos = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, pos, "gapless at len {len} threads {threads}");
                    assert!(hi > lo);
                    pos = hi;
                }
                assert_eq!(pos, len, "covering at len {len} threads {threads}");
            }
        }
    }

    #[test]
    fn small_rounds_stay_single_chunk() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.chunk_ranges(2 * MIN_CHUNK - 1).len(), 1);
        assert!(pool.chunk_ranges(2 * MIN_CHUNK).len() > 1);
        // Serial pools never split, no matter the size.
        assert_eq!(WorkerPool::serial().chunk_ranges(1_000_000).len(), 1);
    }

    #[test]
    fn workers_share_borrowed_data() {
        let data: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::new(4);
        let ranges = pool.chunk_ranges(data.len());
        let sums = pool.run(ranges.len(), |ci, _| {
            let (lo, hi) = ranges[ci];
            data[lo..hi].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn run_stats_accounts_every_task_to_a_lane() {
        let pool = WorkerPool::new(4);
        let stats = PoolStats::new(pool.threads());
        let out = pool.run_stats(40, Some(&stats), |i, _| {
            // Make the tasks non-trivially long so busy time registers.
            (0..1000u64).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        assert_eq!(out.len(), 40);
        let report = stats.report();
        assert_eq!(report.workers.len(), 4);
        assert_eq!(report.workers.iter().map(|w| w.tasks).sum::<u64>(), 40);
        assert!(report.workers.iter().map(|w| w.busy_nanos).sum::<u64>() > 0);
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
    }

    #[test]
    fn coarse_fanouts_charge_idle_to_unspawned_lanes() {
        // 2 tasks on a 4-thread pool: only 2 lanes spawn; the other 2
        // must still accumulate idle time so utilization reflects the
        // configured pool width instead of reading 100% busy.
        let pool = WorkerPool::new(4);
        let stats = PoolStats::new(pool.threads());
        pool.run_stats(2, Some(&stats), |i, _| {
            (0..200_000u64).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
        });
        let report = stats.report();
        assert_eq!(report.workers.iter().map(|w| w.tasks).sum::<u64>(), 2);
        for lane in &report.workers[2..] {
            assert_eq!(lane.tasks, 0);
            assert_eq!(lane.busy_nanos, 0);
            assert!(lane.idle_nanos > 0, "unspawned lane must report the fan-out as idle");
        }
        // With half the lanes fully idle, utilization cannot exceed the
        // spawned fraction (busy lanes also carry some startup idle).
        assert!(report.utilization() <= 0.5 + f64::EPSILON, "{}", report.utilization());
    }

    #[test]
    fn run_stats_matches_run_results() {
        let pool = WorkerPool::new(3);
        let stats = PoolStats::new(pool.threads());
        let a = pool.run(25, |i, _| i * 7);
        let b = pool.run_stats(25, Some(&stats), |i, _| i * 7);
        assert_eq!(a, b);
    }

    #[test]
    fn serial_stats_land_on_lane_zero() {
        let pool = WorkerPool::serial();
        let stats = PoolStats::new(1);
        pool.run_stats(5, Some(&stats), |i, _| i);
        let report = stats.report();
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].tasks, 5);
        assert_eq!(report.workers[0].steals, 0);
    }

    #[test]
    fn chunk_histogram_and_merge_time_accumulate() {
        let stats = PoolStats::new(2);
        stats.record_chunk(100);
        stats.record_chunk(300);
        stats.record_merge(5_000);
        stats.record_merge(7_000);
        let report = stats.report();
        assert_eq!(report.chunks.count(), 2);
        assert_eq!(report.chunks.min(), 100);
        assert_eq!(report.merge_nanos, 12_000);
        assert_eq!(report.busy_secs(), 0.0);
    }

    #[test]
    fn env_override_parses_positive_integers_only() {
        // default_threads reads the live environment; exercise the
        // parse through the public contract instead of mutating env in
        // a test process that may run threaded siblings.
        assert!(default_threads() >= 1);
    }
}
