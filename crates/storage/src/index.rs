//! Hash indices on column subsets of a relation.

use std::collections::HashMap;

use gbc_ast::Value;

use crate::tuple::Row;

/// A hash index mapping the projection of a row onto `key_cols` to the
/// list of matching rows. Built once per (relation, column-set) pair on
/// first use and maintained incrementally as the relation grows — the
/// "availability of indices" assumption of the paper's Section 6 cost
/// model.
#[derive(Clone, Debug)]
pub struct Index {
    key_cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<Row>>,
}

impl Index {
    /// Build an index over `rows` keyed on `key_cols`.
    pub fn build<'a>(key_cols: Vec<usize>, rows: impl IntoIterator<Item = &'a Row>) -> Index {
        let mut idx = Index { key_cols, map: HashMap::new() };
        for r in rows {
            idx.insert(r);
        }
        idx
    }

    /// The indexed columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Add a row (called by the owning relation on insert).
    pub fn insert(&mut self, row: &Row) {
        let key = row.project(&self.key_cols);
        self.map.entry(key).or_default().push(row.clone());
    }

    /// Rows whose projection equals `key`.
    pub fn get(&self, key: &[Value]) -> &[Row] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn lookup_by_single_column() {
        let rows = [row(&[1, 10]), row(&[1, 20]), row(&[2, 30])];
        let idx = Index::build(vec![0], rows.iter());
        assert_eq!(idx.get(&[Value::int(1)]).len(), 2);
        assert_eq!(idx.get(&[Value::int(2)]).len(), 1);
        assert_eq!(idx.get(&[Value::int(9)]).len(), 0);
    }

    #[test]
    fn lookup_by_multiple_columns_respects_order() {
        let rows = [row(&[1, 2, 3]), row(&[2, 1, 4])];
        let idx = Index::build(vec![1, 0], rows.iter());
        // Key is (col1, col0).
        assert_eq!(idx.get(&[Value::int(2), Value::int(1)]).len(), 1);
        assert_eq!(idx.get(&[Value::int(1), Value::int(2)]).len(), 1);
    }

    #[test]
    fn incremental_insert_extends_the_index() {
        let mut idx = Index::build(vec![0], std::iter::empty());
        assert_eq!(idx.num_keys(), 0);
        idx.insert(&row(&[5, 1]));
        idx.insert(&row(&[5, 2]));
        assert_eq!(idx.get(&[Value::int(5)]).len(), 2);
        assert_eq!(idx.num_keys(), 1);
    }
}
