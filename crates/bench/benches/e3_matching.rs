//! E3 — Section 6, "Matching: Complexity of Example 7".
//!
//! Declarative greedy min-cost maximal matching (`O(e log e)` with the
//! (R,Q,L) structure) versus the sorted-edges procedural baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbc_baselines::matching::greedy_matching;
use gbc_greedy::{matching, workload};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_matching");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &e in &[1024usize, 2048, 4096, 8192] {
        let n = e / 4;
        let g = workload::random_arcs(n, e, 42);
        group.throughput(Throughput::Elements(e as u64));

        group.bench_with_input(BenchmarkId::new("declarative_rql", e), &g, |b, g| {
            let compiled = matching::compiled();
            let edb = g.to_edb();
            b.iter(|| {
                let run = compiled.run_greedy(&edb).unwrap();
                run.stats.gamma_steps
            });
        });

        group.bench_with_input(BenchmarkId::new("classical_sorted", e), &g, |b, g| {
            b.iter(|| greedy_matching(g.n, &g.edges).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
