//! A tiny blocking HTTP/1.1 client over `std::net::TcpStream` — enough
//! to drive every `gbc serve` endpoint from the bench harness, the
//! smoke tests and CI without shelling out to curl (which keeps the
//! end-to-end path measurable and the zero-dependency policy intact).
//!
//! One request per connection, mirroring the server's one-shot model:
//! connect, write, read to EOF, parse. Returned errors are plain
//! strings; status codes are the caller's to interpret.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side I/O timeout (connect + read + write).
const TIMEOUT: Duration = Duration::from_secs(30);

/// `GET target` against `addr` (e.g. `"127.0.0.1:7171"`). Returns
/// `(status, body)`.
pub fn get(addr: &str, target: &str) -> Result<(u16, String), String> {
    request(addr, "GET", target, None)
}

/// `POST target` with a JSON body. Returns `(status, body)`.
pub fn post_json(addr: &str, target: &str, body: &str) -> Result<(u16, String), String> {
    request(addr, "POST", target, Some(body))
}

/// Issue one request and read the full response.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(TIMEOUT)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(TIMEOUT)).map_err(|e| e.to_string())?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Content-Type: application/json\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| format!("write {addr}: {e}"))?;
    stream.write_all(body.as_bytes()).map_err(|e| format!("write {addr}: {e}"))?;

    // The server closes after one response, so EOF delimits it.
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read {addr}: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_owned())?;
    parse_response(&text)
}

/// Split a serialized response into status code and body.
fn parse_response(text: &str) -> Result<(u16, String), String> {
    let Some((head, response_body)) = text.split_once("\r\n\r\n") else {
        return Err(format!("no header/body separator in response: {text:?}"));
    };
    let status_line = head.lines().next().unwrap_or("");
    let mut parts = status_line.split_whitespace();
    let proto = parts.next().unwrap_or("");
    if !proto.starts_with("HTTP/1.") {
        return Err(format!("malformed status line: {status_line:?}"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    Ok((status, response_body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parsing_splits_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\r\n{\"a\":1}\n")
                .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"a\":1}\n");
        assert!(parse_response("garbage").is_err());
        assert!(parse_response("SPDY/3 200\r\n\r\nx").is_err());
    }
}
