//! The **Alternating Stage-Choice Fixpoint** executor (Sections 4 & 6).
//!
//! For a stage-stratified program whose next rules fit the Section 6
//! template
//!
//! ```text
//! next(I), p(X̄, J), [J < I | I = J + 1], [least(C, I)], [choice …]
//! ```
//!
//! the executor alternates:
//!
//! * `Q` — seminaive saturation of the flat rules;
//! * γ — *retrieve-least* from the rule's **D_r = (R, Q, L)** structure:
//!   pop the cheapest candidate, re-check the stage comparisons and the
//!   choice FDs (the on-the-fly `diffChoice` test), discard failures to
//!   `R_r`, and commit the first survivor as the next stage.
//!
//! New source facts flow into `Q_r` as they are derived, keyed by their
//! *r-congruence class* (one queued representative per class — see
//! [`gbc_storage::rql`]). Insert and retrieve-least are `O(log |Q|)`,
//! which is what delivers the paper's complexity results: Prim in
//! `O(e log e)`, sorting in `O(n log n)` (the "insertion sort that runs
//! as heap-sort"), matching in `O(e log e)`.
//!
//! Congruence keys are derived from the rule's choice FDs per the
//! paper's definition, with a soundness guard: an argument column is
//! dropped as "functionally determined" only while the determining
//! columns remain in the key, and the cost column is dropped only when
//! the rule has choice goals at all (for plain `next`+`least` rules like
//! sorting, every source fact is its own class — the behaviour the
//! paper's sorting analysis describes).

use std::sync::Arc;

use gbc_ast::{CmpOp, Literal, Program, Rule, Symbol, Term, Value, VarId};
use gbc_engine::bindings::Bindings;
use gbc_engine::eval::{
    eval_expr, eval_term, instantiate_head, match_term, match_term_id, parent_rows,
};
use gbc_engine::extrema::{
    collect_matches_plan, collect_matches_plan_pooled, filter_extrema, filter_extrema_sharded,
};
use gbc_engine::plan::{columnar_feed_spec, FeedCheck, PlanCache, RuleStatics};
use gbc_engine::pool::{FanoutObs, PoolReport, PoolStats, WorkerPool};
use gbc_engine::seminaive::Seminaive;
use gbc_storage::dictionary::{self, decode_ref};
use gbc_storage::{Database, FxHashMap, FxHashSet, Row, Rql, DICT_MISS, NO_GOAL};
use gbc_telemetry::{DiscardReason, Snapshot, Telemetry, TraceEvent};

use crate::analysis::stage::StageInfo;
use crate::analysis::{reachability, typeinfer};
use crate::error::CoreError;
use crate::rewrite::choice::choice_vars;

/// Execution limits and switches.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// γ-step budget.
    pub max_steps: u64,
    /// Worker threads for flat-rule saturation. `1` (the default) runs
    /// the exact serial engine; higher counts fan saturation rounds out
    /// over `gbc_engine::pool` with byte-identical results — γ-steps,
    /// choice commits and `(R,Q,L)` heap maintenance stay sequential
    /// regardless (see DESIGN.md §9).
    pub threads: usize,
    /// Run whole-program type/reachability analysis at setup and apply
    /// its specializations: dead-rule pruning, folded constants, the
    /// decode-free `Int` cost heap, and the bindings-free feed fast
    /// path. On by default; `GBC_NO_ANALYZE=1` in the environment (or
    /// setting this to `false`) reverts to the unanalyzed engine —
    /// results and counters are byte-identical either way.
    pub analyze: bool,
    /// Feed new `Q_r` rows through the fused feed→heap batch kernel
    /// ([`gbc_storage::Rql::extend_batch`]) and allow FD-independent
    /// stage cliques to collect their feeds concurrently. On by
    /// default; `GBC_NO_GAMMA_BATCH=1` in the environment (or setting
    /// this to `false`) reverts to per-row inserts on the coordinator.
    /// Results and counters are byte-identical either way — only the
    /// which-path counter `heap_batch_pushes` moves.
    pub gamma_batch: bool,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            max_steps: 100_000_000,
            threads: 1,
            analyze: std::env::var_os("GBC_NO_ANALYZE").is_none(),
            gamma_batch: std::env::var_os("GBC_NO_GAMMA_BATCH").is_none(),
        }
    }
}

impl GreedyConfig {
    /// The default configuration with `threads` workers.
    pub fn with_threads(threads: usize) -> GreedyConfig {
        GreedyConfig { threads, ..GreedyConfig::default() }
    }
}

/// One committed choice, with the bookkeeping needed to reconstruct the
/// `chosen_i` facts of the rewritten program (Theorem 1 validation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChosenRecord {
    /// Index of the firing rule in the original (and expanded) program.
    pub rule_idx: usize,
    /// Per choice goal of the *expanded* rule: the committed (L, R)
    /// value pair.
    pub pairs: Vec<(Vec<Value>, Vec<Value>)>,
    /// The expanded rule's choice variables, evaluated.
    pub chosen_args: Vec<Value>,
}

/// Executor statistics (exposed for the benchmark harness and tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyStats {
    /// Committed γ steps.
    pub gamma_steps: u64,
    /// Candidates popped from some `Q_r` and discarded to `R_r`.
    pub discarded: u64,
    /// Facts derived by flat-rule saturation.
    pub flat_new_facts: u64,
    /// Largest `Q_r` size observed.
    pub queue_peak: usize,
    /// FD-independent stage cliques the feed scheduler identified —
    /// the fan-out width of the parallel γ feed phase (1 for every
    /// single-program session: its predicates are one connected
    /// component).
    pub feed_cliques: usize,
}

/// The result of a run.
#[derive(Clone, Debug)]
pub struct GreedyRun {
    /// The computed choice model (EDB + all derived facts).
    pub db: Database,
    /// The committed choices, in firing order.
    pub chosen: Vec<ChosenRecord>,
    /// Counters.
    pub stats: GreedyStats,
    /// The full telemetry counter snapshot of the run.
    pub snapshot: Snapshot,
    /// Worker-pool occupancy report (busy/idle/steal lanes, chunk-size
    /// histogram, merge time). `None` for serial runs — the pool never
    /// spins up, so there is nothing to report.
    pub pool: Option<PoolReport>,
}

/// The compiled plan for one next rule.
#[derive(Clone, Debug)]
pub struct NextPlan {
    /// Rule index in the original program.
    pub rule_idx: usize,
    rule: Rule,
    expanded: Rule,
    head_pred: Symbol,
    stage_pos: usize,
    stage_var: VarId,
    source_lit: usize,
    source_pred: Symbol,
    /// Cost variable (from `least`/`most`), if any, with its source
    /// column.
    cost: Option<(VarId, usize)>,
    /// True for `most` (retrieve the maximum — the dual structure).
    descending: bool,
    /// Chain mode: the rule pins `I = J + 1` (TSP-style), so stale
    /// stages must stay distinct congruence classes.
    pub chain: bool,
    /// Source columns forming the congruence key.
    pub cong_cols: Vec<usize>,
    /// Comparison literals evaluable from source variables alone.
    pre_checks: Vec<Literal>,
    /// Comparison literals needing the stage variable.
    post_checks: Vec<Literal>,
    /// The original rule's choice goals.
    choice_goals: Vec<(Vec<Term>, Vec<Term>)>,
    /// The feed can skip per-row `Bindings` entirely: every source
    /// argument is a bare variable, a repeat of one, or ground, and
    /// every pre-check compares source columns and constants — so each
    /// row's admission reduces to the columnar [`FeedCheck`] sequence
    /// below, and the cost/key columns are read straight off the
    /// arena. Applied only when analysis is on
    /// ([`GreedyConfig::analyze`]); surfaced to users as the GBC032
    /// note.
    fast_feed: bool,
    /// The compiled per-row checks of the fast path (empty for the
    /// original all-distinct-variables shape, where every row feeds).
    feed_checks: Vec<FeedCheck>,
}

impl NextPlan {
    /// Head predicate.
    pub fn head_pred(&self) -> Symbol {
        self.head_pred
    }

    /// Source predicate feeding `Q_r`.
    pub fn source_pred(&self) -> Symbol {
        self.source_pred
    }

    /// Source column of the extremum cost, if any.
    pub fn cost_col(&self) -> Option<usize> {
        self.cost.map(|(_, c)| c)
    }

    /// `most` rule: retrieve the maximum.
    pub fn is_descending(&self) -> bool {
        self.descending
    }

    /// The feed loop qualifies for the bindings-free fast path.
    pub fn is_fast_feed(&self) -> bool {
        self.fast_feed
    }
}

/// Build plans for every next rule of a validated, stage-stratified
/// program. Errors with [`CoreError::NoGreedyPlan`] when a next rule
/// falls outside the Section 6 template.
pub fn build_plans(
    program: &Program,
    expanded: &Program,
    stages: &StageInfo,
) -> Result<Vec<NextPlan>, CoreError> {
    let mut plans = Vec::new();
    let mut seen_heads: Vec<Symbol> = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        if !rule.has_next() {
            continue;
        }
        if seen_heads.contains(&rule.head.pred) {
            return Err(CoreError::NoGreedyPlan {
                detail: format!(
                    "two next rules define `{}`; the executor supports one per predicate",
                    rule.head.pred
                ),
            });
        }
        seen_heads.push(rule.head.pred);
        plans.push(build_plan(ri, rule, &expanded.rules[ri], stages)?);
    }
    Ok(plans)
}

fn template_err(rule: &Rule, detail: impl Into<String>) -> CoreError {
    CoreError::NoGreedyPlan {
        detail: format!("rule `{rule}` is outside the Section 6 template: {}", detail.into()),
    }
}

fn build_plan(
    rule_idx: usize,
    rule: &Rule,
    expanded: &Rule,
    stages: &StageInfo,
) -> Result<NextPlan, CoreError> {
    let stage_var = rule
        .body
        .iter()
        .find_map(|l| match l {
            Literal::Next { var } => Some(*var),
            _ => None,
        })
        .expect("next rule");
    let stage_pos = rule
        .head
        .args
        .iter()
        .position(|t| matches!(t, Term::Var(v) if *v == stage_var))
        .ok_or_else(|| template_err(rule, "stage variable missing from head"))?;

    // Exactly one positive atom (the source); no negation.
    let sources: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l, Literal::Pos(_)))
        .map(|(i, _)| i)
        .collect();
    if sources.len() != 1 {
        return Err(template_err(rule, format!("{} positive atoms, need 1", sources.len())));
    }
    if rule.has_negation() {
        return Err(template_err(rule, "negated atoms in a next rule"));
    }
    let source_lit = sources[0];
    let Literal::Pos(source) = &rule.body[source_lit] else { unreachable!() };

    // Variables bound by the source atom.
    let source_vars = source.vars();

    // Extremum: at most one `least`/`most`, group ⊆ {stage var}.
    let mut cost = None;
    let mut descending = false;
    for lit in &rule.body {
        let (c, group, desc) = match lit {
            Literal::Least { cost, group } => (cost, group, false),
            Literal::Most { cost, group } => (cost, group, true),
            _ => continue,
        };
        if cost.is_some() {
            return Err(template_err(rule, "multiple extrema"));
        }
        let group_ok = group.is_empty()
            || (group.len() == 1 && matches!(&group[0], Term::Var(v) if *v == stage_var));
        if !group_ok {
            return Err(template_err(rule, "extremum group must be the stage variable"));
        }
        let Term::Var(cv) = c else {
            return Err(template_err(rule, "extremum cost must be a variable"));
        };
        let col = source
            .args
            .iter()
            .position(|t| matches!(t, Term::Var(v) if v == cv))
            .ok_or_else(|| template_err(rule, "cost variable must be a source column"))?;
        cost = Some((*cv, col));
        descending = desc;
    }

    // Comparisons: split by whether they mention the stage variable;
    // everything they mention must come from the source (or the stage).
    let mut pre_checks = Vec::new();
    let mut post_checks = Vec::new();
    for lit in &rule.body {
        let Literal::Compare { .. } = lit else { continue };
        let vars = lit.vars();
        if vars.iter().any(|v| !source_vars.contains(v) && *v != stage_var) {
            return Err(template_err(rule, "comparison over non-source variables"));
        }
        if vars.contains(&stage_var) {
            post_checks.push(lit.clone());
        } else {
            pre_checks.push(lit.clone());
        }
    }

    // Bindings-free feed eligibility (see the field docs): the source
    // args and pre-checks compile to a columnar check sequence, or the
    // feed keeps its binding frames. Built unconditionally — constant
    // operands intern here, at plan-build time, so dictionary counters
    // cannot differ between the fast and frame-based paths.
    let feed_spec = columnar_feed_spec(&source.args, &pre_checks);
    let fast_feed = feed_spec.is_some();
    let feed_checks = feed_spec.unwrap_or_default();

    // Head must be instantiable from source vars + stage var.
    let mut head_vars = Vec::new();
    for t in &rule.head.args {
        t.collect_vars(&mut head_vars);
    }
    if head_vars.iter().any(|v| !source_vars.contains(v) && *v != stage_var) {
        return Err(template_err(rule, "head variable not bound by the source atom"));
    }

    // Chain mode: I = J + 1 for the source's stage column J.
    let cons = crate::analysis::constraints::Constraints::from_rule(rule);
    let source_stage_col =
        stages.stage_arg.get(&source.pred).copied().filter(|&pos| pos < source.args.len());
    let chain = source_stage_col.is_some_and(|pos| {
        matches!(&source.args[pos], Term::Var(j)
            if cons.lt(*j, stage_var) && cons.le_offset(stage_var, *j, 1))
    });

    // Choice goals of the original rule; their variables must be bound.
    let mut choice_goals = Vec::new();
    for lit in &rule.body {
        let Literal::Choice { left, right } = lit else { continue };
        let vars = lit.vars();
        if vars.iter().any(|v| !source_vars.contains(v) && *v != stage_var) {
            return Err(template_err(rule, "choice variable not bound by the source atom"));
        }
        choice_goals.push((left.clone(), right.clone()));
    }

    // Congruence key (see module docs).
    let mut key: Vec<usize> = (0..source.args.len()).collect();
    if let Some(pos) = source_stage_col {
        if !chain {
            key.retain(|&c| c != pos);
        }
    }
    // Columns whose variables are functionally determined by a choice
    // goal. Sound ONLY with a single choice goal: a popped candidate
    // can then fail solely through that goal's FD on the key itself, so
    // a discarded pop proves the whole congruence class dead. With two
    // or more FDs (the matching program) a pop may fail through an FD
    // over a dropped column while congruent siblings remain viable —
    // and indeed the paper's own matching analysis keeps all `e` arcs
    // in `Q_r`.
    let col_vars: Vec<Vec<VarId>> = source.args.iter().map(Term::vars).collect();
    let cost_col = cost.map(|(_, col)| col);
    if let [(left, right)] = choice_goals.as_slice() {
        let l_vars: Vec<VarId> = left.iter().flat_map(Term::vars).collect();
        let r_vars: Vec<VarId> = right.iter().flat_map(Term::vars).collect();
        let key_vars: Vec<VarId> = key
            .iter()
            .filter(|&&c| Some(c) != cost_col)
            .flat_map(|&c| col_vars[c].iter().copied())
            .collect();
        if l_vars.iter().all(|v| key_vars.contains(v) || *v == stage_var) {
            key.retain(|&c| {
                Some(c) == cost_col
                    || col_vars[c].is_empty()
                    || !col_vars[c].iter().all(|v| r_vars.contains(v))
            });
        }
    }
    if let Some(col) = cost_col {
        if !choice_goals.is_empty() {
            key.retain(|&c| c != col);
        }
    }

    Ok(NextPlan {
        rule_idx,
        rule: rule.clone(),
        expanded: expanded.clone(),
        head_pred: rule.head.pred,
        stage_pos,
        stage_var,
        source_lit,
        source_pred: source.pred,
        cost,
        descending,
        chain,
        cong_cols: key,
        pre_checks,
        post_checks,
        choice_goals,
        fast_feed,
        feed_checks,
    })
}

type FdMap = FxHashMap<Vec<Value>, Vec<Value>>;

struct NextState {
    plan: NextPlan,
    rql: Rql,
    /// Fed rows of the source relation.
    src_mark: usize,
    /// Scanned rows of the head relation (stage tracking).
    head_mark: usize,
    /// Current maximum stage.
    stage: i64,
    /// FD memo per original choice goal.
    memos: Vec<FdMap>,
    /// The `choice(W, I)` FD of the next-expansion: each non-stage head
    /// tuple `W` is committed at exactly one stage. Without this check
    /// a chain-mode program can re-commit the same tuple at every new
    /// stage (the head differs only in `I`) and never terminate.
    /// Projections are stored as dictionary ids.
    w_used: FxHashSet<Vec<u32>>,
}

/// The read-only harvest of one fast-feed rule's feed phase:
/// everything `GreedyExecutor::feed` observes, none of what it
/// mutates. Collected on a clique worker (or inline on the
/// coordinator) and applied in rule order.
struct FeedBatch {
    /// New head-relation high-water mark.
    head_len: usize,
    /// New source-relation high-water mark.
    src_len: usize,
    /// Max stage among the new head rows (`i64::MIN` when none).
    stage_max: i64,
    /// W-projections of the new head rows.
    new_w: Vec<Vec<u32>>,
    /// `(congruence key, cost id, row)` triples for `Rql::extend_batch`.
    triples: Vec<(Vec<u32>, u32, Vec<u32>)>,
}

/// Collect next rule `ns`'s feed batch without mutating anything: scan
/// the new head rows for the stage high-water mark and W-projections,
/// then admit new source rows through the compiled columnar checks.
/// Pure arena reads — callable from a pool worker under the no-intern
/// guard.
fn collect_feed(ns: &NextState, db: &Database, nil_cost: u32) -> Result<FeedBatch, CoreError> {
    let plan = &ns.plan;
    let head_rel = db.relation(plan.head_pred);
    let head_rows = head_rel.since(ns.head_mark);
    let mut stage_max = i64::MIN;
    let mut new_w: Vec<Vec<u32>> = Vec::new();
    for r in 0..head_rows.len() {
        match head_rows.try_cell(r, plan.stage_pos).map(decode_ref) {
            Some(Value::Int(s)) => stage_max = stage_max.max(*s),
            Some(other) => return Err(CoreError::NonIntegerStage { found: other.to_string() }),
            None => {}
        }
        new_w.push(
            (0..head_rows.arity())
                .filter(|&c| c != plan.stage_pos)
                .map(|c| head_rows.cell(r, c))
                .collect(),
        );
    }
    let src_rel = db.relation(plan.source_pred);
    let rows = src_rel.since(ns.src_mark);
    let Literal::Pos(source) = &plan.rule.body[plan.source_lit] else { unreachable!() };
    let mut triples: Vec<(Vec<u32>, u32, Vec<u32>)> = Vec::new();
    if rows.arity() == source.args.len() {
        let cost_col = plan.cost.map(|(_, col)| col);
        for r in 0..rows.len() {
            if !plan.feed_checks.iter().all(|c| c.eval(&|col| rows.cell(r, col))) {
                continue;
            }
            let cost = match cost_col {
                Some(c) => rows.cell(r, c),
                None => nil_cost,
            };
            let key: Vec<u32> = plan.cong_cols.iter().map(|&c| rows.cell(r, c)).collect();
            triples.push((key, cost, rows.id_row(r)));
        }
    }
    Ok(FeedBatch { head_len: head_rel.len(), src_len: src_rel.len(), stage_max, new_w, triples })
}

/// The executor. Create with [`GreedyExecutor::new`], then [`GreedyExecutor::run`].
pub struct GreedyExecutor {
    flat: Seminaive,
    nexts: Vec<NextState>,
    /// Exit choice rules (choice, no next), with their memos.
    exits: Vec<(usize, Rule)>,
    /// Compiled join plans of the exit rules, one slot per rule.
    exit_plans: PlanCache,
    /// Per exit rule: analysis facts (constant-true comparisons to fold
    /// out of the compiled plan). Defaults when analysis is off.
    exit_statics: Vec<RuleStatics>,
    exit_memos: Vec<Vec<FdMap>>,
    /// Per exit rule: the body-relation size total at the last fruitless
    /// attempt — unchanged inputs ⇒ still fruitless, skip the re-scan.
    exit_stale: Vec<Option<usize>>,
    db: Database,
    config: GreedyConfig,
    chosen: Vec<ChosenRecord>,
    stats: GreedyStats,
    tel: Telemetry,
    /// Worker pool for the executor's own fan-outs (exit-rule match
    /// collection, extrema sharding, clique-level feed collection).
    /// Serial at `threads: 1` — every fan-out then runs inline on the
    /// coordinator, byte for byte the sequential engine.
    pool: WorkerPool,
    /// FD-independent stage-clique groups: indices into `nexts`, each
    /// group's feed collectable concurrently with the others (see
    /// `analysis::cliques`). Always computed; one group for every
    /// single-clique program.
    feed_groups: Vec<Vec<usize>>,
    /// Pool occupancy accumulator, allocated only for parallel runs.
    pool_stats: Option<Arc<PoolStats>>,
}

impl GreedyExecutor {
    /// Set up the executor: facts are loaded, rules partitioned, one
    /// [`Rql`] allocated per next-rule plan.
    pub fn new(
        program: &Program,
        _expanded: &Program,
        plans: Vec<NextPlan>,
        edb: &Database,
        config: GreedyConfig,
    ) -> GreedyExecutor {
        let mut db = edb.clone();
        // Whole-program analysis (PR 8): dead rules are dropped before
        // partitioning, constant-true comparisons are folded out of the
        // exit plans, and (below, once the EDB is loaded) proved-`int`
        // cost columns switch their `Q_r` onto the decode-free heap.
        // `GBC_NO_ANALYZE=1` disables all of it; outputs are identical.
        let reach = config.analyze.then(|| reachability::analyze(program));
        let dead = reach.as_ref().map(|r| r.dead_rule_set()).unwrap_or_default();
        let mut flat_rules = Vec::new();
        let mut flat_ids = Vec::new();
        let mut exits = Vec::new();
        let mut exit_statics = Vec::new();
        let mut exit_memos = Vec::new();
        for (ri, r) in program.rules.iter().enumerate() {
            if r.is_fact() {
                let row = r
                    .head
                    .args
                    .iter()
                    .map(|t| t.as_value().expect("validated ground fact"))
                    .collect();
                db.insert(r.head.pred, row);
            } else if r.has_next() {
                // handled by plans
            } else if dead.contains(&ri) {
                // Provably never fires: no plan, no saturation work.
            } else if r.has_choice() {
                let goals = r.body.iter().filter(|l| matches!(l, Literal::Choice { .. })).count();
                exit_memos.push(vec![FdMap::default(); goals]);
                exit_statics.push(RuleStatics {
                    dead: false,
                    const_true_lits: reach
                        .as_ref()
                        .map(|info| info.const_true_lits(ri))
                        .unwrap_or_default(),
                });
                exits.push((ri, r.clone()));
            } else {
                flat_rules.push(r.clone());
                flat_ids.push(ri);
            }
        }
        // Column types need the loaded EDB: scan the concrete relations
        // for seeds, then run the head/body fixpoint over the rules.
        let types = config.analyze.then(|| {
            let seeds = typeinfer::scan_seeds(&db);
            typeinfer::infer_seeded(program, &seeds)
        });
        let nexts: Vec<NextState> = plans
            .into_iter()
            .map(|mut plan| {
                let goals = plan.choice_goals.len();
                let mut rql = if plan.descending { Rql::new_descending() } else { Rql::new() };
                match (&types, plan.cost) {
                    (Some(t), Some((_, col))) if t.col_is_int(plan.source_pred, col) => {
                        rql.set_int_costs(true);
                    }
                    _ => {}
                }
                if !config.analyze {
                    plan.fast_feed = false;
                }
                NextState {
                    plan,
                    rql,
                    src_mark: 0,
                    head_mark: 0,
                    stage: i64::MIN,
                    memos: vec![FdMap::default(); goals],
                    w_used: FxHashSet::default(),
                }
            })
            .collect();
        let exit_stale = vec![None; exits.len()];
        let exit_plans = PlanCache::new(exits.len());
        let next_heads: Vec<Symbol> =
            nexts.iter().map(|ns: &NextState| ns.plan.head_pred).collect();
        let feed_groups = crate::analysis::cliques::feed_groups(program).partition(&next_heads);
        let mut flat = Seminaive::new(flat_rules);
        flat.set_rule_ids(flat_ids);
        flat.set_threads(config.threads);
        let pool_stats = (config.threads > 1).then(|| Arc::new(PoolStats::new(config.threads)));
        flat.set_pool_stats(pool_stats.clone());
        let mut ex = GreedyExecutor {
            flat,
            nexts,
            exits,
            exit_plans,
            exit_statics,
            exit_memos,
            exit_stale,
            db,
            config,
            chosen: Vec::new(),
            stats: GreedyStats { feed_cliques: feed_groups.len(), ..GreedyStats::default() },
            tel: Telemetry::default(),
            pool: WorkerPool::new(config.threads),
            feed_groups,
            pool_stats,
        };
        ex.attach_telemetry();
        ex
    }

    /// Swap in a telemetry handle (counters, phase timers, trace sink)
    /// and wire its counter registry into every layer: the database's
    /// index caches, the seminaive saturator, and each rule's `Q_r`.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
        self.attach_telemetry();
    }

    fn attach_telemetry(&mut self) {
        let m = Arc::clone(&self.tel.metrics);
        self.db.set_metrics(Arc::clone(&m));
        self.flat.set_metrics(Arc::clone(&m));
        self.flat.set_trace(self.tel.trace.clone());
        self.flat
            .set_profiler(self.tel.profiler.is_enabled().then(|| Arc::clone(&self.tel.profiler)));
        for ns in &mut self.nexts {
            ns.rql.set_metrics(Arc::clone(&m));
        }
    }

    /// Run to fixpoint.
    pub fn run(mut self) -> Result<GreedyRun, CoreError> {
        let tel = self.tel.clone();
        // Phase and overhead accounting use *chained* timestamps: each
        // boundary reads the clock once and every interval between two
        // boundaries is charged somewhere (a phase, a rule, or the
        // profiler's overhead bucket). That keeps the attribution gap —
        // time the instrumentation itself cannot see — to the one
        // accumulator update per boundary, which is what lets
        // `--profile` account for nearly all of the run's wall time.
        let clocked = tel.phases.is_enabled() || tel.profiler.is_enabled();
        // Per-round latency, recorded only when the handle asked for it
        // (`--stats-json`). A "round" is one full trip around this loop:
        // saturation plus the γ (or exit) decision it enables.
        let rounds_on = tel.rounds.is_some();
        let mut flat_round: u64 = 0;
        loop {
            let t_round = rounds_on.then(std::time::Instant::now);
            let mut t_prev = clocked.then(std::time::Instant::now);
            let new_facts = self.flat.saturate(&mut self.db)?;
            if let Some(t0) = t_prev {
                let t = std::time::Instant::now();
                tel.phases.add("run/flat", t - t0);
                t_prev = Some(t);
            }
            self.stats.flat_new_facts += new_facts;
            flat_round += 1;
            tel.trace_with(|| TraceEvent::FlatRound { round: flat_round, new_facts });
            if let Some(t0) = t_prev {
                let t = std::time::Instant::now();
                tel.profiler.add_overhead(t - t0);
                t_prev = Some(t);
            }
            let exited = self.fire_exit_rule()?;
            if let Some(t0) = t_prev {
                let t = std::time::Instant::now();
                tel.phases.add("run/exit", t - t0);
                t_prev = Some(t);
            }
            if exited {
                if let Some(t0) = t_round {
                    tel.record_round_nanos(t0.elapsed().as_nanos() as u64);
                }
                continue;
            }
            self.feed_all()?;
            if let Some(t0) = t_prev {
                // The γ phase splits into feed/choose/commit buckets;
                // the parent accumulates the same boundary intervals so
                // it is first-used before any child and owns the loop
                // overhead the children don't see.
                let t = std::time::Instant::now();
                tel.phases.add("run/gamma", t - t0);
                tel.phases.add("run/gamma/feed", t - t0);
                t_prev = Some(t);
            }
            let mut fired = false;
            for i in 0..self.nexts.len() {
                if self.fire_next_rule(i)? {
                    fired = true;
                    break;
                }
            }
            if let Some(t0) = t_prev {
                tel.phases.add("run/gamma", t0.elapsed());
            }
            if let Some(t0) = t_round {
                tel.record_round_nanos(t0.elapsed().as_nanos() as u64);
            }
            if !fired {
                break;
            }
            if self.stats.gamma_steps >= self.config.max_steps {
                return Err(CoreError::StepLimit { steps: self.stats.gamma_steps });
            }
        }
        let snapshot = self.tel.metrics.snapshot();
        let pool = self.pool_stats.as_ref().map(|s| s.report());
        Ok(GreedyRun { db: self.db, chosen: self.chosen, stats: self.stats, snapshot, pool })
    }

    /// Fire one exit choice rule instance, generic-candidate style.
    fn fire_exit_rule(&mut self) -> Result<bool, CoreError> {
        let GreedyExecutor {
            exits,
            exit_plans,
            exit_statics,
            exit_memos,
            exit_stale,
            db,
            tel,
            chosen,
            stats,
            pool,
            pool_stats,
            ..
        } = self;
        let prov = db.provenance().cloned();
        for (ei, (ri, rule)) in exits.iter().enumerate() {
            let body_size: usize = rule.positive_atoms().map(|a| db.count(a.pred)).sum();
            if exit_stale[ei] == Some(body_size) {
                continue;
            }
            let t0 = tel.profiler.start();
            let cached = exit_plans.is_cached(ei);
            let plan = exit_plans
                .get_or_compile_typed(ei, rule, &exit_statics[ei], Some(&*tel.metrics))
                .map_err(CoreError::Engine)?;
            if cached {
                tel.profiler.record_plan_hit(*ri);
            }
            // Parallel runs fan the match collection's first scan out
            // over the pool (chunk-order merge — the enumeration is
            // identical to the serial one); serial runs keep the exact
            // sequential path.
            let frames = if pool.is_parallel() {
                let obs = FanoutObs {
                    profiler: tel.profiler.is_enabled().then_some(&*tel.profiler),
                    stats: pool_stats.as_deref(),
                    trace: None,
                };
                collect_matches_plan_pooled(db, rule, &plan, pool, obs)?
            } else {
                collect_matches_plan(db, rule, &plan, None)?
            };
            let considered = frames.len() as u64;
            tel.metrics.choice_candidates_considered.add(considered);
            let mut consistent = Vec::new();
            let mut rejected: u64 = 0;
            for b in frames {
                match fd_first_conflict(rule, &exit_memos[ei], &b)? {
                    None => consistent.push(b),
                    Some((gi, left, attempted, committed)) => {
                        rejected += 1;
                        tel.metrics.diffchoice_rejections.inc();
                        if let Some(arena) = &prov {
                            let head = instantiate_head(rule, &b)?;
                            arena.record_rejection(
                                *ri,
                                gi,
                                "diffchoice",
                                rule.head.pred,
                                &head,
                                left,
                                attempted,
                                committed,
                            );
                        }
                    }
                }
            }
            if considered > 0 {
                tel.trace_with(|| TraceEvent::ChoiceAudit {
                    rule: *ri,
                    pred: rule.head.pred.to_string(),
                    considered,
                    rejected,
                });
            }
            let minimal = if pool.is_parallel() {
                filter_extrema_sharded(rule, consistent, pool)?
            } else {
                filter_extrema(rule, consistent)?
            };
            // Deterministic pick: smallest (head, chosen-args).
            let mut best: Option<(Row, Vec<Value>, Bindings)> = None;
            for b in minimal {
                let head = instantiate_head(rule, &b)?;
                let args = eval_choice_vars(rule, &b)?;
                if db.contains(rule.head.pred, &head)
                    && all_pairs_present(rule, &exit_memos[ei], &b)?
                {
                    continue; // not new
                }
                if best.as_ref().map_or(true, |(h, a, _)| (&head, &args) < (h, a)) {
                    best = Some((head, args, b));
                }
            }
            let Some((head, args, b)) = best else {
                exit_stale[ei] = Some(body_size);
                tel.profiler.finish(t0, *ri, 0, 0);
                continue;
            };
            let pairs = eval_goal_pairs(rule, &b)?;
            tel.trace_with(|| TraceEvent::ExitCommit {
                pred: rule.head.pred.to_string(),
                fact: head.to_string(),
            });
            if let Some(arena) = &prov {
                arena.advance_step();
                arena.record_derivation(rule.head.pred, &head, *ri, &parent_rows(rule, &b));
                arena.record_commit(*ri, rule.head.pred, &head, pairs.clone());
            }
            db.insert(rule.head.pred, head);
            for (gi, (l, r)) in pairs.iter().enumerate() {
                exit_memos[ei][gi].insert(l.clone(), r.clone());
            }
            chosen.push(ChosenRecord { rule_idx: *ri, pairs, chosen_args: args });
            stats.gamma_steps += 1;
            tel.metrics.gamma_steps.inc();
            tel.profiler.finish(t0, *ri, 1, 1);
            return Ok(true);
        }
        Ok(false)
    }

    /// Feed every next rule in index order. Serial runs (and
    /// single-clique programs — all nine shipped ones) walk the rules
    /// on the coordinator. With several FD-independent stage cliques, a
    /// parallel pool, and the batch kernel enabled, the read-only
    /// *collection* of each clique's fast-feed batches fans out over
    /// the pool — one clique-level task per group — and the coordinator
    /// applies the collected batches in rule order. Collection touches
    /// no shared state (workers read arenas and plan data only; the
    /// debug no-intern guard is armed), so the applied queue state and
    /// every counter are byte-identical to the serial walk.
    fn feed_all(&mut self) -> Result<(), CoreError> {
        // Interned once per feed phase, before any fan-out: the
        // coordinator owns all interning, and hoisting it keeps the
        // encode-hit count identical at every thread count.
        let nil_cost = dictionary::encode(&Value::Nil);
        let parallel = self.pool.is_parallel()
            && self.config.gamma_batch
            && self.feed_groups.len() > 1
            && self.nexts.iter().any(|ns| ns.plan.fast_feed);
        if !parallel {
            for i in 0..self.nexts.len() {
                self.feed(i, nil_cost)?;
            }
            return Ok(());
        }
        let mut slots: Vec<Option<Result<FeedBatch, CoreError>>> =
            (0..self.nexts.len()).map(|_| None).collect();
        {
            let nexts = &self.nexts;
            let db = &self.db;
            let groups = &self.feed_groups;
            let profiler = self.tel.profiler.is_enabled().then_some(&*self.tel.profiler);
            let collected =
                self.pool.run_stats(groups.len(), self.pool_stats.as_deref(), |gi, worker| {
                    dictionary::forbid_intern_on_this_thread(true);
                    let t0 = profiler.and_then(|p| p.lane_start());
                    let out: Vec<(usize, Result<FeedBatch, CoreError>)> = groups[gi]
                        .iter()
                        .filter(|&&i| nexts[i].plan.fast_feed)
                        .map(|&i| (i, collect_feed(&nexts[i], db, nil_cost)))
                        .collect();
                    if let (Some(p), Some(t0)) = (profiler, t0) {
                        p.record_lane(worker, t0.elapsed());
                    }
                    out
                });
            for (i, batch) in collected.into_iter().flatten() {
                slots[i] = Some(batch);
            }
        }
        // Apply in rule order — mutation happens here only, so the
        // merge order (and any error surfaced) matches the serial walk.
        for (i, slot) in slots.iter_mut().enumerate() {
            match slot.take() {
                Some(batch) => self.apply_feed(i, batch?),
                None => self.feed(i, nil_cost)?,
            }
        }
        Ok(())
    }

    /// Apply one collected [`FeedBatch`] to next rule `i` (coordinator
    /// side of the clique fan-out).
    fn apply_feed(&mut self, i: usize, batch: FeedBatch) {
        let GreedyExecutor { nexts, stats, tel, .. } = self;
        let ns = &mut nexts[i];
        let t0 = tel.profiler.start();
        ns.stage = ns.stage.max(batch.stage_max);
        ns.head_mark = batch.head_len;
        ns.w_used.extend(batch.new_w);
        ns.src_mark = batch.src_len;
        ns.rql.extend_batch(batch.triples);
        stats.queue_peak = stats.queue_peak.max(ns.rql.queue_len());
        tel.profiler.finish(t0, ns.plan.rule_idx, 0, 0);
    }

    /// Push newly derived source facts of next rule `i` into its `Q_r`,
    /// and refresh the rule's stage high-water mark.
    fn feed(&mut self, i: usize, nil_cost: u32) -> Result<(), CoreError> {
        // Fused batch path: harvest the batch read-only (exactly what a
        // clique worker would collect), then apply it — one decode-free
        // sift pass through `Rql::extend_batch`.
        if self.nexts[i].plan.fast_feed && self.config.gamma_batch {
            let t0 = self.tel.profiler.start();
            let batch = collect_feed(&self.nexts[i], &self.db, nil_cost)?;
            let GreedyExecutor { nexts, stats, .. } = self;
            let ns = &mut nexts[i];
            ns.stage = ns.stage.max(batch.stage_max);
            ns.head_mark = batch.head_len;
            ns.w_used.extend(batch.new_w);
            ns.src_mark = batch.src_len;
            ns.rql.extend_batch(batch.triples);
            stats.queue_peak = stats.queue_peak.max(ns.rql.queue_len());
            self.tel.profiler.finish(t0, self.nexts[i].plan.rule_idx, 0, 0);
            return Ok(());
        }
        let GreedyExecutor { nexts, db, stats, tel, .. } = self;
        let ns = &mut nexts[i];
        let t0 = tel.profiler.start();
        let plan = &ns.plan;

        // Track the head relation's max stage (exit rules seed it), and
        // register every head tuple's W projection: the stage variable
        // "associates each tuple with a unique value of the index I,
        // and vice versa" (Section 3) — the W → I direction must also
        // cover facts produced by exit rules, or a chain program can
        // re-commit an exit tuple at a fresh stage forever.
        let head_rel = db.relation(plan.head_pred);
        let head_rows = head_rel.since(ns.head_mark);
        let mut new_w: Vec<Vec<u32>> = Vec::new();
        for r in 0..head_rows.len() {
            match head_rows.try_cell(r, plan.stage_pos).map(decode_ref) {
                Some(Value::Int(s)) => ns.stage = ns.stage.max(*s),
                Some(other) => return Err(CoreError::NonIntegerStage { found: other.to_string() }),
                None => {}
            }
            new_w.push(
                (0..head_rows.arity())
                    .filter(|&c| c != plan.stage_pos)
                    .map(|c| head_rows.cell(r, c))
                    .collect(),
            );
        }
        ns.head_mark = head_rel.len();
        ns.w_used.extend(new_w);

        // The new rows are read in place from the relation's column
        // arenas; the only copy made is the id row that enters `Q_r`.
        let src_rel = db.relation(plan.source_pred);
        let rows = src_rel.since(ns.src_mark);
        ns.src_mark = src_rel.len();

        let Literal::Pos(source) = &plan.rule.body[plan.source_lit] else { unreachable!() };

        // Bindings-free fast path (GBC032 rules, analysis on), per-row
        // variant — taken when the batch kernel is opted out
        // (`GBC_NO_GAMMA_BATCH=1`). Each row's admission is decided by
        // the compiled columnar checks; the cost id IS the cost
        // column's cell and the congruence key is read straight off the
        // arena. Byte-identical to the generic loop below —
        // `match_term_id` would bind each variable to exactly the cell
        // id we read here, and `FeedCheck` reproduces the pre-check
        // comparisons in id space.
        if plan.fast_feed {
            if rows.arity() == source.args.len() {
                let cost_col = plan.cost.map(|(_, col)| col);
                for r in 0..rows.len() {
                    if !plan.feed_checks.iter().all(|c| c.eval(&|col| rows.cell(r, col))) {
                        continue;
                    }
                    let cost = match cost_col {
                        Some(c) => rows.cell(r, c),
                        None => nil_cost,
                    };
                    let key: Vec<u32> = plan.cong_cols.iter().map(|&c| rows.cell(r, c)).collect();
                    ns.rql.insert(key, cost, rows.id_row(r));
                    stats.queue_peak = stats.queue_peak.max(ns.rql.queue_len());
                }
            }
            tel.profiler.finish(t0, ns.plan.rule_idx, 0, 0);
            return Ok(());
        }

        let mut b = Bindings::new(plan.rule.num_vars());
        let mut trail: Vec<VarId> = Vec::new();
        for r in 0..rows.len() {
            for v in trail.drain(..) {
                b.unbind(v);
            }
            let matched = rows.arity() == source.args.len()
                && source
                    .args
                    .iter()
                    .enumerate()
                    .all(|(c, t)| match_term_id(t, rows.cell(r, c), &mut b, &mut trail));
            if !matched {
                continue;
            }
            if !apply_comparisons(&plan.pre_checks, &mut b, &mut trail)? {
                continue;
            }
            let cost = match plan.cost {
                Some((cv, _)) => {
                    let id = b.id_of(cv);
                    if id != DICT_MISS {
                        id
                    } else {
                        let v = b.get(cv).expect("cost variable bound by source match");
                        dictionary::encode(v)
                    }
                }
                None => nil_cost,
            };
            let key: Vec<u32> = plan.cong_cols.iter().map(|&c| rows.cell(r, c)).collect();
            ns.rql.insert(key, cost, rows.id_row(r));
            stats.queue_peak = stats.queue_peak.max(ns.rql.queue_len());
        }
        tel.profiler.finish(t0, ns.plan.rule_idx, 0, 0);
        Ok(())
    }

    /// γ for next rule `i`: pop candidates until one passes every check.
    fn fire_next_rule(&mut self, i: usize) -> Result<bool, CoreError> {
        let tel = self.tel.clone();
        let prov = self.db.provenance().cloned();
        // Split the borrow: take what we need out of `self.nexts[i]`.
        let ns = &mut self.nexts[i];
        if ns.stage == i64::MIN {
            // No committed stage yet (exit facts absent): nothing to do.
            if ns.rql.is_queue_empty() {
                return Ok(false);
            }
            return Err(CoreError::NoGreedyPlan {
                detail: format!(
                    "next rule for `{}` has candidates but no initial stage fact",
                    ns.plan.head_pred
                ),
            });
        }
        let next_stage = ns.stage.checked_add(1).ok_or(CoreError::StepLimit { steps: u64::MAX })?;
        let t0 = tel.profiler.start();
        // γ bucket accounting: everything up to a commit decision is
        // "choose" (pops, re-checks, FD tests, discards); the committed
        // candidate's bookkeeping is "commit". Both nest under the
        // `run/gamma` parent charged by the run loop.
        let t_phase = tel.phases.is_enabled().then(std::time::Instant::now);

        // One scratch frame for the whole retrieve-least loop: the trail
        // rewinds it between pops instead of reallocating per candidate.
        let mut b = Bindings::new(ns.plan.rule.num_vars());
        let mut trail: Vec<VarId> = Vec::new();
        let mut pops: u64 = 0;
        let mut rejected: u64 = 0;
        while let Some(popped) = ns.rql.pop_least() {
            pops += 1;
            tel.metrics.choice_candidates_considered.inc();
            for v in trail.drain(..) {
                b.unbind(v);
            }
            let plan = &ns.plan;
            let Literal::Pos(source) = &plan.rule.body[plan.source_lit] else { unreachable!() };
            let ok = source
                .args
                .iter()
                .zip(popped.row.iter())
                .all(|(t, &id)| match_term_id(t, id, &mut b, &mut trail));
            debug_assert!(ok, "queued row must re-match its source atom");
            b.bind(plan.stage_var, Value::Int(next_stage));
            trail.push(plan.stage_var);

            let stage_ok = apply_comparisons(&plan.pre_checks, &mut b, &mut trail)?
                && apply_comparisons(&plan.post_checks, &mut b, &mut trail)?;
            let conflict = if stage_ok {
                fd_first_conflict_goals(&plan.choice_goals, &ns.memos, &plan.rule, &b)?
            } else {
                None
            };
            if !stage_ok || conflict.is_some() {
                let reason = if stage_ok {
                    tel.metrics.diffchoice_rejections.inc();
                    DiscardReason::DiffChoice
                } else {
                    DiscardReason::StaleStage
                };
                if let Some(arena) = &prov {
                    let src_row = dictionary::decode_row(&popped.row);
                    match conflict {
                        Some((gi, left, attempted, committed)) => arena.record_rejection(
                            plan.rule_idx,
                            gi,
                            "diffchoice",
                            plan.source_pred,
                            &src_row,
                            left,
                            attempted,
                            committed,
                        ),
                        None => arena.record_rejection(
                            plan.rule_idx,
                            NO_GOAL,
                            "stale-stage",
                            plan.source_pred,
                            &src_row,
                            Vec::new(),
                            Vec::new(),
                            Vec::new(),
                        ),
                    }
                }
                rejected += 1;
                tel.metrics.discarded_pops.inc();
                tel.trace_with(|| TraceEvent::Discard {
                    pred: plan.head_pred.to_string(),
                    reason,
                    row: dictionary::decode_row(&popped.row).to_string(),
                });
                ns.rql.discard(popped);
                self.stats.discarded += 1;
                continue;
            }
            let head = instantiate_head(&plan.rule, &b)?;
            // The next-expansion's choice(W, I): one stage per W. The
            // projection is interned here (on the coordinator) so the
            // membership test is an id-row comparison.
            let w: Vec<u32> = head
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != plan.stage_pos)
                .map(|(_, v)| dictionary::encode(v))
                .collect();
            if ns.w_used.contains(&w) {
                if let Some(arena) = &prov {
                    let w_vals: Vec<Value> = head
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != plan.stage_pos)
                        .map(|(_, v)| v.clone())
                        .collect();
                    arena.record_rejection(
                        plan.rule_idx,
                        NO_GOAL,
                        "stage-reuse",
                        plan.head_pred,
                        &dictionary::decode_row(&popped.row),
                        w_vals,
                        vec![Value::Int(next_stage)],
                        Vec::new(),
                    );
                }
                rejected += 1;
                tel.metrics.stage_reuse_rejections.inc();
                tel.metrics.discarded_pops.inc();
                tel.trace_with(|| TraceEvent::Discard {
                    pred: plan.head_pred.to_string(),
                    reason: DiscardReason::StageReuse,
                    row: dictionary::decode_row(&popped.row).to_string(),
                });
                ns.rql.discard(popped);
                self.stats.discarded += 1;
                continue;
            }

            // Commit.
            let t_commit = t_phase.map(|t| {
                let now = std::time::Instant::now();
                tel.phases.add("run/gamma/choose", now - t);
                now
            });
            ns.w_used.insert(w);
            let pairs = eval_goal_pairs(&plan.expanded, &b)?;
            let chosen_args = eval_choice_vars(&plan.expanded, &b)?;
            for (gi, (l, r)) in pairs.iter().take(plan.choice_goals.len()).enumerate() {
                ns.memos[gi].insert(l.clone(), r.clone());
            }
            tel.trace_with(|| TraceEvent::StageCommit {
                pred: plan.head_pred.to_string(),
                stage: next_stage,
                cost: if plan.cost.is_some() {
                    decode_ref(popped.cost).to_string()
                } else {
                    String::new()
                },
                fact: head.to_string(),
            });
            if let Some(arena) = &prov {
                arena.advance_step();
                arena.record_derivation(
                    plan.head_pred,
                    &head,
                    plan.rule_idx,
                    &[(plan.source_pred, dictionary::decode_row(&popped.row))],
                );
                arena.record_commit(plan.rule_idx, plan.head_pred, &head, pairs.clone());
            }
            ns.rql.commit(popped);
            ns.stage = next_stage;
            let rule_idx = ns.plan.rule_idx;
            tel.trace_with(|| TraceEvent::ChoiceAudit {
                rule: rule_idx,
                pred: ns.plan.head_pred.to_string(),
                considered: pops,
                rejected,
            });
            self.db.insert(ns.plan.head_pred, head);
            self.chosen.push(ChosenRecord { rule_idx, pairs, chosen_args });
            self.stats.gamma_steps += 1;
            tel.metrics.gamma_steps.inc();
            tel.profiler.finish(t0, rule_idx, 1, 1);
            if let Some(t) = t_commit {
                tel.phases.add("run/gamma/commit", t.elapsed());
            }
            return Ok(true);
        }
        if let Some(t) = t_phase {
            tel.phases.add("run/gamma/choose", t.elapsed());
        }
        if pops > 0 {
            tel.trace_with(|| TraceEvent::ChoiceAudit {
                rule: ns.plan.rule_idx,
                pred: ns.plan.head_pred.to_string(),
                considered: pops,
                rejected,
            });
        }
        tel.profiler.finish(t0, ns.plan.rule_idx, 0, 0);
        Ok(false)
    }
}

/// Evaluate the comparison literals in order, with `=`-assignment
/// (engine semantics). Returns false when a comparison fails. Variables
/// bound along the way are recorded on `trail` so callers reusing a
/// scratch frame can rewind them.
fn apply_comparisons(
    lits: &[Literal],
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
) -> Result<bool, CoreError> {
    // Small fixpoint: some comparisons may bind variables used by later
    // ones regardless of their syntactic order.
    let mut pending: Vec<&Literal> = lits.iter().collect();
    while !pending.is_empty() {
        let mut progressed = false;
        let mut remaining = Vec::new();
        for lit in pending {
            let Literal::Compare { op, lhs, rhs } = lit else { continue };
            let lv = eval_expr(lhs, b).map_err(CoreError::Engine)?;
            let rv = eval_expr(rhs, b).map_err(CoreError::Engine)?;
            match (lv, rv) {
                (Some(a), Some(c)) => {
                    if !op.eval(a.cmp(&c)) {
                        return Ok(false);
                    }
                    progressed = true;
                }
                (Some(val), None) | (None, Some(val)) if *op == CmpOp::Eq => {
                    let unbound = if eval_expr(lhs, b).map_err(CoreError::Engine)?.is_none() {
                        lhs
                    } else {
                        rhs
                    };
                    match unbound.as_bare_term() {
                        Some(t) => {
                            if !match_term(t, &val, b, trail) {
                                return Ok(false);
                            }
                            progressed = true;
                        }
                        None => remaining.push(lit),
                    }
                }
                _ => remaining.push(lit),
            }
        }
        if !progressed && !remaining.is_empty() {
            return Err(CoreError::NoGreedyPlan {
                detail: "unresolvable comparison chain in next rule".into(),
            });
        }
        pending = remaining;
    }
    Ok(true)
}

fn eval_tuple(rule: &Rule, terms: &[Term], b: &Bindings) -> Result<Vec<Value>, CoreError> {
    terms
        .iter()
        .map(|t| {
            eval_term(t, b).ok_or_else(|| {
                CoreError::Engine(gbc_engine::EngineError::NonGroundHead { rule: rule.to_string() })
            })
        })
        .collect()
}

/// The first conflicting `(goal, left, attempted, committed)` of the
/// on-the-fly diffChoice test over explicit goal lists — `None` means
/// the binding is FD-consistent.
#[allow(clippy::type_complexity)]
fn fd_first_conflict_goals(
    goals: &[(Vec<Term>, Vec<Term>)],
    memos: &[FdMap],
    rule: &Rule,
    b: &Bindings,
) -> Result<Option<(usize, Vec<Value>, Vec<Value>, Vec<Value>)>, CoreError> {
    for (gi, (l, r)) in goals.iter().enumerate() {
        let lv = eval_tuple(rule, l, b)?;
        let rv = eval_tuple(rule, r, b)?;
        if let Some(prev) = memos[gi].get(&lv) {
            if *prev != rv {
                return Ok(Some((gi, lv, rv, prev.clone())));
            }
        }
    }
    Ok(None)
}

/// [`fd_first_conflict_goals`] over a rule's own choice literals.
#[allow(clippy::type_complexity)]
fn fd_first_conflict(
    rule: &Rule,
    memos: &[FdMap],
    b: &Bindings,
) -> Result<Option<(usize, Vec<Value>, Vec<Value>, Vec<Value>)>, CoreError> {
    let goals: Vec<(Vec<Term>, Vec<Term>)> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Choice { left, right } => Some((left.clone(), right.clone())),
            _ => None,
        })
        .collect();
    fd_first_conflict_goals(&goals, memos, rule, b)
}

fn all_pairs_present(rule: &Rule, memos: &[FdMap], b: &Bindings) -> Result<bool, CoreError> {
    let mut gi = 0;
    for lit in &rule.body {
        let Literal::Choice { left, right } = lit else { continue };
        let lv = eval_tuple(rule, left, b)?;
        let rv = eval_tuple(rule, right, b)?;
        if memos[gi].get(&lv) != Some(&rv) {
            return Ok(false);
        }
        gi += 1;
    }
    Ok(true)
}

/// A committed `(left, right)` value pair of one choice goal.
type GoalPair = (Vec<Value>, Vec<Value>);

/// Evaluate every choice goal of `rule` to its (L, R) value pair.
fn eval_goal_pairs(rule: &Rule, b: &Bindings) -> Result<Vec<GoalPair>, CoreError> {
    let mut out = Vec::new();
    for lit in &rule.body {
        let Literal::Choice { left, right } = lit else { continue };
        out.push((eval_tuple(rule, left, b)?, eval_tuple(rule, right, b)?));
    }
    Ok(out)
}

/// Evaluate the rule's choice variables (the `chosen_i` argument tuple).
fn eval_choice_vars(rule: &Rule, b: &Bindings) -> Result<Vec<Value>, CoreError> {
    choice_vars(rule)
        .into_iter()
        .map(|v| {
            b.get(v).cloned().ok_or_else(|| {
                CoreError::Engine(gbc_engine::EngineError::NonGroundHead { rule: rule.to_string() })
            })
        })
        .collect()
}
