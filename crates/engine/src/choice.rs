//! The **Choice Fixpoint** procedure (Sections 2 and 4 of the paper).
//!
//! ```text
//! Choice Fixpoint:
//!   S' := ∅;
//!   repeat  S := S';  S' := Q^∞(γ(S));  until S' = S
//! ```
//!
//! γ is the *one-consequence* operator: among the not-yet-chosen
//! instantiations of the choice rules that are consistent with every
//! functional dependency committed so far (and minimal under any
//! `least` goal), fire exactly one — the [`Chooser`] decides which.
//! `Q^∞` saturates the remaining ("flat") rules with the persistent
//! seminaive driver.
//!
//! Per the paper's implementation note, only the `chosen` predicates
//! are memoised — as one functional-dependency map per `choice` goal —
//! and the `diffChoice` consistency test is generated on the fly by
//! looking a candidate's left-hand tuple up in those maps.

use std::sync::Arc;

use gbc_ast::{Literal, Program, Rule, Symbol, Term, Value};
use gbc_storage::{Database, Row};
use gbc_telemetry::{Metrics, Telemetry, TraceEvent};

use crate::bindings::Bindings;
use crate::chooser::Chooser;
use crate::error::EngineError;
use crate::eval::{eval_term, instantiate_head, parent_rows};
use crate::extrema::{collect_matches_plan, filter_extrema};
use crate::plan::RulePlan;
use crate::seminaive::Seminaive;

/// Tuning for the fixpoint.
#[derive(Clone, Copy, Debug)]
pub struct ChoiceFixpointConfig {
    /// Upper bound on γ steps; exceeded ⇒ [`EngineError::StepLimit`].
    /// Guards against non-terminating programs over function symbols.
    pub max_gamma_steps: u64,
}

impl Default for ChoiceFixpointConfig {
    fn default() -> Self {
        ChoiceFixpointConfig { max_gamma_steps: 10_000_000 }
    }
}

/// One fireable instance of a choice rule.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Index into the choice-rule list.
    pub rule: usize,
    /// The instantiated head.
    pub head: Row,
    /// Per `choice` goal: the (left, right) value tuples committed on fire.
    pub choices: Vec<(Vec<Value>, Vec<Value>)>,
    /// The values of the rule's choice variables (first-occurrence order
    /// across the `choice` goals) — the argument tuple of the
    /// `chosen_i` fact this firing corresponds to in the rewritten
    /// program. Used by `gbc-core` to reconstruct `chosen_i` relations
    /// when validating Theorem 1.
    pub chosen_args: Vec<Value>,
    /// The body rows this instantiation joined over. Only filled when a
    /// provenance arena is attached; excluded from comparisons so the
    /// candidate ordering (and hence γ) is identical with and without
    /// provenance.
    pub parents: Vec<(Symbol, Row)>,
}

/// The fields a [`Candidate`]'s identity and ordering are built from —
/// everything except `parents`, which is observability-only.
type CandidateKey<'a> = (usize, &'a Row, &'a [(Vec<Value>, Vec<Value>)], &'a [Value]);

impl Candidate {
    fn key(&self) -> CandidateKey<'_> {
        (self.rule, &self.head, &self.choices, &self.chosen_args)
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Candidate) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Candidate) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Candidate) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The functional-dependency memo of one `choice` goal.
type FdMap = gbc_storage::FxHashMap<Vec<Value>, Vec<Value>>;

/// The Choice Fixpoint machine. Holds the evolving database, the
/// chosen-FD memos, and the flat-rule saturator. Cloneable so the
/// exhaustive enumerator can branch.
#[derive(Debug, Clone)]
pub struct ChoiceFixpoint {
    choice_rules: Vec<Rule>,
    /// Original-program rule index per choice rule (for provenance,
    /// profiling and audit events).
    choice_rule_ids: Vec<usize>,
    /// Head predicate of each choice rule (cached).
    choice_heads: Vec<Symbol>,
    /// Join plans of the choice rules, compiled once at construction;
    /// every γ step re-executes them instead of re-deriving the literal
    /// order (`candidates` takes `&self`, so the cache is eager).
    choice_plans: Vec<Arc<RulePlan>>,
    flat: Seminaive,
    /// `memos[rule][goal]` — one FD map per choice goal per rule
    /// (distinct `chosen_i`, per the paper's footnote 1).
    memos: Vec<Vec<FdMap>>,
    db: Database,
    config: ChoiceFixpointConfig,
    steps: u64,
    /// Log of fired candidates, in firing order.
    committed: Vec<Candidate>,
    /// Instrumentation bundle: counters (γ steps), optional trace sink
    /// (audit events) and optional per-rule profiler. Forwarded to the
    /// database and the flat-rule saturator on attach.
    tel: Telemetry,
}

impl ChoiceFixpoint {
    /// Partition `program` into choice rules and flat rules and load
    /// `edb` plus the program's facts. The program must be `next`-free
    /// (expand first — `gbc-core`) and valid.
    pub fn new(program: &Program, edb: &Database) -> Result<ChoiceFixpoint, EngineError> {
        Self::with_config(program, edb, ChoiceFixpointConfig::default())
    }

    /// [`ChoiceFixpoint::new`] with explicit limits.
    pub fn with_config(
        program: &Program,
        edb: &Database,
        config: ChoiceFixpointConfig,
    ) -> Result<ChoiceFixpoint, EngineError> {
        program.validate()?;
        let mut db = edb.clone();
        let mut choice_rules = Vec::new();
        let mut choice_rule_ids = Vec::new();
        let mut flat_rules = Vec::new();
        let mut flat_ids = Vec::new();
        for (i, r) in program.rules.iter().enumerate() {
            if r.has_next() {
                return Err(EngineError::UnexpandedNext { rule: r.to_string() });
            }
            if r.is_fact() {
                let row = r
                    .head
                    .args
                    .iter()
                    .map(|t| t.as_value().expect("validated ground fact"))
                    .collect();
                db.insert(r.head.pred, row);
            } else if r.has_choice() {
                choice_rules.push(r.clone());
                choice_rule_ids.push(i);
            } else {
                flat_rules.push(r.clone());
                flat_ids.push(i);
            }
        }
        let memos = choice_rules
            .iter()
            .map(|r| {
                let goals = r.body.iter().filter(|l| matches!(l, Literal::Choice { .. })).count();
                vec![FdMap::default(); goals]
            })
            .collect();
        let choice_heads = choice_rules.iter().map(|r| r.head.pred).collect();
        let choice_plans = choice_rules
            .iter()
            .map(|r| RulePlan::compile(r).map(Arc::new))
            .collect::<Result<_, _>>()?;
        let mut flat = Seminaive::new(flat_rules);
        flat.set_rule_ids(flat_ids);
        Ok(ChoiceFixpoint {
            choice_rules,
            choice_rule_ids,
            choice_heads,
            choice_plans,
            flat,
            memos,
            db,
            config,
            steps: 0,
            committed: Vec::new(),
            tel: Telemetry::counters_only(),
        })
    }

    /// Attach a counter registry: γ commits, seminaive deltas, and
    /// index traffic of the evolving database all report to it.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.db.set_metrics(Arc::clone(&metrics));
        self.flat.set_metrics(Arc::clone(&metrics));
        self.tel.metrics = metrics;
    }

    /// Attach a full instrumentation bundle: counters, and — when
    /// present — the trace sink (audit + rule-fired events) and the
    /// per-rule profiler, forwarded to the flat-rule saturator.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.db.set_metrics(Arc::clone(&tel.metrics));
        self.flat.set_metrics(Arc::clone(&tel.metrics));
        self.flat.set_trace(tel.trace.clone());
        self.flat.set_profiler(tel.profiler.is_enabled().then(|| Arc::clone(&tel.profiler)));
        self.tel = tel;
    }

    /// The current database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consume the machine, yielding its database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Number of γ steps taken so far.
    pub fn gamma_steps(&self) -> u64 {
        self.steps
    }

    /// The committed `chosen` FD pairs, flattened as
    /// `(rule, goal, left, right)` — used to reconstruct the
    /// `chosen_i`/`diffChoice_i` facts of the rewritten program when
    /// checking stability (Theorem 1).
    pub fn chosen_pairs(&self) -> Vec<(usize, usize, Vec<Value>, Vec<Value>)> {
        let mut out = Vec::new();
        for (ri, goals) in self.memos.iter().enumerate() {
            for (gi, map) in goals.iter().enumerate() {
                for (l, r) in map {
                    out.push((ri, gi, l.clone(), r.clone()));
                }
            }
        }
        out.sort();
        out
    }

    /// Saturate the flat rules (`Q^∞`).
    pub fn saturate_flat(&mut self) -> Result<u64, EngineError> {
        self.flat.saturate(&mut self.db)
    }

    /// Compute the current γ candidate set: FD-consistent, extrema-
    /// minimal, not-yet-fired instances of every choice rule, sorted
    /// and deduplicated.
    pub fn candidates(&self) -> Result<Vec<Candidate>, EngineError> {
        let prov = self.db.provenance().cloned();
        let mut out = Vec::new();
        for (ri, rule) in self.choice_rules.iter().enumerate() {
            let rule_id = self.choice_rule_ids[ri];
            let t0 = self.tel.profiler.start();
            self.tel.metrics.plan_cache_hits.inc();
            self.tel.profiler.record_plan_hit(rule_id);
            let frames = collect_matches_plan(&self.db, rule, &self.choice_plans[ri], None)?;
            let considered = frames.len() as u64;
            self.tel.metrics.choice_candidates_considered.add(considered);
            // diffChoice on the fly: drop frames contradicting a memo.
            let mut consistent = Vec::new();
            let mut rejected: u64 = 0;
            for b in frames {
                match self.fd_conflict(ri, rule, &b)? {
                    None => consistent.push(b),
                    Some((gi, left, attempted, committed)) => {
                        rejected += 1;
                        self.tel.metrics.diffchoice_rejections.inc();
                        if let Some(arena) = &prov {
                            let head = instantiate_head(rule, &b)?;
                            arena.record_rejection(
                                rule_id,
                                gi,
                                "diffchoice",
                                rule.head.pred,
                                &head,
                                left,
                                attempted,
                                committed,
                            );
                        }
                    }
                }
            }
            if considered > 0 {
                self.tel.trace_with(|| TraceEvent::ChoiceAudit {
                    rule: rule_id,
                    pred: rule.head.pred.to_string(),
                    considered,
                    rejected,
                });
            }
            // least/most among the FD-consistent instantiations (the
            // rewriting order of Section 2: choice first, then least).
            let minimal = filter_extrema(rule, consistent)?;
            for b in &minimal {
                let cand = self.make_candidate(ri, rule, b, prov.is_some())?;
                if self.is_new(&cand) {
                    out.push(cand);
                }
            }
            self.tel.profiler.finish(t0, rule_id, 0, 0);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Fire one candidate: insert its head and commit its FD pairs.
    pub fn commit(&mut self, cand: &Candidate) {
        let rule_id = self.choice_rule_ids[cand.rule];
        let t0 = self.tel.profiler.start();
        if let Some(arena) = self.db.provenance().cloned() {
            arena.advance_step();
            arena.record_derivation(
                self.choice_heads[cand.rule],
                &cand.head,
                rule_id,
                &cand.parents,
            );
            arena.record_commit(
                rule_id,
                self.choice_heads[cand.rule],
                &cand.head,
                cand.choices.clone(),
            );
        }
        self.db.insert(self.choice_heads[cand.rule], cand.head.clone());
        for (gi, (l, r)) in cand.choices.iter().enumerate() {
            self.memos[cand.rule][gi].insert(l.clone(), r.clone());
        }
        self.committed.push(cand.clone());
        self.steps += 1;
        self.tel.metrics.gamma_steps.inc();
        self.tel.profiler.finish(t0, rule_id, 1, 1);
    }

    /// The fired candidates, in order. Index [`Candidate::rule`] refers
    /// to [`ChoiceFixpoint::choice_rules`].
    pub fn committed(&self) -> &[Candidate] {
        &self.committed
    }

    /// The choice rules, in program order (the `rule` index space of
    /// candidates).
    pub fn choice_rules(&self) -> &[Rule] {
        &self.choice_rules
    }

    /// Run the fixpoint to completion under `chooser`.
    pub fn run(&mut self, chooser: &mut dyn Chooser) -> Result<&Database, EngineError> {
        loop {
            self.saturate_flat()?;
            let cands = self.candidates()?;
            if cands.is_empty() {
                return Ok(&self.db);
            }
            if self.steps >= self.config.max_gamma_steps {
                return Err(EngineError::StepLimit { steps: self.steps });
            }
            let pick = chooser.pick(cands.len());
            self.commit(&cands[pick]);
        }
    }

    fn eval_tuple(
        &self,
        rule: &Rule,
        terms: &[Term],
        b: &Bindings,
    ) -> Result<Vec<Value>, EngineError> {
        terms
            .iter()
            .map(|t| {
                eval_term(t, b).ok_or_else(|| EngineError::NonGroundHead { rule: rule.to_string() })
            })
            .collect()
    }

    /// First `choice` goal whose memoised FD the binding contradicts,
    /// as `(goal, left, attempted, committed)` — `None` means the
    /// binding is diffChoice-consistent.
    #[allow(clippy::type_complexity)]
    fn fd_conflict(
        &self,
        ri: usize,
        rule: &Rule,
        b: &Bindings,
    ) -> Result<Option<(usize, Vec<Value>, Vec<Value>, Vec<Value>)>, EngineError> {
        let mut gi = 0;
        for lit in &rule.body {
            let Literal::Choice { left, right } = lit else { continue };
            let l = self.eval_tuple(rule, left, b)?;
            let r = self.eval_tuple(rule, right, b)?;
            if let Some(prev) = self.memos[ri][gi].get(&l) {
                if *prev != r {
                    return Ok(Some((gi, l, r, prev.clone())));
                }
            }
            gi += 1;
        }
        Ok(None)
    }

    fn make_candidate(
        &self,
        ri: usize,
        rule: &Rule,
        b: &Bindings,
        with_parents: bool,
    ) -> Result<Candidate, EngineError> {
        let head = instantiate_head(rule, b)?;
        let mut choices = Vec::new();
        for lit in &rule.body {
            let Literal::Choice { left, right } = lit else { continue };
            choices.push((self.eval_tuple(rule, left, b)?, self.eval_tuple(rule, right, b)?));
        }
        let chosen_args = choice_var_values(rule, b)?;
        let parents = if with_parents { parent_rows(rule, b) } else { Vec::new() };
        Ok(Candidate { rule: ri, head, choices, chosen_args, parents })
    }

    /// The variables of a rule's `choice` goals, in first-occurrence
    /// order — the argument list of the corresponding `chosen_i`
    /// predicate in the rewritten program.
    pub fn choice_vars(rule: &Rule) -> Vec<gbc_ast::VarId> {
        choice_vars(rule)
    }

    /// `T_C(I) − I`: a candidate is new if its head fact or any of its
    /// FD commitments is not yet present.
    fn is_new(&self, cand: &Candidate) -> bool {
        if !self.db.contains(self.choice_heads[cand.rule], &cand.head) {
            return true;
        }
        cand.choices
            .iter()
            .enumerate()
            .any(|(gi, (l, r))| self.memos[cand.rule][gi].get(l) != Some(r))
    }
}

/// First-occurrence-ordered variables of the `choice` goals of a rule.
fn choice_vars(rule: &Rule) -> Vec<gbc_ast::VarId> {
    let mut out = Vec::new();
    for lit in &rule.body {
        let Literal::Choice { left, right } = lit else { continue };
        for t in left.iter().chain(right) {
            t.collect_vars(&mut out);
        }
    }
    let mut seen = Vec::with_capacity(out.len());
    out.retain(|v| {
        if seen.contains(v) {
            false
        } else {
            seen.push(*v);
            true
        }
    });
    out
}

/// Evaluate the choice variables of `rule` under `b`.
fn choice_var_values(rule: &Rule, b: &Bindings) -> Result<Vec<Value>, EngineError> {
    choice_vars(rule)
        .into_iter()
        .map(|v| {
            b.get(v).cloned().ok_or_else(|| EngineError::NonGroundHead { rule: rule.to_string() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chooser::{DeterministicFirst, Scripted};
    use gbc_ast::Atom;
    use std::collections::HashMap;

    /// The paper's Example 1: one student per course and vice versa.
    fn example1() -> (Program, Database) {
        let rule = Rule::new(
            Atom::new("a_st", vec![Term::var(0), Term::var(1)]),
            vec![
                Literal::pos("takes", vec![Term::var(0), Term::var(1)]),
                Literal::Choice { left: vec![Term::var(1)], right: vec![Term::var(0)] },
                Literal::Choice { left: vec![Term::var(0)], right: vec![Term::var(1)] },
            ],
            vec!["St".into(), "Crs".into()],
        );
        let mut edb = Database::new();
        for (s, c) in [("andy", "engl"), ("mark", "engl"), ("ann", "math"), ("mark", "math")] {
            edb.insert_values("takes", vec![Value::sym(s), Value::sym(c)]);
        }
        (Program::from_rules(vec![rule]), edb)
    }

    #[test]
    fn choice_model_satisfies_both_fds() {
        let (p, edb) = example1();
        let mut cf = ChoiceFixpoint::new(&p, &edb).unwrap();
        let m = cf.run(&mut DeterministicFirst).unwrap();
        let a_st = Symbol::intern("a_st");
        let rows = m.facts_of(a_st);
        assert_eq!(rows.len(), 2, "two courses ⇒ two assignments: {rows:?}");
        // FD Crs → St and St → Crs.
        let mut by_course = HashMap::new();
        let mut by_student = HashMap::new();
        for r in &rows {
            assert!(by_course.insert(r[1].clone(), r[0].clone()).is_none());
            assert!(by_student.insert(r[0].clone(), r[1].clone()).is_none());
        }
    }

    #[test]
    fn different_choosers_reach_different_models() {
        let (p, edb) = example1();
        let run = |chooser: &mut dyn Chooser| {
            let mut cf = ChoiceFixpoint::new(&p, &edb).unwrap();
            cf.run(chooser).unwrap().canonical_form()
        };
        let first = run(&mut DeterministicFirst);
        let models: std::collections::HashSet<String> = (0..6)
            .map(|k| run(&mut Scripted::new(vec![k % 3, k / 2])))
            .chain(std::iter::once(first))
            .collect();
        // The paper lists exactly three choice models for these facts.
        assert!(models.len() >= 2, "expected multiple models, got {models:?}");
        assert!(models.len() <= 3);
    }

    #[test]
    fn flat_rules_fire_between_choices() {
        // picked(X) <- item(X, C), choice((), (X)).   (pick exactly one item)
        // done <- picked(X).
        let rules = vec![
            Rule::new(
                Atom::new("picked", vec![Term::var(0)]),
                vec![
                    Literal::pos("item", vec![Term::var(0), Term::var(1)]),
                    Literal::Choice { left: vec![], right: vec![Term::var(0)] },
                ],
                vec!["X".into(), "C".into()],
            ),
            Rule::new(
                Atom::new("done", vec![]),
                vec![Literal::pos("picked", vec![Term::var(0)])],
                vec!["X".into()],
            ),
        ];
        let mut edb = Database::new();
        edb.insert_values("item", vec![Value::sym("a"), Value::int(1)]);
        edb.insert_values("item", vec![Value::sym("b"), Value::int(2)]);
        let p = Program::from_rules(rules);
        let mut cf = ChoiceFixpoint::new(&p, &edb).unwrap();
        let m = cf.run(&mut DeterministicFirst).unwrap();
        assert_eq!(m.count(Symbol::intern("picked")), 1, "choice((),(X)) picks exactly one");
        assert_eq!(m.count(Symbol::intern("done")), 1);
    }

    #[test]
    fn least_restricts_gamma_candidates() {
        // cheapest(X) <- item(X, C), least(C), choice((), (X)).
        let rule = Rule::new(
            Atom::new("cheapest", vec![Term::var(0)]),
            vec![
                Literal::pos("item", vec![Term::var(0), Term::var(1)]),
                Literal::Least { cost: Term::var(1), group: vec![] },
                Literal::Choice { left: vec![], right: vec![Term::var(0)] },
            ],
            vec!["X".into(), "C".into()],
        );
        let mut edb = Database::new();
        edb.insert_values("item", vec![Value::sym("pricey"), Value::int(9)]);
        edb.insert_values("item", vec![Value::sym("cheap"), Value::int(1)]);
        let p = Program::from_rules(vec![rule]);
        let mut cf = ChoiceFixpoint::new(&p, &edb).unwrap();
        let m = cf.run(&mut DeterministicFirst).unwrap();
        assert_eq!(
            m.facts_of(Symbol::intern("cheapest")),
            vec![Row::new(vec![Value::sym("cheap")])]
        );
    }

    #[test]
    fn recursive_choice_builds_a_spanning_tree() {
        // Example 3: st(nil, a, 0). st(X, Y, C) <- st(_, X, _), g(X, Y, C), choice(Y, (X, C)).
        // With the root guard Y ≠ a: the exit fact does not register in
        // the choice FD, so without the guard the source node could be
        // re-entered once (see DESIGN.md).
        let mut p = Program::new();
        p.push_fact("st", vec![Value::Nil, Value::sym("a"), Value::int(0)]);
        p.push(Rule::new(
            Atom::new("st", vec![Term::var(0), Term::var(1), Term::var(2)]),
            vec![
                Literal::pos("st", vec![Term::var(3), Term::var(0), Term::var(4)]),
                Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)]),
                Literal::cmp(
                    gbc_ast::CmpOp::Ne,
                    gbc_ast::term::Expr::var(1),
                    gbc_ast::term::Expr::Term(Term::sym("a")),
                ),
                Literal::Choice {
                    left: vec![Term::var(1)],
                    right: vec![Term::var(0), Term::var(2)],
                },
            ],
            vec!["X".into(), "Y".into(), "C".into(), "_".into(), "_2".into()],
        ));
        let mut edb = Database::new();
        // Undirected square a-b-c-d stored as directed pairs.
        for (x, y, c) in [
            ("a", "b", 1),
            ("b", "a", 1),
            ("b", "c", 2),
            ("c", "b", 2),
            ("c", "d", 3),
            ("d", "c", 3),
            ("a", "d", 4),
            ("d", "a", 4),
        ] {
            edb.insert_values("g", vec![Value::sym(x), Value::sym(y), Value::int(c)]);
        }
        let mut cf = ChoiceFixpoint::new(&p, &edb).unwrap();
        let m = cf.run(&mut DeterministicFirst).unwrap();
        let st = Symbol::intern("st");
        // Every node reached exactly once: |st| = 4 (n nodes incl. root via nil).
        let rows = m.facts_of(st);
        assert_eq!(rows.len(), 4, "{rows:?}");
        let mut targets: Vec<String> = rows.iter().map(|r| r[1].to_string()).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 4, "each node entered exactly once");
    }

    #[test]
    fn step_limit_guards_runaway_programs() {
        // grow(s(X)) is not expressible without function-symbol heads in
        // this dialect; emulate unbounded growth with arithmetic through
        // a choice rule: n(J) <- n(I), J = I + 1, choice(J, I).
        let rule = Rule::new(
            Atom::new("n", vec![Term::var(1)]),
            vec![
                Literal::pos("n", vec![Term::var(0)]),
                Literal::cmp(
                    gbc_ast::CmpOp::Eq,
                    gbc_ast::term::Expr::var(1),
                    gbc_ast::term::Expr::binary(
                        gbc_ast::term::ArithOp::Add,
                        gbc_ast::term::Expr::var(0),
                        gbc_ast::term::Expr::int(1),
                    ),
                ),
                Literal::Choice { left: vec![Term::var(1)], right: vec![Term::var(0)] },
            ],
            vec!["I".into(), "J".into()],
        );
        let mut p = Program::from_rules(vec![rule]);
        p.push_fact("n", vec![Value::int(0)]);
        let mut cf = ChoiceFixpoint::with_config(
            &p,
            &Database::new(),
            ChoiceFixpointConfig { max_gamma_steps: 50 },
        )
        .unwrap();
        assert!(matches!(cf.run(&mut DeterministicFirst), Err(EngineError::StepLimit { .. })));
    }
}
