//! The fact store: predicate symbol → relation.

use std::collections::BTreeMap;
use std::sync::Arc;

use gbc_ast::{Symbol, Value};
use gbc_telemetry::Metrics;

use crate::provenance::ProvenanceArena;
use crate::relation::Relation;
use crate::tuple::Row;

/// A database instance. Relations are keyed by predicate [`Symbol`];
/// iteration over predicates is in symbol (name) order, which keeps
/// printed models and test expectations stable.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: BTreeMap<Symbol, Relation>,
    /// Returned by [`Database::relation`] for absent predicates, so
    /// lookups never allocate or panic.
    empty: Relation,
    /// Counter registry handed to every relation (existing and future).
    metrics: Option<Arc<Metrics>>,
    /// Derivation recorder. Clones share it, so attaching an arena to
    /// the EDB before a run flows into every executor-cloned database.
    provenance: Option<Arc<ProvenanceArena>>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Attach a counter registry: every current relation reports index
    /// traffic to it, as will relations created later.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        for rel in self.relations.values_mut() {
            rel.set_metrics(Arc::clone(&metrics));
        }
        self.metrics = Some(metrics);
    }

    /// Attach a provenance arena. The executors consult
    /// [`Database::provenance`] and record derivations when present.
    pub fn set_provenance(&mut self, arena: Arc<ProvenanceArena>) {
        self.provenance = Some(arena);
    }

    /// The attached provenance arena, if any.
    pub fn provenance(&self) -> Option<&Arc<ProvenanceArena>> {
        self.provenance.as_ref()
    }

    fn fresh_relation(metrics: &Option<Arc<Metrics>>) -> Relation {
        let mut rel = Relation::new();
        if let Some(m) = metrics {
            rel.set_metrics(Arc::clone(m));
        }
        rel
    }

    /// Insert `pred(row)`. Returns `false` on duplicate.
    pub fn insert(&mut self, pred: Symbol, row: Row) -> bool {
        let metrics = &self.metrics;
        self.relations.entry(pred).or_insert_with(|| Database::fresh_relation(metrics)).insert(row)
    }

    /// Insert from plain values.
    pub fn insert_values(&mut self, pred: impl Into<Symbol>, values: Vec<Value>) -> bool {
        self.insert(pred.into(), Row::new(values))
    }

    /// The relation for `pred`, or an empty relation if absent.
    pub fn relation(&self, pred: Symbol) -> &Relation {
        self.relations.get(&pred).unwrap_or(&self.empty)
    }

    /// Mutable relation handle (creates it if missing).
    pub fn relation_mut(&mut self, pred: Symbol) -> &mut Relation {
        let metrics = &self.metrics;
        self.relations.entry(pred).or_insert_with(|| Database::fresh_relation(metrics))
    }

    /// Does the database contain the fact `pred(row)`?
    pub fn contains(&self, pred: Symbol, row: &Row) -> bool {
        self.relations.get(&pred).is_some_and(|r| r.contains(row))
    }

    /// All predicates with at least one fact, in name order.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.relations.keys().copied()
    }

    /// Row count for one predicate.
    pub fn count(&self, pred: Symbol) -> usize {
        self.relations.get(&pred).map_or(0, Relation::len)
    }

    /// Total fact count.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// All facts of one predicate as decoded rows — convenience for
    /// model comparison in tests.
    pub fn facts_of(&self, pred: Symbol) -> Vec<Row> {
        self.relation(pred).iter().collect()
    }

    /// Iterate over every fact in the database, decoded (a boundary
    /// operation — storage holds dictionary ids).
    pub fn iter_all(&self) -> impl Iterator<Item = (Symbol, Row)> + '_ {
        self.relations.iter().flat_map(|(&p, rel)| rel.iter().map(move |r| (p, r)))
    }

    /// Render the database as sorted ground facts, one per line —
    /// the canonical form used in golden tests.
    pub fn canonical_form(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.total_facts());
        for (p, rel) in &self.relations {
            let mut rows: Vec<Row> = rel.iter().collect();
            rows.sort();
            for r in rows {
                if r.arity() == 0 {
                    lines.push(format!("{p}."));
                } else {
                    lines.push(format!("{p}{r}."));
                }
            }
        }
        lines.join("\n")
    }
}

impl std::fmt::Display for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical_form())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        assert!(db.insert_values("g", vec![Value::sym("a"), Value::sym("b"), Value::int(1)]));
        assert!(!db.insert_values("g", vec![Value::sym("a"), Value::sym("b"), Value::int(1)]));
        let g = Symbol::intern("g");
        assert_eq!(db.count(g), 1);
        assert!(db.contains(g, &Row::new(vec![Value::sym("a"), Value::sym("b"), Value::int(1)])));
    }

    #[test]
    fn missing_relation_is_empty_not_panic() {
        let db = Database::new();
        let nope = Symbol::intern("no_such_pred");
        assert_eq!(db.relation(nope).len(), 0);
        assert_eq!(db.count(nope), 0);
    }

    #[test]
    fn canonical_form_is_sorted_and_stable() {
        let mut db = Database::new();
        db.insert_values("b", vec![Value::int(2)]);
        db.insert_values("b", vec![Value::int(1)]);
        db.insert_values("a", vec![Value::sym("x")]);
        assert_eq!(db.canonical_form(), "a(x).\nb(1).\nb(2).");
    }

    #[test]
    fn total_facts_sums_relations() {
        let mut db = Database::new();
        db.insert_values("p", vec![Value::int(1)]);
        db.insert_values("q", vec![Value::int(1)]);
        db.insert_values("q", vec![Value::int(2)]);
        assert_eq!(db.total_facts(), 3);
        let preds: Vec<String> = db.predicates().map(|s| s.to_string()).collect();
        assert_eq!(preds, vec!["p", "q"]);
    }

    #[test]
    fn zero_arity_facts_render_bare() {
        let mut db = Database::new();
        db.insert_values("done", vec![]);
        assert_eq!(db.canonical_form(), "done.");
    }
}
