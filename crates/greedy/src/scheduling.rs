//! Job sequencing with deadlines, declaratively — one of the "several
//! scheduling algorithms" the paper lists among its stage-stratified
//! examples (Section 5), and a `most` workout for the executor (the
//! paper's dual of `least`, used in Example 8).
//!
//! ```text
//! sched(nil, 0, 0).
//! sched(J, S, I) <- next(I), cand(J, P, S, W), most(W, I),
//!                   choice(J, S), choice(S, J).
//! cand(J, P, S, W) <- job(J, P, D), slot(S), S <= D, W = (P * 100000) + S.
//! ```
//!
//! `cand` enumerates every (job, feasible slot) pair with a composite
//! weight `W` ordering lexicographically by (profit, slot). At each
//! stage γ retrieves the maximal `W`: the highest-profit unscheduled
//! job paired with its **latest** still-free slot (taken slots fail
//! `choice(S, J)` and fall to `R_r`, so the next pop offers the next
//! slot down). That is exactly the optimal greedy — the feasible sets
//! form a matroid, connecting to the paper's Section 7 programme of
//! recognising greedy-solvable problems by matroid structure.
//!
//! The composite-weight encoding requires `slot ≤ 100000` — an explicit
//! workload bound, documented here because the dialect has single-term
//! extremum costs.

use gbc_ast::{Symbol, Value};
use gbc_baselines::scheduling::Job;
use gbc_core::{compile, Compiled, CoreError, GreedyRun};
use gbc_storage::Database;

/// The declarative job-sequencing program.
pub const PROGRAM: &str = "sched(nil, 0, 0).
sched(J, S, I) <- next(I), cand(J, P, S, W), most(W, I), choice(J, S), choice(S, J).
cand(J, P, S, W) <- job(J, P, D), slot(S), S <= D, W = (P * 100000) + S.";

/// Compile the scheduling program.
pub fn compiled() -> Compiled {
    let program = gbc_parser::parse_program(PROGRAM).expect("static program text");
    compile(program).expect("job sequencing is stage-stratified")
}

/// Encode jobs as `job(J, P, D)` facts plus `slot(1..=max_deadline)`.
pub fn edb(jobs: &[Job]) -> Database {
    let mut db = Database::new();
    let max_slot = jobs.iter().map(|j| j.deadline).max().unwrap_or(0);
    for j in jobs {
        db.insert_values(
            "job",
            vec![
                Value::int(i64::from(j.id)),
                Value::int(j.profit),
                Value::int(i64::from(j.deadline)),
            ],
        );
    }
    for s in 1..=max_slot {
        db.insert_values("slot", vec![Value::int(i64::from(s))]);
    }
    db
}

/// Decode `(job, slot)` assignments in stage order.
pub fn decode(run: &GreedyRun) -> Vec<(u32, u32)> {
    let mut rows = run.db.facts_of(Symbol::intern("sched"));
    rows.sort_by_key(|r| r[2].as_int().unwrap_or(i64::MAX));
    rows.iter().filter_map(|r| Some((r[0].as_int()? as u32, r[1].as_int()? as u32))).collect()
}

/// Total profit of a run's schedule.
pub fn total_profit(jobs: &[Job], schedule: &[(u32, u32)]) -> i64 {
    schedule.iter().map(|&(id, _)| jobs.iter().find(|j| j.id == id).map_or(0, |j| j.profit)).sum()
}

/// Schedule `jobs` with the greedy executor.
pub fn run_greedy(jobs: &[Job]) -> Result<Vec<(u32, u32)>, CoreError> {
    let run = compiled().run_greedy(&edb(jobs))?;
    Ok(decode(&run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::scheduling::{is_valid_schedule, job_sequencing, optimal_profit_bruteforce};
    use gbc_core::ProgramClass;
    use gbc_telemetry::rng::Rng;

    #[test]
    fn classifies_and_plans_with_most() {
        let c = compiled();
        assert_eq!(*c.class(), ProgramClass::StageStratified { alternating: true });
        assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    }

    #[test]
    fn textbook_instance_is_optimal() {
        let jobs = vec![
            Job::new(0, 100, 2),
            Job::new(1, 19, 1),
            Job::new(2, 27, 2),
            Job::new(3, 25, 1),
            Job::new(4, 15, 3),
        ];
        let sched = run_greedy(&jobs).unwrap();
        assert!(is_valid_schedule(&jobs, &sched), "{sched:?}");
        assert_eq!(total_profit(&jobs, &sched), 142);
    }

    #[test]
    fn matches_the_procedural_greedy_exactly() {
        let jobs = vec![
            Job::new(0, 20, 1),
            Job::new(1, 15, 2),
            Job::new(2, 10, 2),
            Job::new(3, 5, 3),
            Job::new(4, 1, 3),
        ];
        let decl = run_greedy(&jobs).unwrap();
        let (base, base_profit) = job_sequencing(&jobs);
        let mut d = decl.clone();
        let mut b = base;
        d.sort_unstable();
        b.sort_unstable();
        assert_eq!(d, b);
        assert_eq!(total_profit(&jobs, &decl), base_profit);
    }

    #[test]
    fn random_instances_reach_the_bruteforce_optimum() {
        let mut rng = Rng::new(99);
        for round in 0..12 {
            let n = 1 + rng.below(9) as u32;
            let jobs: Vec<Job> = (0..n)
                .map(|i| Job::new(i, rng.range_i64(1, 59), rng.range_i64(1, 5) as u32))
                .collect();
            let sched = run_greedy(&jobs).unwrap();
            assert!(is_valid_schedule(&jobs, &sched), "round {round}: {jobs:?}");
            assert_eq!(
                total_profit(&jobs, &sched),
                optimal_profit_bruteforce(&jobs),
                "round {round}: {jobs:?}"
            );
        }
    }

    #[test]
    fn latest_free_slot_is_chosen() {
        // One job, deadline 3: must land in slot 3, not slot 1.
        let jobs = vec![Job::new(0, 10, 3)];
        let sched = run_greedy(&jobs).unwrap();
        assert_eq!(sched, vec![(0, 3)]);
    }

    #[test]
    fn no_jobs_schedules_nothing() {
        assert!(run_greedy(&[]).unwrap().is_empty());
    }
}
