//! Property tests: generated programs survive the print → parse cycle.

use gbc_ast::{Atom, CmpOp, Literal, Program, Rule, Term};
use gbc_ast::term::Expr;
use proptest::prelude::*;

/// Variable names V0..V5, predicate names from a small pool.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..6).prop_map(Term::var),
        any::<i32>().prop_map(|i| Term::int(i.into())),
        prop_oneof![Just("a"), Just("b"), Just("nodeX")].prop_map(Term::sym),
    ]
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (
        prop_oneof![Just("p"), Just("q"), Just("g"), Just("edge")],
        prop::collection::vec(term_strategy(), 0..4),
    )
        .prop_map(|(name, args)| Atom::new(name, args))
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        atom_strategy().prop_map(Literal::Pos),
        atom_strategy().prop_map(Literal::Neg),
        (term_strategy(), term_strategy()).prop_map(|(a, b)| Literal::Compare {
            op: CmpOp::Lt,
            lhs: Expr::Term(a),
            rhs: Expr::Term(b),
        }),
        (
            prop::collection::vec(term_strategy(), 0..3),
            prop::collection::vec(term_strategy(), 0..3),
        )
            .prop_map(|(left, right)| Literal::Choice { left, right }),
        (term_strategy(), prop::collection::vec(term_strategy(), 0..2))
            .prop_map(|(cost, group)| Literal::Least { cost, group }),
    ]
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (atom_strategy(), prop::collection::vec(literal_strategy(), 0..5)).prop_map(|(head, body)| {
        Rule::new(head, body, (0..6).map(|i| format!("V{i}")).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The printed form of any rule reparses, and reprinting the parse
    /// is a fixpoint. (Rules here need not be safe — printing is purely
    /// syntactic.)
    #[test]
    fn print_parse_is_a_fixpoint(rules in prop::collection::vec(rule_strategy(), 1..5)) {
        let p1 = Program::from_rules(rules);
        let s1 = p1.to_string();
        let p2 = gbc_parser::parse_program(&s1)
            .unwrap_or_else(|e| panic!("printed program must reparse: {e}\n{s1}"));
        let s2 = p2.to_string();
        prop_assert_eq!(s1, s2);
    }
}
