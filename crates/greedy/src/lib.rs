//! # gbc-greedy
//!
//! The example programs of *Greedy by Choice* (PODS 1992) packaged as
//! typed Rust APIs over the `gbc-core` executor, together with the
//! seeded workload generators used by the benchmark harness.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`student`] | Examples 1–2: one student per course (choice models) |
//! | [`spanning`] | Example 3: non-deterministic spanning tree |
//! | [`prim`] | Example 4: Prim's minimum spanning tree |
//! | [`sorting`] | Example 5: sorting a relation |
//! | [`huffman`] | Example 6: Huffman trees |
//! | [`matching`] | Example 7: greedy min-cost maximal matching |
//! | [`tsp`] | Section 5: greedy TSP chains ("sub-optimals") |
//! | [`scheduling`] | Section 5: job sequencing with deadlines (`most`) |
//! | [`kruskal`] | Example 8: Kruskal (outside strict stage stratification) |
//! | [`workload`] | Seeded graph/relation/frequency generators |
//!
//! Every wrapper exposes the *program text* (so callers can inspect,
//! reclassify or re-run it), a loader from plain Rust data to an EDB,
//! a `run` on the greedy executor, and a decoder back to plain data.
//! Where the paper's program as printed has a gap (the spanning-tree
//! root re-entry; Huffman's unsafe `¬subtree` guards; Kruskal's
//! non-stage-stratified views), the deviation is called out in the
//! module docs and in DESIGN.md.

pub mod graph;
pub mod huffman;
pub mod kruskal;
pub mod matching;
pub mod prim;
pub mod scheduling;
pub mod sorting;
pub mod spanning;
pub mod student;
pub mod tsp;
pub mod workload;

pub use gbc_baselines::Edge;
pub use graph::Graph;
