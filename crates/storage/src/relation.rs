//! Duplicate-free, insertion-ordered **columnar** relations with cached
//! indices.
//!
//! Since the dictionary-encoding rework (DESIGN.md §11), a relation
//! stores one flat `Vec<u32>` per attribute instead of a vector of
//! boxed value rows: cell `(i, c)` of the relation is `cols[c][i]`, a
//! dense dictionary id (see [`crate::dictionary`]). Scans and joins
//! walk these contiguous id arrays and compare plain integers; values
//! are only decoded at output boundaries.

use std::sync::{Arc, RwLock};

use gbc_ast::Value;
use gbc_telemetry::Metrics;

use crate::dictionary::{self, DICT_MISS};
use crate::fx::FxHashSet;
use crate::index::Index;
use crate::tuple::Row;

/// A borrowed window of contiguous rows in a columnar arena: columns
/// `cols`, row positions `start..end`. This is what the engine hands
/// around instead of `&[Row]` — `Copy`, two words of range plus a
/// column slice, no decoding.
///
/// Row indices passed to [`RowsView::cell`] are **relative to the
/// view** (`0..len()`); a full-relation view ([`Relation::rows`])
/// therefore addresses rows by their arena id directly.
#[derive(Clone, Copy, Debug)]
pub struct RowsView<'a> {
    cols: &'a [Vec<u32>],
    start: usize,
    end: usize,
}

impl<'a> RowsView<'a> {
    /// A view over an explicit column slice (row range `start..end`).
    pub fn new(cols: &'a [Vec<u32>], start: usize, end: usize) -> RowsView<'a> {
        RowsView { cols, start, end }
    }

    /// An empty view with no columns.
    pub fn empty() -> RowsView<'static> {
        RowsView { cols: &[], start: 0, end: 0 }
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The id in cell `(row, col)`; `row` is view-relative.
    pub fn cell(&self, row: usize, col: usize) -> u32 {
        self.cols[col][self.start + row]
    }

    /// [`RowsView::cell`] for possibly out-of-range columns.
    pub fn try_cell(&self, row: usize, col: usize) -> Option<u32> {
        self.cols.get(col).map(|c| c[self.start + row])
    }

    /// A sub-view of rows `lo..hi` (view-relative).
    pub fn slice(&self, lo: usize, hi: usize) -> RowsView<'a> {
        debug_assert!(lo <= hi && self.start + hi <= self.end);
        RowsView { cols: self.cols, start: self.start + lo, end: self.start + hi }
    }

    /// The id row at view-relative position `row`, copied out.
    pub fn id_row(&self, row: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[self.start + row]).collect()
    }

    /// Decode the row at view-relative position `row` to a boundary
    /// [`Row`] (one counted decode per cell).
    pub fn decode_row(&self, row: usize) -> Row {
        let ids = self.id_row(row);
        dictionary::decode_row(&ids)
    }
}

/// Cell-wise id equality. Sound as a *value* equality: the global
/// dictionary makes id equality equivalent to value equality within a
/// process.
impl PartialEq for RowsView<'_> {
    fn eq(&self, other: &Self) -> bool {
        if self.arity() != other.arity() || self.len() != other.len() {
            return false;
        }
        (0..self.len()).all(|i| (0..self.arity()).all(|c| self.cell(i, c) == other.cell(i, c)))
    }
}

impl Eq for RowsView<'_> {}

/// An owned columnar row buffer — the ad-hoc counterpart of a
/// relation's arena, used for scratch deltas (tests, focused-variant
/// drivers) that need a [`RowsView`] without a full [`Relation`].
#[derive(Clone, Debug, Default)]
pub struct ColumnBuf {
    cols: Vec<Vec<u32>>,
    n_rows: usize,
}

impl ColumnBuf {
    /// Empty buffer; arity is fixed by the first pushed row.
    pub fn new() -> ColumnBuf {
        ColumnBuf::default()
    }

    /// Append a row of pre-encoded ids.
    pub fn push_ids(&mut self, ids: &[u32]) {
        if self.n_rows == 0 && self.cols.is_empty() {
            self.cols = vec![Vec::new(); ids.len()];
        }
        assert_eq!(ids.len(), self.cols.len(), "ColumnBuf rows must share an arity");
        for (col, &id) in self.cols.iter_mut().zip(ids) {
            col.push(id);
        }
        self.n_rows += 1;
    }

    /// Encode and append a row of values.
    pub fn push_values(&mut self, values: &[Value]) {
        let ids = dictionary::encode_row(values);
        self.push_ids(&ids);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// A view over all buffered rows.
    pub fn view(&self) -> RowsView<'_> {
        RowsView { cols: &self.cols, start: 0, end: self.n_rows }
    }
}

impl FromIterator<Row> for ColumnBuf {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> ColumnBuf {
        let mut buf = ColumnBuf::new();
        for row in iter {
            buf.push_values(&row);
        }
        buf
    }
}

/// A relation: an insertion-ordered set of dictionary-encoded rows in
/// columnar arenas.
///
/// Insertion order is exposed so that evaluation is fully deterministic
/// (given a deterministic chooser) regardless of hash seeds. The
/// column vectors double as the **arena**: indices and callers refer
/// to rows by `u32` position ([`Relation::rows`],
/// [`Relation::select_ids_into`]), so the join path never materialises
/// rows out of storage. Indices on column subsets are created lazily
/// behind an `RwLock` — the engine reads relations through `&Relation`
/// while staging derived tuples elsewhere, so interior mutability
/// confines itself to the index cache; the lock (rather than a
/// `RefCell`) makes `Relation` `Sync`, which is what lets the parallel
/// seminaive workers share `&Database` across threads. Probes take the
/// read lock; a miss upgrades to the write lock with a double-check, so
/// concurrent first probes of the same column set still build the index
/// exactly once and the `index_builds` counter stays identical to a
/// serial run.
#[derive(Debug, Default)]
pub struct Relation {
    /// One `Vec<u32>` per attribute; all the same length.
    cols: Vec<Vec<u32>>,
    /// Row count, tracked separately so zero-arity relations (no
    /// columns) still count their single row.
    n_rows: usize,
    /// Arity, fixed by the first inserted row.
    arity: Option<usize>,
    /// Dedup set over encoded rows.
    set: FxHashSet<Vec<u32>>,
    /// Cached indices, keyed by their column bitmask (bit i ⇒ column i
    /// participates, in ascending column order).
    indices: RwLock<Vec<(u64, Index)>>,
    /// Shared counter registry; index builds/probes are reported here
    /// when attached.
    metrics: Option<Arc<Metrics>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // Indices survive the clone: they hold arena positions, and the
        // arenas are copied verbatim, so every stored row id still
        // points at the same row in the copy.
        Relation {
            cols: self.cols.clone(),
            n_rows: self.n_rows,
            arity: self.arity,
            set: self.set.clone(),
            indices: RwLock::new(self.indices.read().expect("index cache lock").clone()),
            metrics: self.metrics.clone(),
        }
    }
}

/// The column bitmask identifying a cached index, or `None` when a
/// column is beyond the 64 the mask can represent — such column sets
/// are served by a linear scan instead of an index.
fn mask_of(cols: &[usize]) -> Option<u64> {
    let mut mask = 0u64;
    for &c in cols {
        if c >= 64 {
            return None;
        }
        mask |= 1 << c;
    }
    Some(mask)
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Attach a counter registry; index builds and probes report to it.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Arity, once the first row fixed it.
    pub fn arity(&self) -> Option<usize> {
        self.arity
    }

    /// Insert a row, interning its values; returns `false` if it was
    /// already present.
    pub fn insert(&mut self, row: Row) -> bool {
        let ids = dictionary::encode_row(&row);
        self.insert_ids(ids)
    }

    /// Insert a pre-encoded row; returns `false` on duplicate.
    ///
    /// # Panics
    /// Panics when the row's arity differs from the relation's.
    pub fn insert_ids(&mut self, ids: Vec<u32>) -> bool {
        match self.arity {
            None => {
                self.arity = Some(ids.len());
                self.cols = vec![Vec::new(); ids.len()];
            }
            Some(a) => {
                assert_eq!(a, ids.len(), "relation rows must share an arity");
            }
        }
        if self.set.contains(ids.as_slice()) {
            return false;
        }
        let id = self.n_rows as u32;
        for (_, idx) in self.indices.get_mut().expect("index cache lock").iter_mut() {
            idx.insert_row(&ids, id);
        }
        for (col, &cell) in self.cols.iter_mut().zip(&ids) {
            col.push(cell);
        }
        self.n_rows += 1;
        self.set.insert(ids);
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &Row) -> bool {
        self.contains_values(row)
    }

    /// Membership test from a value slice, without materialising a
    /// `Row` (the negation check of the compiled join path). A value
    /// the dictionary has never seen cannot be stored anywhere, so a
    /// lookup-only encode suffices.
    pub fn contains_values(&self, values: &[Value]) -> bool {
        if self.arity != Some(values.len()) {
            return false;
        }
        let mut key = Vec::with_capacity(values.len());
        for v in values {
            let id = dictionary::try_encode(v);
            if id == DICT_MISS {
                return false;
            }
            key.push(id);
        }
        self.set.contains(key.as_slice())
    }

    /// Membership test over pre-encoded ids.
    pub fn contains_ids(&self, ids: &[u32]) -> bool {
        self.set.contains(ids)
    }

    /// Rows in insertion order, decoded (boundary use only — hot paths
    /// should read [`Relation::rows`] in id space).
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        let view = self.rows();
        (0..view.len()).map(move |i| view.decode_row(i))
    }

    /// The `i`-th row in insertion order, decoded.
    pub fn get(&self, i: usize) -> Option<Row> {
        (i < self.n_rows).then(|| self.rows().decode_row(i))
    }

    /// The insertion-ordered columnar arena. Row ids produced by
    /// [`Relation::select_ids_into`] index into this view.
    pub fn rows(&self) -> RowsView<'_> {
        RowsView { cols: &self.cols, start: 0, end: self.n_rows }
    }

    /// Rows inserted at or after position `from` (used for deltas).
    pub fn since(&self, from: usize) -> RowsView<'_> {
        RowsView { cols: &self.cols, start: from.min(self.n_rows), end: self.n_rows }
    }

    /// Collect into `out` the arena ids of rows whose projection on
    /// `cols` (ascending column order) equals the encoded `key`; `out`
    /// is cleared first. Builds and caches an index for `cols` on
    /// first use; subsequent inserts maintain it. Column sets reaching
    /// past column 63 cannot be masked into the index cache key and
    /// fall back to an unindexed linear scan.
    ///
    /// A key containing [`DICT_MISS`] (a constant the dictionary has
    /// never seen) probes normally and matches nothing — stored rows
    /// only ever hold real ids.
    ///
    /// Ids are copied out (rather than returned as a borrow) so the
    /// internal index cache is not kept borrowed while the caller
    /// iterates — a nested probe of the same relation (self-join) would
    /// otherwise conflict with it.
    pub fn select_ids_into(&self, cols: &[usize], key: &[u32], out: &mut Vec<u32>) {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        debug_assert_eq!(cols.len(), key.len());
        out.clear();
        if cols.is_empty() {
            out.extend(0..self.n_rows as u32);
            return;
        }
        if let Some(m) = &self.metrics {
            m.index_probes.inc();
        }
        let Some(mask) = mask_of(cols) else {
            for i in 0..self.n_rows {
                if cols
                    .iter()
                    .zip(key)
                    .all(|(&c, &k)| self.cols.get(c).map(|col| col[i]) == Some(k))
                {
                    out.push(i as u32);
                }
            }
            return;
        };
        {
            let cache = self.indices.read().expect("index cache lock");
            if let Some((_, idx)) = cache.iter().find(|(m, _)| *m == mask) {
                out.extend_from_slice(idx.get(key));
                return;
            }
        }
        let mut cache = self.indices.write().expect("index cache lock");
        // Double-check under the write lock: a concurrent worker may
        // have built the same index while we waited, and the build must
        // happen (and be counted) exactly once.
        if let Some((_, idx)) = cache.iter().find(|(m, _)| *m == mask) {
            out.extend_from_slice(idx.get(key));
            return;
        }
        if let Some(m) = &self.metrics {
            m.index_builds.inc();
        }
        let idx = Index::build(cols.to_vec(), self.rows());
        out.extend_from_slice(idx.get(key));
        cache.push((mask, idx));
    }

    /// Rows whose projection on `cols` (ascending column order) equals
    /// `key`, decoded out of the arena. Compatibility wrapper over
    /// [`Relation::select_ids_into`] — hot callers should use the id
    /// form and read the arena in place; every row this decodes is
    /// counted in the `rows_cloned` metric.
    ///
    /// `key` must list values in the same ascending-column order.
    pub fn select(&self, cols: &[usize], key: &[Value]) -> Vec<Row> {
        if cols.is_empty() {
            if let Some(m) = &self.metrics {
                m.rows_cloned.add(self.n_rows as u64);
            }
            return self.iter().collect();
        }
        let encoded: Vec<u32> = key.iter().map(dictionary::try_encode).collect();
        let mut ids = Vec::new();
        self.select_ids_into(cols, &encoded, &mut ids);
        if let Some(m) = &self.metrics {
            m.rows_cloned.add(ids.len() as u64);
        }
        let view = self.rows();
        ids.iter().map(|&i| view.decode_row(i as usize)).collect()
    }

    /// Drop all cached indices (tests / memory pressure).
    pub fn clear_indices(&self) {
        self.indices.write().expect("index cache lock").clear();
    }

    /// Number of cached indices (for tests).
    pub fn num_indices(&self) -> usize {
        self.indices.read().expect("index cache lock").len()
    }
}

impl FromIterator<Row> for Relation {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Relation {
        let mut r = Relation::new();
        for row in iter {
            r.insert(row);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_telemetry::rng::Rng;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    fn id(v: i64) -> u32 {
        dictionary::encode(&Value::int(v))
    }

    /// The parallel seminaive workers share `&Relation` across scoped
    /// threads; the index cache must therefore be `Sync`.
    #[test]
    fn relation_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Relation>();
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new();
        assert!(r.insert(row(&[1, 2])));
        assert!(!r.insert(row(&[1, 2])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new();
        for k in [3, 1, 2] {
            r.insert(row(&[k]));
        }
        let got: Vec<i64> = r.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![3, 1, 2]);
    }

    #[test]
    fn select_builds_index_once_and_maintains_it() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[2, 20]));
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 1);
        assert_eq!(r.num_indices(), 1);
        // Insert after the index exists: the index must see the new row.
        r.insert(row(&[1, 30]));
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 2);
        assert_eq!(r.num_indices(), 1);
    }

    #[test]
    fn select_with_empty_cols_scans_everything() {
        let mut r = Relation::new();
        r.insert(row(&[1]));
        r.insert(row(&[2]));
        assert_eq!(r.select(&[], &[]).len(), 2);
    }

    #[test]
    fn select_ids_point_into_the_arena() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[2, 20]));
        r.insert(row(&[1, 30]));
        let mut ids = Vec::new();
        r.select_ids_into(&[0], &[id(1)], &mut ids);
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(r.rows().decode_row(ids[1] as usize), row(&[1, 30]));
    }

    #[test]
    fn unseen_key_probes_but_matches_nothing() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        let mut ids = vec![99];
        r.select_ids_into(&[0], &[DICT_MISS], &mut ids);
        assert!(ids.is_empty());
        assert_eq!(r.num_indices(), 1, "a miss key still probes (and builds) normally");
    }

    #[test]
    fn since_returns_suffix() {
        let mut r = Relation::new();
        r.insert(row(&[1]));
        let mark = r.len();
        r.insert(row(&[2]));
        r.insert(row(&[3]));
        let view = r.since(mark);
        let delta: Vec<Row> = (0..view.len()).map(|i| view.decode_row(i)).collect();
        assert_eq!(delta, vec![row(&[2]), row(&[3])]);
        assert!(r.since(100).is_empty());
    }

    #[test]
    fn rows_view_slices_and_compares() {
        let mut r = Relation::new();
        for k in 0..5 {
            r.insert(row(&[k, k * 10]));
        }
        let all = r.rows();
        assert_eq!(all.len(), 5);
        assert_eq!(all.arity(), 2);
        let mid = all.slice(1, 4);
        assert_eq!(mid.len(), 3);
        assert_eq!(mid.cell(0, 0), id(1));
        assert_eq!(mid.id_row(2), vec![id(3), id(30)]);
        assert_eq!(mid, r.since(1).slice(0, 3));
        assert_ne!(mid, all.slice(0, 3));
        assert_eq!(all.try_cell(0, 7), None);
    }

    #[test]
    fn column_buf_matches_relation_views() {
        let mut r = Relation::new();
        r.insert(row(&[4, 5]));
        r.insert(row(&[6, 7]));
        let mut buf = ColumnBuf::new();
        buf.push_values(&[Value::int(4), Value::int(5)]);
        buf.push_ids(&[id(6), id(7)]);
        assert_eq!(buf.view(), r.rows());
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn metrics_count_builds_probes_and_clones() {
        let m = Arc::new(Metrics::new());
        let mut r = Relation::new();
        r.set_metrics(Arc::clone(&m));
        r.insert(row(&[1, 10]));
        r.select(&[0], &[Value::int(1)]); // probe + build, clones 1 row
        r.select(&[0], &[Value::int(1)]); // probe only, clones 1 row
        r.select(&[], &[]); // full scan: clones, but neither probe nor build
        let mut ids = Vec::new();
        r.select_ids_into(&[0], &[id(1)], &mut ids); // probe, no clone
        let s = m.snapshot();
        assert_eq!(s.index_builds, 1);
        assert_eq!(s.index_probes, 3);
        assert_eq!(s.rows_cloned, 3);
    }

    #[test]
    fn distinct_masks_get_distinct_indices() {
        let mut r = Relation::new();
        r.insert(row(&[1, 2, 3]));
        r.select(&[0], &[Value::int(1)]);
        r.select(&[0, 2], &[Value::int(1), Value::int(3)]);
        assert_eq!(r.num_indices(), 2);
    }

    #[test]
    fn clone_keeps_indices_valid() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[1, 20]));
        r.select(&[0], &[Value::int(1)]);
        assert_eq!(r.num_indices(), 1);
        let mut c = r.clone();
        assert_eq!(c.num_indices(), 1, "indices survive clone");
        // The clone's index keeps working and keeps being maintained.
        c.insert(row(&[1, 30]));
        assert_eq!(c.select(&[0], &[Value::int(1)]).len(), 3);
        assert_eq!(c.num_indices(), 1, "no rebuild needed after clone");
        // ...without affecting the original.
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 2);
    }

    #[test]
    fn contains_values_avoids_row_construction() {
        let mut r = Relation::new();
        r.insert(row(&[4, 5]));
        assert!(r.contains_values(&[Value::int(4), Value::int(5)]));
        assert!(!r.contains_values(&[Value::int(5), Value::int(4)]));
        assert!(!r.contains_values(&[Value::int(4)]));
        // A value the dictionary never saw short-circuits to false.
        assert!(!r.contains_values(&[Value::int(4), Value::sym("never-stored-anywhere")]));
    }

    #[test]
    fn zero_arity_relations_count_their_single_row() {
        let mut r = Relation::new();
        assert!(r.insert(Row::new(vec![])));
        assert!(!r.insert(Row::new(vec![])));
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), Some(0));
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.get(0), Some(Row::new(vec![])));
    }

    /// Columns ≥ 64 can't participate in the index-cache bitmask; the
    /// select must fall back to a linear scan instead of panicking.
    #[test]
    fn wide_relations_fall_back_to_linear_scan() {
        let mut r = Relation::new();
        let mut wide: Vec<i64> = (0..70).collect();
        r.insert(Row::new(wide.iter().map(|&v| Value::int(v)).collect()));
        wide[69] = -1;
        r.insert(Row::new(wide.iter().map(|&v| Value::int(v)).collect()));
        let hits = r.select(&[0, 69], &[Value::int(0), Value::int(69)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][69], Value::int(69));
        assert_eq!(r.num_indices(), 0, "no index cached for unmaskable columns");
        // Also out-of-range columns simply match nothing.
        assert!(r.select(&[0, 200], &[Value::int(0), Value::int(0)]).is_empty());
    }

    /// Seeded sweep: after any interleaving of inserts and probes, the
    /// ids served by the incrementally maintained index agree with a
    /// fresh rebuild over the arena.
    #[test]
    fn incremental_index_agrees_with_fresh_rebuild() {
        let mut rng = Rng::new(0x01DD_ECAF);
        for case in 0..64 {
            let mut r = Relation::new();
            let n_ops = 1 + rng.below_usize(127);
            for _ in 0..n_ops {
                // Narrow value ranges force collisions, duplicates and
                // multi-row keys.
                let a = rng.range_i64(0, 7);
                let b = rng.range_i64(0, 7);
                r.insert(row(&[a, b]));
                if rng.below(4) == 0 {
                    // Probe mid-stream so the cached index exists early
                    // and is maintained across subsequent inserts.
                    let mut ids = Vec::new();
                    r.select_ids_into(&[0], &[id(rng.range_i64(0, 7))], &mut ids);
                }
            }
            for key_col in [0usize, 1] {
                for k in 0..8 {
                    let key = [id(k)];
                    let mut cached = Vec::new();
                    r.select_ids_into(&[key_col], &key, &mut cached);
                    let fresh = Index::build(vec![key_col], r.rows());
                    assert_eq!(cached, fresh.get(&key), "case {case} col {key_col} key {k}");
                }
            }
        }
    }
}
