//! Seeded synthetic workloads.
//!
//! The paper specifies no datasets (PODS 1992, theory venue), so every
//! experiment runs on synthetic inputs with fixed seeds — the shapes
//! (connected sparse/dense graphs, complete geometric graphs, random
//! relations, letter frequencies) match the workloads the paper's
//! examples discuss. All generators are deterministic in `(params, seed)`.

use gbc_baselines::Edge;
use gbc_telemetry::rng::Rng;

use crate::graph::Graph;

/// A connected undirected graph: a random spanning tree plus
/// `extra_edges` random chords. Costs are drawn from `1..=max_cost`.
/// Returned with both orientations of each edge.
pub fn connected_graph(n: usize, extra_edges: usize, max_cost: i64, seed: u64) -> Graph {
    assert!(n >= 1, "need at least one node");
    let mut rng = Rng::new(seed);
    let mut edges = Vec::with_capacity(2 * (n - 1 + extra_edges));
    let mut seen = std::collections::HashSet::new();
    // Random spanning tree: node i attaches to a random earlier node.
    for i in 1..n {
        let j = rng.below_usize(i);
        let c = rng.range_i64(1, max_cost);
        seen.insert((j.min(i), j.max(i)));
        edges.push(Edge::new(j as u32, i as u32, c));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let a = rng.below_usize(n);
        let b = rng.below_usize(n);
        if a == b || !seen.insert((a.min(b), a.max(b))) {
            continue;
        }
        let c = rng.range_i64(1, max_cost);
        edges.push(Edge::new(a as u32, b as u32, c));
        added += 1;
    }
    Graph::new(n, edges).symmetric_closure()
}

/// A complete directed graph over `n` random points on a
/// `1000 × 1000` grid; costs are rounded Euclidean distances (plus one,
/// so coincident points still cost something). Symmetric by
/// construction.
pub fn complete_geometric(n: usize, seed: u64) -> Graph {
    let mut rng = Rng::new(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64() * 1000.0, rng.f64() * 1000.0)).collect();
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
    for (i, &(xi, yi)) in pts.iter().enumerate() {
        for (j, &(xj, yj)) in pts.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt().round() as i64 + 1;
            edges.push(Edge::new(i as u32, j as u32, d));
        }
    }
    Graph::new(n, edges)
}

/// Random directed arcs with **unique endpoint pairs and unique costs**
/// (a permutation of `1..=m`), so greedy matching is deterministic and
/// executor/baseline runs agree arc-for-arc.
pub fn random_arcs(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = Rng::new(seed);
    let mut costs: Vec<i64> = (1..=m as i64).collect();
    rng.shuffle(&mut costs);
    let mut pairs = std::collections::HashSet::new();
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let a = rng.below_usize(n) as u32;
        let b = rng.below_usize(n) as u32;
        if a == b || !pairs.insert((a, b)) {
            continue;
        }
        edges.push(Edge::new(a, b, costs[edges.len()]));
    }
    Graph::new(n, edges)
}

/// A random relation `p(X, C)`: distinct ids `0..n`, costs a shuffled
/// permutation of `1..=n` (unique, so the sorted order is total).
pub fn random_items(n: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = Rng::new(seed);
    let mut costs: Vec<i64> = (1..=n as i64).collect();
    rng.shuffle(&mut costs);
    (0..n as i64).zip(costs).collect()
}

/// Random letter frequencies `1..=1000` for a `k`-symbol alphabet.
pub fn letter_freqs(k: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng::new(seed);
    (0..k).map(|_| rng.range_i64(1, 1000)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::unionfind::UnionFind;

    #[test]
    fn connected_graph_is_connected_and_symmetric() {
        let g = connected_graph(50, 100, 1000, 7);
        let mut uf = UnionFind::new(g.n);
        for e in &g.edges {
            uf.union(e.from, e.to);
        }
        assert_eq!(uf.components(), 1);
        // Symmetric: reverse of each edge present with equal cost.
        for e in &g.edges {
            assert!(g.edges.contains(&Edge::new(e.to, e.from, e.cost)));
        }
    }

    #[test]
    fn generators_are_deterministic_in_the_seed() {
        assert_eq!(connected_graph(20, 30, 50, 1).edges, connected_graph(20, 30, 50, 1).edges);
        assert_ne!(connected_graph(20, 30, 50, 1).edges, connected_graph(20, 30, 50, 2).edges);
        assert_eq!(random_items(10, 3), random_items(10, 3));
        assert_eq!(letter_freqs(8, 9), letter_freqs(8, 9));
    }

    #[test]
    fn complete_geometric_has_all_arcs_and_is_symmetric() {
        let g = complete_geometric(6, 11);
        assert_eq!(g.edges.len(), 30);
        for e in &g.edges {
            assert!(g.edges.contains(&Edge::new(e.to, e.from, e.cost)));
            assert!(e.cost >= 1);
        }
    }

    #[test]
    fn random_arcs_have_unique_pairs_and_costs() {
        let g = random_arcs(30, 100, 5);
        assert_eq!(g.edges.len(), 100);
        let mut pairs: Vec<(u32, u32)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 100);
        let mut costs: Vec<i64> = g.edges.iter().map(|e| e.cost).collect();
        costs.sort_unstable();
        assert_eq!(costs, (1..=100).collect::<Vec<i64>>());
    }

    #[test]
    fn random_items_costs_are_a_permutation() {
        let items = random_items(16, 4);
        let mut costs: Vec<i64> = items.iter().map(|&(_, c)| c).collect();
        costs.sort_unstable();
        assert_eq!(costs, (1..=16).collect::<Vec<i64>>());
    }
}
