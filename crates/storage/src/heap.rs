//! An indexed binary min-heap with stable handles.
//!
//! The congruence-replacement step of the paper's insertion operation
//! ("`f1` is deleted from `Q_r` and … `f` is inserted in `Q_r`",
//! Section 6) needs to *replace the key of an arbitrary element* of the
//! priority queue in `O(log n)`. `std::collections::BinaryHeap` cannot
//! do that, so this module provides a classic handle-indexed binary
//! heap: `push`, `pop_min`, `remove`, and `update` are all logarithmic,
//! and handles stay valid until their element is popped or removed.

/// A stable reference to a heap element.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Handle(u32);

const NOT_IN_HEAP: usize = usize::MAX;

/// Indexed binary min-heap. `K` is the ordering key; ties are broken by
/// comparing the full key, so using a composite key like `(cost, row)`
/// yields fully deterministic pop order.
#[derive(Clone, Debug)]
pub struct IndexedHeap<K> {
    /// Slab: handle index → key (None for freed slots).
    slab: Vec<Option<K>>,
    /// Free slab slots available for reuse.
    free: Vec<u32>,
    /// The heap array, holding handle indices.
    heap: Vec<u32>,
    /// handle index → position in `heap` (or `NOT_IN_HEAP`).
    pos: Vec<usize>,
}

impl<K> Default for IndexedHeap<K> {
    fn default() -> Self {
        IndexedHeap { slab: Vec::new(), free: Vec::new(), heap: Vec::new(), pos: Vec::new() }
    }
}

impl<K: Ord> IndexedHeap<K> {
    /// Empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a key, returning its handle. `O(log n)`.
    pub fn push(&mut self, key: K) -> Handle {
        let h = match self.free.pop() {
            Some(h) => {
                self.slab[h as usize] = Some(key);
                h
            }
            None => {
                self.slab.push(Some(key));
                self.pos.push(NOT_IN_HEAP);
                (self.slab.len() - 1) as u32
            }
        };
        let slot = self.heap.len();
        self.heap.push(h);
        self.pos[h as usize] = slot;
        self.sift_up(slot);
        Handle(h)
    }

    /// Pop the minimum element. `O(log n)`.
    pub fn pop_min(&mut self) -> Option<(Handle, K)> {
        if self.heap.is_empty() {
            return None;
        }
        let h = self.heap[0];
        self.detach(0);
        let key = self.slab[h as usize].take().expect("slab entry present");
        self.free.push(h);
        Some((Handle(h), key))
    }

    /// The minimum element without removing it.
    pub fn peek_min(&self) -> Option<(Handle, &K)> {
        let &h = self.heap.first()?;
        Some((Handle(h), self.slab[h as usize].as_ref().expect("slab entry present")))
    }

    /// The key behind a live handle.
    pub fn get(&self, h: Handle) -> Option<&K> {
        self.slab
            .get(h.0 as usize)?
            .as_ref()
            .filter(|_| self.pos.get(h.0 as usize).is_some_and(|&p| p != NOT_IN_HEAP))
    }

    /// Remove an arbitrary live element. Returns its key. `O(log n)`.
    pub fn remove(&mut self, h: Handle) -> Option<K> {
        let slot = *self.pos.get(h.0 as usize)?;
        if slot == NOT_IN_HEAP || self.slab[h.0 as usize].is_none() {
            return None;
        }
        self.detach(slot);
        let key = self.slab[h.0 as usize].take();
        self.free.push(h.0);
        key
    }

    /// Replace the key of a live element, restoring heap order.
    /// Returns the old key, or `None` if the handle is dead. `O(log n)`.
    pub fn update(&mut self, h: Handle, key: K) -> Option<K> {
        let slot = *self.pos.get(h.0 as usize)?;
        if slot == NOT_IN_HEAP {
            return None;
        }
        let old = self.slab[h.0 as usize].replace(key);
        let slot = self.pos[h.0 as usize];
        self.sift_up(slot);
        self.sift_down(self.pos[h.0 as usize]);
        old
    }

    /// Remove the element at heap position `slot`, patching with the
    /// last element and restoring order.
    fn detach(&mut self, slot: usize) {
        let h = self.heap[slot];
        let last = self.heap.len() - 1;
        self.heap.swap(slot, last);
        self.pos[self.heap[slot] as usize] = slot;
        self.heap.pop();
        self.pos[h as usize] = NOT_IN_HEAP;
        if slot < self.heap.len() {
            let moved = self.heap[slot];
            self.sift_up(slot);
            self.sift_down(self.pos[moved as usize]);
        }
    }

    fn key_at(&self, slot: usize) -> &K {
        self.slab[self.heap[slot] as usize].as_ref().expect("heap slot points at live slab entry")
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.key_at(slot) < self.key_at(parent) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let l = 2 * slot + 1;
            let r = l + 1;
            let mut smallest = slot;
            if l < self.heap.len() && self.key_at(l) < self.key_at(smallest) {
                smallest = l;
            }
            if r < self.heap.len() && self.key_at(r) < self.key_at(smallest) {
                smallest = r;
            }
            if smallest == slot {
                break;
            }
            self.swap_slots(slot, smallest);
            slot = smallest;
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a;
        self.pos[self.heap[b] as usize] = b;
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        for slot in 1..self.heap.len() {
            let parent = (slot - 1) / 2;
            assert!(self.key_at(parent) <= self.key_at(slot), "heap order violated at slot {slot}");
        }
        for (h, &p) in self.pos.iter().enumerate() {
            if p != NOT_IN_HEAP {
                assert_eq!(self.heap[p] as usize, h, "pos map out of sync");
                assert!(self.slab[h].is_some(), "live handle with empty slab slot");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_telemetry::rng::Rng;

    #[test]
    fn pushes_and_pops_in_order() {
        let mut h = IndexedHeap::new();
        for k in [5, 1, 4, 2, 3] {
            h.push(k);
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn remove_by_handle() {
        let mut h = IndexedHeap::new();
        let _a = h.push(10);
        let b = h.push(20);
        let _c = h.push(30);
        assert_eq!(h.remove(b), Some(20));
        assert_eq!(h.remove(b), None, "double remove is None");
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_min() {
            out.push(k);
        }
        assert_eq!(out, vec![10, 30]);
    }

    #[test]
    fn update_decreases_and_increases_keys() {
        let mut h = IndexedHeap::new();
        let a = h.push(10);
        h.push(20);
        h.push(5);
        // Decrease 10 → 1: becomes the minimum.
        assert_eq!(h.update(a, 1), Some(10));
        assert_eq!(h.peek_min().map(|(_, &k)| k), Some(1));
        // Increase 1 → 100: sinks to the bottom.
        assert_eq!(h.update(a, 100), Some(1));
        assert_eq!(h.pop_min().map(|(_, k)| k), Some(5));
        assert_eq!(h.pop_min().map(|(_, k)| k), Some(20));
        assert_eq!(h.pop_min().map(|(_, k)| k), Some(100));
    }

    #[test]
    fn handles_are_reused_safely() {
        let mut h = IndexedHeap::new();
        let a = h.push(1);
        h.pop_min();
        // The slab slot of `a` is reused; the stale handle must be dead.
        let b = h.push(2);
        assert_eq!(a.0, b.0, "slot reuse expected in this scenario");
        assert_eq!(h.get(b), Some(&2));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn get_on_dead_handle_is_none() {
        let mut h = IndexedHeap::new();
        let a = h.push(42);
        assert_eq!(h.get(a), Some(&42));
        h.pop_min();
        assert_eq!(h.get(a), None);
    }

    /// Random interleavings of push/pop/remove/update keep the heap
    /// consistent, and pop order equals sorted order of survivors.
    /// Seeded-loop property test: 256 random op sequences per run.
    #[test]
    fn random_ops_preserve_invariants() {
        let mut rng = Rng::new(0xB10C_4EA9);
        for case in 0..256 {
            let n_ops = 1 + rng.below_usize(199);
            let mut h = IndexedHeap::new();
            let mut live: Vec<(Handle, i64)> = Vec::new();
            for _ in 0..n_ops {
                let op = rng.below(4) as u8;
                let k = rng.range_i64(0, 999);
                match op {
                    0 => {
                        let handle = h.push(k);
                        live.push((handle, k));
                    }
                    1 => {
                        if let Some((handle, key)) = h.pop_min() {
                            let min_live = live.iter().map(|&(_, k)| k).min().unwrap();
                            assert_eq!(key, min_live, "case {case}");
                            live.retain(|&(hh, _)| hh != handle);
                        }
                    }
                    2 => {
                        if let Some(&(handle, key)) = live.first() {
                            assert_eq!(h.remove(handle), Some(key), "case {case}");
                            live.remove(0);
                        }
                    }
                    _ => {
                        if let Some(entry) = live.last_mut() {
                            assert_eq!(h.update(entry.0, k), Some(entry.1), "case {case}");
                            entry.1 = k;
                        }
                    }
                }
                h.assert_invariants();
                assert_eq!(h.len(), live.len(), "case {case}");
            }
            let mut expected: Vec<i64> = live.iter().map(|&(_, k)| k).collect();
            expected.sort_unstable();
            let mut got = Vec::new();
            while let Some((_, k)) = h.pop_min() {
                got.push(k);
            }
            assert_eq!(got, expected, "case {case}");
        }
    }
}
