//! Structural contracts of the exported observability artefacts:
//!
//! * the `--trace-json` payload must be valid Chrome trace-event JSON
//!   (the object format Perfetto and `chrome://tracing` load): a
//!   `traceEvents` array whose entries carry `name`/`ph`/`ts`/`pid`/
//!   `tid`, instant-scope markers, and the typed payload under `args`;
//! * the `--profile` per-rule profiler must attribute at least 95% of
//!   the run phase's wall-clock time to rules on a non-trivial
//!   workload — anything less means an executor code path is escaping
//!   attribution;
//! * parallel saturation must render per-worker lanes — complete
//!   (`ph: "X"`) `worker_chunk` events on `tid ≥ 2` plus a
//!   `thread_name` metadata record per lane — while serial runs stay
//!   byte-compatible with the pre-lane format (every event `ph: "i"`
//!   on `tid 1`, no metadata records).

use std::sync::Arc;

use gbc_core::GreedyConfig;
use gbc_greedy::{prim, workload};
use gbc_telemetry::{ChromeTrace, Json, Telemetry};

fn traced_prim_run(tel: &Telemetry, n: usize) {
    let g = workload::connected_graph(n, n * 3, 1000, 42);
    let (compiled, edb) = prim::prepared(&g, 0);
    compiled.run_greedy_telemetry(&edb, GreedyConfig::default(), tel).unwrap();
}

/// Look up a field of a JSON object by key.
fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn chrome_trace_has_the_trace_event_shape() {
    let chrome = Arc::new(ChromeTrace::new());
    let tel = Telemetry::enabled().with_trace(chrome.clone());
    traced_prim_run(&tel, 64);

    let file = chrome.to_json();
    let events = match field(&file, "traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty(), "a 64-node Prim run must emit events");
    assert!(
        matches!(field(&file, "displayTimeUnit"), Some(Json::Str(u)) if u == "ms"),
        "displayTimeUnit hint missing"
    );

    let mut last_ts = 0u64;
    for ev in events {
        // Mandatory trace-event fields, with the types the viewers expect.
        assert!(matches!(field(ev, "name"), Some(Json::Str(n)) if !n.is_empty()));
        assert!(matches!(field(ev, "ph"), Some(Json::Str(ph)) if ph == "i"));
        assert!(matches!(field(ev, "pid"), Some(Json::UInt(_))));
        assert!(matches!(field(ev, "tid"), Some(Json::UInt(_))));
        assert!(matches!(field(ev, "s"), Some(Json::Str(s)) if s == "t"));
        let Some(Json::UInt(ts)) = field(ev, "ts") else {
            panic!("ts must be an unsigned microsecond count")
        };
        assert!(*ts >= last_ts, "timestamps must be monotone");
        last_ts = *ts;
        // The typed payload rides in args, tagged like the journal.
        let args = field(ev, "args").expect("args payload");
        assert!(matches!(field(args, "type"), Some(Json::Str(_))));
    }
    // The γ loop's signature events are all present.
    let names: Vec<String> = events
        .iter()
        .filter_map(|e| match field(e, "name") {
            Some(Json::Str(n)) => Some(n.clone()),
            _ => None,
        })
        .collect();
    for expected in ["flat_round", "stage_commit", "choice_audit", "rule_fired"] {
        assert!(names.iter().any(|n| n == expected), "missing event kind `{expected}`");
    }
}

#[test]
fn parallel_runs_emit_per_worker_lanes() {
    // Transitive closure over a long chain: both the first full
    // evaluation (wide base scan) and the later delta rounds (hundreds
    // of new `tc` facts per round) cross the pool's chunking threshold,
    // so a 4-thread saturation must fan out and emit chunk events.
    let chrome = Arc::new(ChromeTrace::new());
    let rules = gbc_parser::parse_program(
        "tc(X, Y) <- e(X, Y).
         tc(X, Z) <- tc(X, Y), e(Y, Z).",
    )
    .unwrap()
    .rules;
    let mut db = gbc_storage::Database::new();
    for i in 0..512i64 {
        db.insert_values("e", vec![gbc_ast::Value::int(i), gbc_ast::Value::int(i + 1)]);
    }
    let mut sn = gbc_engine::seminaive::Seminaive::new(rules);
    sn.set_threads(4);
    sn.set_trace(Some(chrome.clone()));
    sn.saturate(&mut db).unwrap();

    let file = chrome.to_json();
    let events = match field(&file, "traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };

    // Complete events: one per fanned-out chunk, on a worker lane.
    let mut chunk_tids = Vec::new();
    for ev in events {
        if !matches!(field(ev, "ph"), Some(Json::Str(ph)) if ph == "X") {
            continue;
        }
        assert!(matches!(field(ev, "name"), Some(Json::Str(n)) if n == "worker_chunk"));
        assert!(matches!(field(ev, "dur"), Some(Json::UInt(_))), "X events need a duration");
        let Some(Json::UInt(tid)) = field(ev, "tid") else { panic!("tid must be uint") };
        assert!(*tid >= 2, "worker lanes start at tid 2, got {tid}");
        if !chunk_tids.contains(tid) {
            chunk_tids.push(*tid);
        }
        let args = field(ev, "args").expect("args payload");
        assert!(matches!(field(args, "type"), Some(Json::Str(t)) if t == "worker_chunk"));
        assert!(matches!(field(args, "items"), Some(Json::UInt(n)) if *n > 0));
    }
    assert!(
        !chunk_tids.is_empty(),
        "a 512-node chain closure at 4 threads must fan out at least one round"
    );

    // Exactly one thread_name metadata record per lane that has chunks.
    let mut named_tids = Vec::new();
    for ev in events {
        if !matches!(field(ev, "name"), Some(Json::Str(n)) if n == "thread_name") {
            continue;
        }
        assert!(matches!(field(ev, "ph"), Some(Json::Str(ph)) if ph == "M"));
        let Some(Json::UInt(tid)) = field(ev, "tid") else { panic!("tid must be uint") };
        assert!(!named_tids.contains(tid), "duplicate thread_name for tid {tid}");
        named_tids.push(*tid);
        let args = field(ev, "args").expect("metadata args");
        assert!(matches!(field(args, "name"), Some(Json::Str(n)) if n.starts_with("worker ")));
    }
    chunk_tids.sort_unstable();
    named_tids.sort_unstable();
    assert_eq!(chunk_tids, named_tids, "every chunk lane must be named, and only those");
}

#[test]
fn serial_trace_has_no_worker_lanes() {
    // threads = 1 must keep the pre-lane serial format: instant events
    // only, everything on tid 1, no metadata records.
    let chrome = Arc::new(ChromeTrace::new());
    let tel = Telemetry::enabled().with_trace(chrome.clone());
    let g = workload::connected_graph(128, 128 * 3, 1000, 42);
    let (compiled, edb) = prim::prepared(&g, 0);
    compiled.run_greedy_telemetry(&edb, GreedyConfig::with_threads(1), &tel).unwrap();

    let file = chrome.to_json();
    let events = match field(&file, "traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());
    for ev in events {
        assert!(matches!(field(ev, "ph"), Some(Json::Str(ph)) if ph == "i"));
        assert!(matches!(field(ev, "tid"), Some(Json::UInt(1))));
        assert!(!matches!(field(ev, "name"), Some(Json::Str(n)) if n == "thread_name"));
    }
}

#[test]
fn profiler_attributes_nearly_all_run_time() {
    // A 256-node graph: large enough that per-rule join work dominates
    // the executor's fixed per-round bookkeeping.
    let tel = Telemetry::enabled().with_profiler();
    traced_prim_run(&tel, 256);

    let attributed = tel.profiler.total_secs();
    let run_secs = tel
        .phases
        .entries()
        .iter()
        .find(|(name, _, _)| name == "run")
        .map(|(_, secs, _)| *secs)
        .expect("run phase timed");
    assert!(run_secs > 0.0);
    let coverage = attributed / run_secs;
    assert!(
        coverage >= 0.95,
        "profiler must attribute ≥95% of run time, got {:.1}% ({attributed:.6}s of {run_secs:.6}s)",
        coverage * 100.0
    );
    assert!(coverage <= 1.02, "attributed time cannot exceed the run phase, got {coverage}");
}
