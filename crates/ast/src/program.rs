//! Programs: rule collections plus program-level validation.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::error::AstError;
use crate::literal::{Atom, Literal};
use crate::rule::Rule;
use crate::span::Span;
use crate::symbol::Symbol;
use crate::value::Value;

/// A program: an ordered list of rules (facts included as body-less
/// rules). EDB facts may also be supplied separately at evaluation time;
/// `gbc-engine` merges both.
#[derive(Clone, Default, PartialEq)]
pub struct Program {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Build from rules.
    pub fn from_rules(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Append a ground fact `pred(args)`.
    pub fn push_fact(&mut self, pred: impl Into<Symbol>, args: Vec<Value>) {
        let atom = Atom::new(pred, args.into_iter().map(crate::term::Term::Const).collect());
        self.rules.push(Rule::fact(atom));
    }

    /// Rules that are not facts.
    pub fn proper_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| !r.is_fact())
    }

    /// Facts only.
    pub fn facts(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.is_fact())
    }

    /// Every predicate with its arity, in name order.
    ///
    /// Returns an error on inconsistent arity.
    pub fn signature(&self) -> Result<BTreeMap<Symbol, usize>, AstError> {
        let mut sig: BTreeMap<Symbol, usize> = BTreeMap::new();
        let mut check = |pred: Symbol, arity: usize| -> Result<(), AstError> {
            match sig.get(&pred) {
                Some(&a) if a != arity => Err(AstError::ArityMismatch {
                    pred: pred.as_str().to_owned(),
                    expected: a,
                    found: arity,
                }),
                _ => {
                    sig.insert(pred, arity);
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            check(r.head.pred, r.head.arity())?;
            for l in &r.body {
                if let Literal::Pos(a) | Literal::Neg(a) = l {
                    check(a.pred, a.arity())?;
                }
            }
        }
        Ok(sig)
    }

    /// Predicates that appear in some rule head (intensional + facts).
    pub fn head_predicates(&self) -> Vec<Symbol> {
        let mut preds: Vec<Symbol> = self.rules.iter().map(|r| r.head.pred).collect();
        preds.sort();
        preds.dedup();
        preds
    }

    /// Predicates defined only by facts or never defined (extensional).
    pub fn edb_predicates(&self) -> Vec<Symbol> {
        let idb: Vec<Symbol> =
            self.rules.iter().filter(|r| !r.is_fact()).map(|r| r.head.pred).collect();
        let mut edb: Vec<Symbol> = Vec::new();
        for r in &self.rules {
            for l in &r.body {
                if let Literal::Pos(a) | Literal::Neg(a) = l {
                    if !idb.contains(&a.pred) && !edb.contains(&a.pred) {
                        edb.push(a.pred);
                    }
                }
            }
            if r.is_fact() && !idb.contains(&r.head.pred) && !edb.contains(&r.head.pred) {
                edb.push(r.head.pred);
            }
        }
        edb.sort();
        edb
    }

    /// Full static validation: arity consistency, fact groundness, rule
    /// safety, and `next`-goal well-formedness (at most one per rule;
    /// the stage variable must appear in the head).
    pub fn validate(&self) -> Result<(), AstError> {
        self.signature()?;
        for r in &self.rules {
            if r.is_fact() && !r.head.is_ground() {
                return Err(AstError::NonGroundFact { rule: r.to_string() });
            }
            r.check_safety()?;
            let next_vars: Vec<_> = r
                .body
                .iter()
                .filter_map(|l| match l {
                    Literal::Next { var } => Some(*var),
                    _ => None,
                })
                .collect();
            if next_vars.len() > 1 {
                return Err(AstError::MultipleNext { rule: r.to_string() });
            }
            if let Some(v) = next_vars.first() {
                let head_has = {
                    let mut hv = Vec::new();
                    for t in &r.head.args {
                        t.collect_vars(&mut hv);
                    }
                    hv.contains(v)
                };
                if !head_has {
                    return Err(AstError::MalformedNext {
                        rule: r.to_string(),
                        detail: "stage variable must appear in the rule head".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Concatenate two programs (used by the rewriting passes).
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
    }

    /// All static-validation failures as span-carrying diagnostics
    /// (codes GBC002–GBC006). Unlike [`Program::validate`], which stops
    /// at the first error, this collects every failure so `gbc check`
    /// can report them in one pass. Empty iff `validate()` returns `Ok`.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        // GBC002: arity consistency. Remember the first-seen occurrence
        // of each predicate so the mismatch can point both ways.
        let mut sig: BTreeMap<Symbol, (usize, Span)> = BTreeMap::new();
        let mut check_arity = |pred: Symbol,
                               arity: usize,
                               span: Span,
                               out: &mut Vec<Diagnostic>| match sig
            .get(&pred)
        {
            Some(&(first, first_span)) if first != arity => {
                out.push(
                    Diagnostic::error(
                        "GBC002",
                        format!(
                            "predicate `{pred}` used with arity {arity}, \
                                 but first used with arity {first}"
                        ),
                    )
                    .with_label(span, format!("arity {arity} here"))
                    .with_secondary(first_span, format!("arity {first} established here"))
                    .with_note("every predicate must be used with a single arity program-wide"),
                );
            }
            Some(_) => {}
            None => {
                sig.insert(pred, (arity, span));
            }
        };
        for r in &self.rules {
            check_arity(r.head.pred, r.head.arity(), r.head_span(), &mut out);
            for (i, l) in r.body.iter().enumerate() {
                if let Literal::Pos(a) | Literal::Neg(a) = l {
                    check_arity(a.pred, a.arity(), r.literal_span(i), &mut out);
                }
            }
        }

        for r in &self.rules {
            // GBC004: facts must be ground.
            if r.is_fact() && !r.head.is_ground() {
                out.push(
                    Diagnostic::error("GBC004", format!("fact `{r}` has a non-ground head"))
                        .with_label(r.head_span(), "contains variables")
                        .with_help("facts are body-less rules; every argument must be a constant"),
                );
            }
            // GBC003: safety / range restriction.
            for v in r.unsafe_vars() {
                out.push(
                    Diagnostic::error(
                        "GBC003",
                        format!(
                            "unsafe variable `{}` in rule for `{}`",
                            r.var_name(v),
                            r.head.pred
                        ),
                    )
                    .with_label(
                        r.var_span(v),
                        format!("`{}` is not bound by any positive body literal", r.var_name(v)),
                    )
                    .with_note(
                        "every variable must be limited: bound by a positive body atom, by \
                         `next`, or by an `=` goal over limited variables (range restriction)",
                    ),
                );
            }
            // GBC005/GBC006: next-goal well-formedness.
            let next_lits: Vec<(usize, crate::term::VarId)> = r
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, l)| match l {
                    Literal::Next { var } => Some((i, *var)),
                    _ => None,
                })
                .collect();
            if next_lits.len() > 1 {
                let (first, _) = next_lits[0];
                let (second, _) = next_lits[1];
                out.push(
                    Diagnostic::error(
                        "GBC006",
                        format!("rule for `{}` has more than one `next` goal", r.head.pred),
                    )
                    .with_label(r.literal_span(second), "second `next` goal")
                    .with_secondary(r.literal_span(first), "first `next` goal")
                    .with_note(
                        "a rule mints at most one new stage (Section 3: one stage per \
                         committed head)",
                    ),
                );
            } else if let Some(&(i, v)) = next_lits.first() {
                let mut head_vars = Vec::new();
                for t in &r.head.args {
                    t.collect_vars(&mut head_vars);
                }
                if !head_vars.contains(&v) {
                    out.push(
                        Diagnostic::error(
                            "GBC005",
                            format!(
                                "stage variable `{}` of `next` does not appear in the rule head",
                                r.var_name(v)
                            ),
                        )
                        .with_label(r.literal_span(i), "stage minted here")
                        .with_secondary(r.head_span(), "head does not receive the stage")
                        .with_note(
                            "the stage number must be recorded in the head so the tuple ↔ \
                             stage bijection of Section 3 exists",
                        ),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Term, VarId};

    #[test]
    fn signature_collects_arities() {
        let mut p = Program::new();
        p.push_fact("g", vec![Value::sym("a"), Value::sym("b"), Value::int(1)]);
        p.push(Rule::new(
            Atom::new("reach", vec![Term::var(0)]),
            vec![Literal::pos("g", vec![Term::var(0), Term::var(1), Term::var(2)])],
            vec!["X".into(), "Y".into(), "C".into()],
        ));
        let sig = p.signature().unwrap();
        assert_eq!(sig[&Symbol::intern("g")], 3);
        assert_eq!(sig[&Symbol::intern("reach")], 1);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut p = Program::new();
        p.push_fact("g", vec![Value::sym("a")]);
        p.push_fact("g", vec![Value::sym("a"), Value::sym("b")]);
        assert!(matches!(p.signature(), Err(AstError::ArityMismatch { .. })));
    }

    #[test]
    fn edb_is_what_never_appears_as_rule_head() {
        let mut p = Program::new();
        p.push(Rule::new(
            Atom::new("tc", vec![Term::var(0), Term::var(1)]),
            vec![Literal::pos("e", vec![Term::var(0), Term::var(1)])],
            vec!["X".into(), "Y".into()],
        ));
        assert_eq!(p.edb_predicates(), vec![Symbol::intern("e")]);
        assert_eq!(p.head_predicates(), vec![Symbol::intern("tc")]);
    }

    #[test]
    fn validate_rejects_nonground_fact() {
        let p = Program::from_rules(vec![Rule::new(
            Atom::new("g", vec![Term::var(0)]),
            vec![],
            vec!["X".into()],
        )]);
        assert!(matches!(p.validate(), Err(AstError::NonGroundFact { .. })));
    }

    #[test]
    fn validate_rejects_next_var_missing_from_head() {
        // p(X) <- next(I), q(X).
        let p = Program::from_rules(vec![Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::Next { var: VarId(1) }, Literal::pos("q", vec![Term::var(0)])],
            vec!["X".into(), "I".into()],
        )]);
        assert!(matches!(p.validate(), Err(AstError::MalformedNext { .. })));
    }

    #[test]
    fn validate_rejects_two_next_goals() {
        let p = Program::from_rules(vec![Rule::new(
            Atom::new("p", vec![Term::var(0), Term::var(1)]),
            vec![Literal::Next { var: VarId(0) }, Literal::Next { var: VarId(1) }],
            vec!["I".into(), "J".into()],
        )]);
        assert!(matches!(p.validate(), Err(AstError::MultipleNext { .. })));
    }
}
