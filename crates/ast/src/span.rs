//! Source spans and the source map.
//!
//! Spans are half-open byte ranges `[start, end)` into the concatenated
//! program source. They are minted by the lexer, threaded through the
//! parser, and attached to rules as [`RuleSpans`] so that every static
//! check can point at the exact rule, literal or argument it is
//! complaining about. Line/column information is *not* stored in the
//! span; it is recovered on demand from a [`SourceMap`], which also
//! remembers the file boundaries when several `.dl` files are
//! concatenated (`gbc run program.dl data.dl`).

use std::fmt;

/// A half-open byte range into the program source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Build a span.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The zero span, used for synthesized AST nodes with no source.
    pub fn dummy() -> Span {
        Span { start: 0, end: 0 }
    }

    /// True for the zero span of synthesized nodes.
    pub fn is_dummy(&self) -> bool {
        self.start == 0 && self.end == 0
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Spans of one body literal: the literal itself plus its top-level
/// sub-terms in source order (atom arguments; `lhs`/`rhs` of a
/// comparison; cost then group terms of an extremum; left then right
/// tuple elements of a `choice`; the variable of `next`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiteralSpans {
    /// The whole literal.
    pub span: Span,
    /// Top-level sub-term spans, in source order. May be empty when the
    /// literal was produced by a rewriting pass or a parse path that
    /// does not track argument positions; consumers must fall back to
    /// [`LiteralSpans::span`].
    pub args: Vec<Span>,
}

impl LiteralSpans {
    /// The span of argument `i`, falling back to the literal span.
    pub fn arg(&self, i: usize) -> Span {
        self.args.get(i).copied().unwrap_or(self.span)
    }
}

/// Source spans of one rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleSpans {
    /// The whole rule, `head` through the final `.`.
    pub span: Span,
    /// The head atom.
    pub head: Span,
    /// The head atom's top-level argument terms.
    pub head_args: Vec<Span>,
    /// One entry per body literal, in body order.
    pub literals: Vec<LiteralSpans>,
}

impl RuleSpans {
    /// The span of body literal `i`, falling back to the rule span.
    pub fn literal(&self, i: usize) -> Span {
        self.literals.get(i).map(|l| l.span).unwrap_or(self.span)
    }

    /// The span of argument `a` of body literal `i`, with fallbacks.
    pub fn literal_arg(&self, i: usize, a: usize) -> Span {
        self.literals.get(i).map(|l| l.arg(a)).unwrap_or(self.span)
    }

    /// The span of head argument `a`, falling back to the head span.
    pub fn head_arg(&self, a: usize) -> Span {
        self.head_args.get(a).copied().unwrap_or(self.head)
    }
}

/// One source file inside a [`SourceMap`].
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Display name (usually the path given on the command line).
    pub name: String,
    /// File contents, newline-terminated.
    pub text: String,
    /// Byte offset of this file's first character in the concatenation.
    pub base: u32,
}

/// A resolved source location: file, 1-based line and column, and the
/// text of the containing line (for snippet rendering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Location {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub line_text: String,
}

/// The concatenation of one or more named source files, with enough
/// bookkeeping to resolve a [`Span`] back to file/line/column.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
    len: u32,
}

impl SourceMap {
    /// Empty map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// A map over a single anonymous source (tests, library callers).
    pub fn single(name: &str, text: &str) -> SourceMap {
        let mut sm = SourceMap::new();
        sm.add_file(name, text);
        sm
    }

    /// Append a file; returns the base offset its spans start at. A
    /// trailing newline is added when missing so concatenated files
    /// never glue tokens together.
    pub fn add_file(&mut self, name: &str, text: &str) -> u32 {
        let base = self.len;
        let mut text = text.to_owned();
        if !text.ends_with('\n') {
            text.push('\n');
        }
        self.len += text.len() as u32;
        self.files.push(SourceFile { name: name.to_owned(), text, base });
        base
    }

    /// The full concatenated source (what should be handed to the parser).
    pub fn source(&self) -> String {
        let mut out = String::with_capacity(self.len as usize);
        for f in &self.files {
            out.push_str(&f.text);
        }
        out
    }

    /// The files in the map.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// The file containing byte `offset`, if any.
    pub fn file_of(&self, offset: u32) -> Option<&SourceFile> {
        self.files.iter().rev().find(|f| offset >= f.base && offset < f.base + f.text.len() as u32)
    }

    /// Resolve a byte offset to a [`Location`]. Offsets past the end
    /// resolve to the last line of the last file (so EOF diagnostics
    /// still render).
    pub fn locate(&self, offset: u32) -> Option<Location> {
        let file = match self.file_of(offset) {
            Some(f) => f,
            None => self.files.last()?,
        };
        let rel =
            (offset.saturating_sub(file.base) as usize).min(file.text.len().saturating_sub(1));
        let mut line = 1u32;
        let mut line_start = 0usize;
        for (i, b) in file.text.bytes().enumerate() {
            if i >= rel {
                break;
            }
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        let line_end =
            file.text[line_start..].find('\n').map(|i| line_start + i).unwrap_or(file.text.len());
        let col = (rel - line_start.min(rel)) as u32 + 1;
        Some(Location {
            file: file.name.clone(),
            line,
            col,
            line_text: file.text[line_start..line_end].to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union_covers_both() {
        assert_eq!(Span::new(3, 7).to(Span::new(5, 12)), Span::new(3, 12));
        assert!(Span::dummy().is_dummy());
        assert!(!Span::new(0, 1).is_dummy());
    }

    #[test]
    fn locate_resolves_lines_and_columns() {
        let sm = SourceMap::single("a.dl", "p(x).\nq(y).\n");
        let l = sm.locate(6).unwrap();
        assert_eq!((l.line, l.col), (2, 1));
        assert_eq!(l.line_text, "q(y).");
        let l0 = sm.locate(2).unwrap();
        assert_eq!((l0.line, l0.col), (1, 3));
    }

    #[test]
    fn multi_file_offsets_resolve_to_the_right_file() {
        let mut sm = SourceMap::new();
        sm.add_file("one.dl", "p(a).");
        let base = sm.add_file("two.dl", "q(b).\n");
        assert_eq!(base, 6); // "p(a)." + added '\n'
        let l = sm.locate(base + 2).unwrap();
        assert_eq!(l.file, "two.dl");
        assert_eq!((l.line, l.col), (1, 3));
        assert_eq!(l.line_text, "q(b).");
    }

    #[test]
    fn source_concatenation_matches_bases() {
        let mut sm = SourceMap::new();
        sm.add_file("one.dl", "p(a).\n");
        sm.add_file("two.dl", "q(b).\n");
        assert_eq!(sm.source(), "p(a).\nq(b).\n");
        assert_eq!(sm.file_of(0).unwrap().name, "one.dl");
        assert_eq!(sm.file_of(6).unwrap().name, "two.dl");
        assert!(sm.file_of(99).is_none());
    }

    #[test]
    fn locate_past_end_clamps_to_last_line() {
        let sm = SourceMap::single("a.dl", "p(x).\n");
        let l = sm.locate(1000).unwrap();
        assert_eq!(l.line, 1);
    }
}
