//! Derivation provenance: why is this tuple in the model?
//!
//! A [`ProvenanceArena`] interns `(predicate, row)` pairs into dense
//! `u32` ids on demand and records, per derived row, the rule that
//! fired it, the γ step at which it appeared, and the parent rows the
//! firing joined over. For choice rules it additionally records the
//! committed functional-dependency pairs and every *rejected*
//! candidate together with the `diffChoice` (or stage-guard) reason —
//! the raw material for `gbc explain`'s derivation trees.
//!
//! The arena is attached to a [`crate::Database`] as an
//! `Option<Arc<_>>`; when absent (the default), the executors skip
//! recording entirely, so the hot path pays one pointer-null test.
//! Interning is on demand, so relations themselves are untouched.

use std::sync::{Arc, Mutex};

use gbc_ast::{Symbol, Value};

use crate::fx::{FxHashMap, FxHashSet};
use crate::tuple::Row;

/// How one row was derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// Index into the original program's rule list.
    pub rule: usize,
    /// γ step counter at recording time (0 for pre-γ flat facts).
    pub step: u64,
    /// Arena ids of the rows the rule's body matched.
    pub parents: Vec<u32>,
}

/// One committed choice: the FD pairs a γ step locked in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChoiceCommit {
    /// Index into the original program's rule list.
    pub rule: usize,
    /// γ step counter at commit time.
    pub step: u64,
    /// Arena id of the committed head row.
    pub row: u32,
    /// `(left, right)` tuples per choice goal, in goal order.
    pub pairs: Vec<(Vec<Value>, Vec<Value>)>,
}

/// Goal index marking a rejection not tied to one choice goal
/// (stage guards, stage reuse).
pub const NO_GOAL: usize = usize::MAX;

/// One rejected choice candidate and why it fell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChoiceRejection {
    /// Index into the original program's rule list.
    pub rule: usize,
    /// Which choice goal failed ([`NO_GOAL`] for non-FD reasons).
    pub goal: usize,
    /// γ step counter at rejection time.
    pub step: u64,
    /// Stable reason label (`"diffchoice"`, `"stale-stage"`,
    /// `"stage-reuse"`).
    pub reason: &'static str,
    /// Arena id of the candidate row (head or popped source row).
    pub row: u32,
    /// The FD key (left tuple) of the failing goal.
    pub left: Vec<Value>,
    /// The right tuple the candidate wanted.
    pub attempted: Vec<Value>,
    /// The right tuple an earlier commit already bound `left` to.
    pub committed: Vec<Value>,
}

#[derive(Debug, Default)]
struct Inner {
    ids: FxHashMap<(Symbol, Row), u32>,
    rows: Vec<(Symbol, Row)>,
    derivations: FxHashMap<u32, Derivation>,
    commits: Vec<ChoiceCommit>,
    rejections: Vec<ChoiceRejection>,
    /// Dedup key for rejections: a losing candidate is re-popped or
    /// re-matched every γ round after it loses; record it once.
    rejection_keys: FxHashSet<(usize, usize, Vec<Value>, Vec<Value>)>,
    step: u64,
}

/// The provenance store. Shared via `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct ProvenanceArena {
    inner: Mutex<Inner>,
}

impl ProvenanceArena {
    /// Empty arena.
    pub fn new() -> ProvenanceArena {
        ProvenanceArena::default()
    }

    /// Convenience: an `Arc`-wrapped empty arena, ready to attach to a
    /// [`crate::Database`].
    pub fn shared() -> Arc<ProvenanceArena> {
        Arc::new(ProvenanceArena::new())
    }

    fn intern_locked(inner: &mut Inner, pred: Symbol, row: &Row) -> u32 {
        if let Some(&id) = inner.ids.get(&(pred, row.clone())) {
            return id;
        }
        let id = inner.rows.len() as u32;
        inner.rows.push((pred, row.clone()));
        inner.ids.insert((pred, row.clone()), id);
        id
    }

    /// The id for `pred(row)`, interning it if new.
    pub fn intern(&self, pred: Symbol, row: &Row) -> u32 {
        let mut inner = self.inner.lock().expect("provenance lock");
        ProvenanceArena::intern_locked(&mut inner, pred, row)
    }

    /// The id for `pred(row)` if it has been interned.
    pub fn lookup(&self, pred: Symbol, row: &Row) -> Option<u32> {
        self.inner.lock().expect("provenance lock").ids.get(&(pred, row.clone())).copied()
    }

    /// The `(pred, row)` pair behind an id.
    pub fn row(&self, id: u32) -> Option<(Symbol, Row)> {
        self.inner.lock().expect("provenance lock").rows.get(id as usize).cloned()
    }

    /// Record how `pred(row)` was derived. First write wins: seminaive
    /// re-derivations of an already-explained fact keep the original
    /// justification.
    pub fn record_derivation(
        &self,
        pred: Symbol,
        row: &Row,
        rule: usize,
        parents: &[(Symbol, Row)],
    ) {
        let mut inner = self.inner.lock().expect("provenance lock");
        let id = ProvenanceArena::intern_locked(&mut inner, pred, row);
        if inner.derivations.contains_key(&id) {
            return;
        }
        let parent_ids: Vec<u32> = parents
            .iter()
            .map(|(p, r)| ProvenanceArena::intern_locked(&mut inner, *p, r))
            .collect();
        let step = inner.step;
        inner.derivations.insert(id, Derivation { rule, step, parents: parent_ids });
    }

    /// The derivation record for an id, if any (EDB and program facts
    /// have none).
    pub fn derivation(&self, id: u32) -> Option<Derivation> {
        self.inner.lock().expect("provenance lock").derivations.get(&id).cloned()
    }

    /// Record a committed choice.
    pub fn record_commit(
        &self,
        rule: usize,
        pred: Symbol,
        row: &Row,
        pairs: Vec<(Vec<Value>, Vec<Value>)>,
    ) {
        let mut inner = self.inner.lock().expect("provenance lock");
        let id = ProvenanceArena::intern_locked(&mut inner, pred, row);
        let step = inner.step;
        inner.commits.push(ChoiceCommit { rule, step, row: id, pairs });
    }

    /// Record a rejected choice candidate. Deduplicated on
    /// `(rule, goal, left, attempted)` — a losing candidate is weighed
    /// again every subsequent γ round, but one rejection record
    /// explains them all.
    #[allow(clippy::too_many_arguments)]
    pub fn record_rejection(
        &self,
        rule: usize,
        goal: usize,
        reason: &'static str,
        pred: Symbol,
        row: &Row,
        left: Vec<Value>,
        attempted: Vec<Value>,
        committed: Vec<Value>,
    ) {
        let mut inner = self.inner.lock().expect("provenance lock");
        let key = (rule, goal, left.clone(), attempted.clone());
        if !inner.rejection_keys.insert(key) {
            return;
        }
        let id = ProvenanceArena::intern_locked(&mut inner, pred, row);
        let step = inner.step;
        inner.rejections.push(ChoiceRejection {
            rule,
            goal,
            step,
            reason,
            row: id,
            left,
            attempted,
            committed,
        });
    }

    /// All commits, in order.
    pub fn commits(&self) -> Vec<ChoiceCommit> {
        self.inner.lock().expect("provenance lock").commits.clone()
    }

    /// All (deduplicated) rejections, in order.
    pub fn rejections(&self) -> Vec<ChoiceRejection> {
        self.inner.lock().expect("provenance lock").rejections.clone()
    }

    /// Interned row count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("provenance lock").rows.len()
    }

    /// Nothing interned yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advance the γ step counter, returning the new value. Executors
    /// call this once per committed γ step so derivations and commits
    /// carry the step at which they happened.
    pub fn advance_step(&self) -> u64 {
        let mut inner = self.inner.lock().expect("provenance lock");
        inner.step += 1;
        inner.step
    }

    /// The current γ step counter.
    pub fn current_step(&self) -> u64 {
        self.inner.lock().expect("provenance lock").step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn interning_is_idempotent() {
        let a = ProvenanceArena::new();
        let p = Symbol::intern("p");
        let id0 = a.intern(p, &row(&[1]));
        let id1 = a.intern(p, &row(&[2]));
        assert_eq!(a.intern(p, &row(&[1])), id0);
        assert_ne!(id0, id1);
        assert_eq!(a.row(id1), Some((p, row(&[2]))));
        assert_eq!(a.lookup(p, &row(&[1])), Some(id0));
        assert_eq!(a.lookup(p, &row(&[3])), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn first_derivation_wins() {
        let a = ProvenanceArena::new();
        let p = Symbol::intern("p");
        let q = Symbol::intern("q");
        a.record_derivation(p, &row(&[1]), 3, &[(q, row(&[5]))]);
        a.record_derivation(p, &row(&[1]), 9, &[]);
        let id = a.lookup(p, &row(&[1])).unwrap();
        let d = a.derivation(id).unwrap();
        assert_eq!(d.rule, 3);
        assert_eq!(d.parents.len(), 1);
        assert_eq!(a.row(d.parents[0]), Some((q, row(&[5]))));
    }

    #[test]
    fn steps_stamp_commits_and_derivations() {
        let a = ProvenanceArena::new();
        let p = Symbol::intern("p");
        assert_eq!(a.current_step(), 0);
        assert_eq!(a.advance_step(), 1);
        a.record_derivation(p, &row(&[1]), 0, &[]);
        a.record_commit(0, p, &row(&[1]), vec![(vec![], vec![Value::int(1)])]);
        let id = a.lookup(p, &row(&[1])).unwrap();
        assert_eq!(a.derivation(id).unwrap().step, 1);
        let commits = a.commits();
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].step, 1);
        assert_eq!(commits[0].row, id);
    }

    #[test]
    fn rejections_deduplicate_by_candidate() {
        let a = ProvenanceArena::new();
        let p = Symbol::intern("p");
        for _ in 0..3 {
            a.record_rejection(
                2,
                0,
                "diffchoice",
                p,
                &row(&[7]),
                vec![Value::int(1)],
                vec![Value::int(7)],
                vec![Value::int(4)],
            );
        }
        // A different attempted tuple is a distinct rejection.
        a.record_rejection(
            2,
            0,
            "diffchoice",
            p,
            &row(&[8]),
            vec![Value::int(1)],
            vec![Value::int(8)],
            vec![Value::int(4)],
        );
        let rejs = a.rejections();
        assert_eq!(rejs.len(), 2);
        assert_eq!(rejs[0].attempted, vec![Value::int(7)]);
        assert_eq!(rejs[0].committed, vec![Value::int(4)]);
        assert_eq!(rejs[1].attempted, vec![Value::int(8)]);
    }
}
