//! `experiments` — regenerate every Section 6 analysis as a table.
//!
//! ```text
//! experiments [prim|sort|matching|kruskal|models|huffman|tsp|spanning|
//!              scheduling|ablation|seminaive|all]...
//!             [--quick] [--json <path>] [--label <name>] [--threads LIST]
//!             [--serve-load SESSIONSxTHREADS] [--compare LABEL]
//!             [--tolerance PCT] [--ratio-gate]
//! ```
//!
//! Each experiment prints problem sizes, wall-clock medians (in-tree
//! warmup + median-of-k harness) for the declarative executor and its
//! procedural comparator, the fitted scaling exponent of each, the
//! correctness cross-checks, and — new with `gbc-telemetry` — the
//! operation counters that certify the paper's bounds independently of
//! the machine: heap operations per `e log e` for Prim (flat across
//! sizes ⇔ the `O(e log e)` claim), γ steps, discarded pops. Output is
//! recorded in `EXPERIMENTS.md`.
//!
//! `--json <path>` appends a machine-readable run (per-row median
//! nanoseconds plus the certificate counters for E1–E4) to `<path>`,
//! creating `{"runs": [...]}` on first use — the repo's perf
//! trajectory, kept in `BENCH_experiments.json` by `ci.sh`. Each run
//! carries a `meta` block (core count, OS/arch) so numbers from
//! different machines are never compared blind.
//!
//! `--threads LIST` (comma-separated, default `1`) re-runs the prim and
//! sort rows at each worker count — the parallel flat-rule saturation
//! scaling table. Counters must be identical across the list (the
//! engine's determinism contract, DESIGN.md §9); only wall-clock moves.
//!
//! `--serve-load SESSIONSxTHREADS` (also accepts `×`) runs the
//! multi-tenant closed-loop harness from `gbc_bench::serve` **through a
//! real `gbc-serve` server over TCP**: tenants are installed as
//! sessions on an ephemeral-port server and every request is a `POST
//! /run` via the in-tree HTTP client, so the p50/p90/p99 and
//! requests-per-second columns measure the end-to-end path a deployed
//! client sees (connect + framing + evaluation + serialization).
//! Semantic counter columns are reconstructed from the responses and
//! stay byte-compatible with the pre-PR9 in-process rows.
//!
//! `--compare LABEL` diffs the **newest** run in the `--json` file
//! against the most recent *earlier* run labelled `LABEL`. Semantic
//! counters must match exactly (hard failure, exit 1); timing columns
//! (`*_ns`, `req_per_sec`) only warn beyond `--tolerance PCT` (default
//! 25), because 1-CPU CI boxes cannot hard-gate wall-clock.
//!
//! `--ratio-gate` checks the freshly measured n-max rows of E1/E2:
//! declarative wall-clock over classical (`classical_ns` for prim,
//! `heapsort_ns` for sort) must stay under the committed ceilings
//! ([`PRIM_MAX_RATIO`], [`SORT_MAX_RATIO`]). Exit 1 on breach, after
//! the `--json` record is appended so the evidence lands.
//!
//! E1/E2 rows also carry the value-dictionary movement of one dedicated
//! run (`dict_entries`/`encode_hits`/`decode_calls`): deterministic
//! columns certifying that interning work scales with the workload's
//! distinct values, not with rows scanned.

use gbc_baselines::huffman::{huffman_tree, weighted_path_length as wpl_base};
use gbc_baselines::kruskal::{kruskal_mst, kruskal_relabel};
use gbc_baselines::matching::greedy_matching;
use gbc_baselines::prim::prim_mst;
use gbc_baselines::sorts::{heapsort, insertion_sort};
use gbc_baselines::total_cost;
use gbc_baselines::tsp::{greedy_chain, is_hamiltonian_path, nearest_neighbour};
use gbc_bench::{fit_exponent, render_table, serve_load_tcp, standard_tenants, Harness, Sample};
use gbc_greedy::{huffman, kruskal, matching, prim, sorting, spanning, student, tsp, workload};
use gbc_telemetry::Json;

/// Print the full usage text plus `err` and exit 2 — every malformed
/// flag lands here instead of a panic backtrace.
fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!();
    eprintln!(
        "usage: experiments [prim|sort|matching|kruskal|models|huffman|tsp|spanning|\n\
         \u{20}                   scheduling|ablation|seminaive|all]...\n\
         \u{20}                  [--quick] [--json <path>] [--label <name>] [--threads LIST]\n\
         \u{20}                  [--serve-load SESSIONSxTHREADS] [--compare LABEL]\n\
         \u{20}                  [--tolerance PCT] [--ratio-gate]"
    );
    std::process::exit(2);
}

/// The next argument after `flag`, or usage-and-exit when it is missing.
fn require_value(it: &mut std::slice::Iter<'_, String>, flag: &str, what: &str) -> String {
    it.next().cloned().unwrap_or_else(|| usage(&format!("{flag} needs {what}")))
}

/// `SESSIONSxTHREADS` → `(sessions, threads)`; accepts `x` or `×`.
fn parse_serve_spec(spec: &str) -> (usize, usize) {
    let parts: Vec<&str> = spec.split(['x', '×']).collect();
    let both = match parts.as_slice() {
        [s, t] => s.trim().parse::<usize>().ok().zip(t.trim().parse::<usize>().ok()),
        _ => None,
    };
    match both {
        Some((s, t)) if s >= 1 && t >= 1 => (s, t),
        _ => usage(&format!("bad --serve-load spec `{spec}` (want e.g. 8x4)")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut json_path: Option<String> = None;
    let mut label = "run".to_owned();
    let mut threads: Vec<usize> = vec![1];
    let mut serve: Option<(usize, usize)> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 25.0f64;
    let mut gate = false;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {}
            "--ratio-gate" => gate = true,
            "--json" => json_path = Some(require_value(&mut it, "--json", "a path")),
            "--label" => label = require_value(&mut it, "--label", "a run label"),
            "--threads" => {
                let list = require_value(&mut it, "--threads", "a comma-separated list");
                threads = list
                    .split(',')
                    .map(|t| {
                        t.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                            usage(&format!("bad thread count `{t}` in --threads"))
                        })
                    })
                    .collect();
            }
            "--serve-load" => {
                let spec = require_value(&mut it, "--serve-load", "SESSIONSxTHREADS (e.g. 8x4)");
                serve = Some(parse_serve_spec(&spec));
            }
            "--compare" => compare = Some(require_value(&mut it, "--compare", "a baseline label")),
            "--tolerance" => {
                let pct = require_value(&mut it, "--tolerance", "a percentage");
                tolerance =
                    pct.parse::<f64>().ok().filter(|p| p.is_finite() && *p >= 0.0).unwrap_or_else(
                        || usage(&format!("bad percentage `{pct}` in --tolerance")),
                    );
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag: {flag}")),
            name => names.push(name.to_owned()),
        }
    }

    if let Some(baseline) = compare {
        let Some(path) = json_path else { usage("--compare needs --json <path>") };
        std::process::exit(compare_runs(&path, &baseline, tolerance));
    }

    if names.is_empty() && serve.is_none() {
        names.push("all".to_owned());
    }

    let run = |name: &str| names.iter().any(|n| n == "all" || n == name);
    let mut rec = Recorder::default();
    if run("prim") {
        e1_prim(quick, &threads, &mut rec);
    }
    if run("sort") {
        e2_sort(quick, &threads, &mut rec);
    }
    if run("matching") {
        e3_matching(quick, &mut rec);
    }
    if run("kruskal") {
        e4_kruskal(quick, &mut rec);
    }
    if run("models") {
        e5_models();
    }
    if run("huffman") {
        e6_huffman(quick);
    }
    if run("tsp") {
        e7_tsp(quick);
    }
    if run("spanning") {
        e8_spanning(quick);
    }
    if run("scheduling") {
        e9_scheduling();
    }
    if run("ablation") {
        a1_ablation(quick);
    }
    if run("seminaive") {
        a2_seminaive(quick);
    }
    if let Some((sessions, workers)) = serve {
        sl_serve_load(quick, sessions, workers, &mut rec);
    }

    // Gate before the record is consumed, exit after it is appended:
    // a breached ceiling still lands in the JSON history for forensics.
    let gate_exit = if gate { ratio_gate(&rec) } else { 0 };
    if let Some(path) = json_path {
        append_run(&path, rec.into_run(&label));
        println!("\nappended run \"{label}\" to {path}");
    }
    if gate_exit != 0 {
        std::process::exit(gate_exit);
    }
}

/// Collects one JSON row per (experiment, problem size) for `--json`.
#[derive(Default)]
struct Recorder {
    experiments: Vec<(String, Vec<Json>)>,
}

impl Recorder {
    fn push(&mut self, exp: &str, fields: Vec<(&str, Json)>) {
        let row = Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect());
        match self.experiments.iter_mut().find(|(name, _)| name == exp) {
            Some((_, rows)) => rows.push(row),
            None => self.experiments.push((exp.to_owned(), vec![row])),
        }
    }

    fn into_run(self, label: &str) -> Json {
        Json::obj(vec![
            // v2: serve-load rows (p50_ns/p90_ns/p99_ns/req_per_sec) may
            // appear; v1 rows are unchanged, so readers only need the
            // version to know which columns can exist.
            ("schema_version", Json::UInt(2)),
            ("label", Json::Str(label.to_owned())),
            ("meta", run_meta()),
            (
                "experiments",
                Json::Arr(
                    self.experiments
                        .into_iter()
                        .map(|(name, rows)| {
                            Json::obj(vec![("name", Json::Str(name)), ("rows", Json::Arr(rows))])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Median seconds → integer nanoseconds for the JSON artifact.
fn ns(secs: f64) -> Json {
    Json::UInt((secs * 1e9).round() as u64)
}

/// Runs `f` once and returns the dictionary-counter movement it caused.
/// The dictionary is process-global, so callers must already have
/// interned the workload's values (the timed repetitions before this
/// call do) for the delta to be a deterministic per-run figure.
fn dict_delta(f: impl FnOnce()) -> gbc_storage::DictStats {
    let before = gbc_storage::dict_stats();
    f();
    gbc_storage::dict_stats().since(&before)
}

/// Committed wall-clock ceilings on declarative/classical at the
/// largest problem size, enforced by `--ratio-gate` (ci-quick runs it).
/// Measured on the columnar dictionary-encoded build with headroom for
/// CI noise; ratchet these down as the interpreter closes the gap.
/// Post-PR10 (batched γ feed: prim's `Y != 0` pre-check now compiles
/// to a columnar check, so its feed skips per-row `Bindings`): quick
/// prim median 29.8, observed max 32.4 over ten runs — ratcheted 35→33.
/// Sort stays at 30: its quick-mode baseline is microseconds and the
/// ratio spikes past 35 under scheduler noise even though the batch
/// kernel trims ~5% off the full-size declarative wall clock.
const PRIM_MAX_RATIO: f64 = 33.0;
const SORT_MAX_RATIO: f64 = 30.0;

/// Checks the recorded n-max rows of E1/E2 against the committed
/// declarative/classical ceilings. Returns the process exit code.
fn ratio_gate(rec: &Recorder) -> i32 {
    let mut failures = 0;
    for (exp, base_field, limit) in
        [("prim", "classical_ns", PRIM_MAX_RATIO), ("sort", "heapsort_ns", SORT_MAX_RATIO)]
    {
        let rows = rec.experiments.iter().find(|(name, _)| name == exp).map(|(_, r)| r.as_slice());
        let Some(rows) = rows else {
            eprintln!("ratio-gate FAIL: experiment \"{exp}\" was not run");
            failures += 1;
            continue;
        };
        let n_of = |r: &Json| r.get("n").and_then(Json::as_u64).unwrap_or(0);
        let n_max = rows.iter().map(n_of).max().unwrap_or(0);
        // Rows are pushed threads[0]-first, so the first n-max row is
        // the canonical serial lane.
        let Some(row) = rows.iter().find(|r| n_of(r) == n_max) else {
            eprintln!("ratio-gate FAIL: experiment \"{exp}\" recorded no rows");
            failures += 1;
            continue;
        };
        let decl = row.get("decl_ns").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let base = row.get(base_field).and_then(Json::as_f64).unwrap_or(f64::NAN);
        let ratio = decl / base.max(1.0);
        let thr = row.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let what = base_field.trim_end_matches("_ns");
        if ratio <= limit {
            println!(
                "ratio-gate ok:   {exp} n={n_max} thr={thr} decl/{what} = {ratio:.1} <= {limit}"
            );
        } else {
            eprintln!(
                "ratio-gate FAIL: {exp} n={n_max} thr={thr} decl/{what} = {ratio:.1} > {limit}"
            );
            failures += 1;
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

/// The hardware/OS context a run was measured on. Timings from records
/// with different `meta` blocks are not comparable; counters are.
fn run_meta() -> Json {
    let cores = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0);
    Json::obj(vec![
        ("cores", Json::UInt(cores)),
        ("os", Json::Str(std::env::consts::OS.to_owned())),
        ("arch", Json::Str(std::env::consts::ARCH.to_owned())),
    ])
}

/// Append one run object to the `{"runs": [...]}` array at `path`,
/// creating the file on first use. The file is only ever written by
/// this function, so the splice can rely on its exact shape.
fn append_run(path: &str, run: Json) {
    let run_text = run.pretty();
    let out = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let Some(prefix) = trimmed.strip_suffix("]}") else {
                eprintln!("{path} does not end in \"]}}\" — not a bench-run file; refusing");
                std::process::exit(2);
            };
            let sep = if prefix.trim_end().ends_with('[') { "\n" } else { ",\n" };
            format!("{}{}{}\n]}}\n", prefix.trim_end(), sep, run_text)
        }
        Err(_) => format!("{{\"runs\": [\n{run_text}\n]}}\n"),
    };
    std::fs::write(path, out).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
}

fn harness(quick: bool) -> Harness {
    if quick {
        Harness::quick()
    } else {
        Harness::new()
    }
}

fn secs(s: f64) -> String {
    format!("{:.4}", s)
}

fn e1_prim(quick: bool, threads: &[usize], rec: &mut Recorder) {
    println!("\n== E1  Prim (Example 4): declarative O(e log e) vs classical O(e log n) ==");
    let sizes: &[usize] = if quick { &[128, 256, 512] } else { &[128, 256, 512, 1024, 2048] };
    let h = harness(quick);
    let mut rows = Vec::new();
    let mut decl_samples = Vec::new();
    let mut base_samples = Vec::new();
    for &n in sizes {
        let g = workload::connected_graph(n, 3 * n, 1_000_000, 42);
        let e = g.num_edges();
        let (compiled, edb) = prim::prepared(&g, 0);
        let (base, t_base) = h.run(|| prim_mst(g.n, &g.edges, 0));
        let mut serial_snapshot = None;
        for &t in threads {
            let config = gbc_core::GreedyConfig::with_threads(t);
            let (run, t_decl) = h.run(|| compiled.run_greedy_with(&edb, config).unwrap());
            let decl_edges = prim::decode(&run);
            assert_eq!(total_cost(&decl_edges), total_cost(&base), "MST costs must agree");
            // Determinism contract (DESIGN.md §9): every thread count
            // derives the same tuples through the same operations.
            match &serial_snapshot {
                None => serial_snapshot = Some(run.snapshot.clone()),
                Some(s) => assert_eq!(s, &run.snapshot, "counters drift at {t} threads"),
            }
            // Machine-independent certificate of O(e log e): total heap
            // operations per e·log₂e stay flat as e grows.
            let heap_ops = run.snapshot.heap_ops();
            let elog = e as f64 * (e as f64).log2();
            if t == threads[0] {
                decl_samples.push(Sample { size: e as u64, secs: t_decl.median_secs });
                base_samples.push(Sample { size: e as u64, secs: t_base.median_secs });
            }
            // Dictionary-counter movement of one dedicated run: the
            // timed repetitions above interned every value this workload
            // can produce, so the delta is the per-run interning
            // overhead (hits and boundary decodes; zero new entries).
            let dict = dict_delta(|| {
                compiled.run_greedy_with(&edb, config).unwrap();
            });
            rec.push(
                "prim",
                vec![
                    ("n", Json::UInt(n as u64)),
                    ("e", Json::UInt(e as u64)),
                    ("threads", Json::UInt(t as u64)),
                    ("decl_ns", ns(t_decl.median_secs)),
                    ("classical_ns", ns(t_base.median_secs)),
                    ("mst_cost", Json::Int(total_cost(&decl_edges))),
                    ("heap_ops", Json::UInt(heap_ops)),
                    ("gamma_steps", Json::UInt(run.snapshot.gamma_steps)),
                    ("flat_rounds", Json::UInt(run.snapshot.flat_rounds)),
                    ("discarded_pops", Json::UInt(run.snapshot.discarded_pops)),
                    ("diffchoice_rejections", Json::UInt(run.snapshot.diffchoice_rejections)),
                    ("tuples_derived", Json::UInt(run.snapshot.tuples_derived)),
                    ("rows_cloned", Json::UInt(run.snapshot.rows_cloned)),
                    ("plan_cache_hits", Json::UInt(run.snapshot.plan_cache_hits)),
                    ("heap_batch_pushes", Json::UInt(run.snapshot.heap_batch_pushes)),
                    ("feed_cliques", Json::UInt(run.stats.feed_cliques as u64)),
                    ("dict_entries", Json::UInt(dict.dict_entries)),
                    ("encode_hits", Json::UInt(dict.encode_hits)),
                    ("decode_calls", Json::UInt(dict.decode_calls)),
                ],
            );
            rows.push(vec![
                n.to_string(),
                e.to_string(),
                t.to_string(),
                secs(t_decl.median_secs),
                secs(t_base.median_secs),
                format!("{:.1}", t_decl.median_secs / t_base.median_secs.max(1e-9)),
                total_cost(&decl_edges).to_string(),
                heap_ops.to_string(),
                format!("{:.3}", heap_ops as f64 / elog),
                run.snapshot.flat_rounds.to_string(),
                run.snapshot.discarded_pops.to_string(),
                run.snapshot.diffchoice_rejections.to_string(),
                run.snapshot.plan_cache_hits.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "n",
                "e",
                "thr",
                "decl_s",
                "classical_s",
                "ratio",
                "mst_cost",
                "heap_ops",
                "ops/(e·lg e)",
                "flat_rounds",
                "discarded",
                "diffchoice",
                "plan_hits",
            ],
            &rows
        )
    );
    println!(
        "scaling exponent vs e: declarative {:.2}, classical {:.2} (both ≈ 1 = e·log e); \
         ops/(e·lg e) flat across sizes certifies the bound without a stopwatch",
        fit_exponent(&decl_samples),
        fit_exponent(&base_samples)
    );
}

fn e2_sort(quick: bool, threads: &[usize], rec: &mut Recorder) {
    println!("\n== E2  Sorting (Example 5): the fixpoint runs heap-sort, O(n log n) ==");
    let sizes: &[usize] = if quick { &[512, 1024, 2048] } else { &[512, 1024, 2048, 4096, 8192] };
    let h = harness(quick);
    let mut rows = Vec::new();
    let (mut decl_s, mut heap_s, mut ins_s) = (Vec::new(), Vec::new(), Vec::new());
    for &n in sizes {
        let items = workload::random_items(n, 42);
        let compiled = sorting::compiled();
        let edb = sorting::edb(&items);
        let (_, t_heap) = h.run(|| {
            let mut v: Vec<(i64, i64)> = items.iter().map(|&(x, c)| (c, x)).collect();
            heapsort(&mut v);
            v
        });
        let (_, t_ins) = h.run(|| {
            let mut v: Vec<(i64, i64)> = items.iter().map(|&(x, c)| (c, x)).collect();
            insertion_sort(&mut v);
            v
        });
        let mut serial_snapshot = None;
        for &t in threads {
            let config = gbc_core::GreedyConfig::with_threads(t);
            let (run, t_decl) = h.run(|| compiled.run_greedy_with(&edb, config).unwrap());
            assert_eq!(run.stats.gamma_steps as usize, n);
            match &serial_snapshot {
                None => serial_snapshot = Some(run.snapshot.clone()),
                Some(s) => assert_eq!(s, &run.snapshot, "counters drift at {t} threads"),
            }
            if t == threads[0] {
                decl_s.push(Sample { size: n as u64, secs: t_decl.median_secs });
                heap_s.push(Sample { size: n as u64, secs: t_heap.median_secs });
                ins_s.push(Sample { size: n as u64, secs: t_ins.median_secs });
            }
            let dict = dict_delta(|| {
                compiled.run_greedy_with(&edb, config).unwrap();
            });
            rec.push(
                "sort",
                vec![
                    ("n", Json::UInt(n as u64)),
                    ("threads", Json::UInt(t as u64)),
                    ("decl_ns", ns(t_decl.median_secs)),
                    ("heapsort_ns", ns(t_heap.median_secs)),
                    ("insertion_ns", ns(t_ins.median_secs)),
                    ("heap_ops", Json::UInt(run.snapshot.heap_ops())),
                    ("gamma_steps", Json::UInt(run.snapshot.gamma_steps)),
                    ("flat_rounds", Json::UInt(run.snapshot.flat_rounds)),
                    ("diffchoice_rejections", Json::UInt(run.snapshot.diffchoice_rejections)),
                    ("rows_cloned", Json::UInt(run.snapshot.rows_cloned)),
                    ("plan_cache_hits", Json::UInt(run.snapshot.plan_cache_hits)),
                    ("heap_batch_pushes", Json::UInt(run.snapshot.heap_batch_pushes)),
                    ("feed_cliques", Json::UInt(run.stats.feed_cliques as u64)),
                    ("dict_entries", Json::UInt(dict.dict_entries)),
                    ("encode_hits", Json::UInt(dict.encode_hits)),
                    ("decode_calls", Json::UInt(dict.decode_calls)),
                ],
            );
            rows.push(vec![
                n.to_string(),
                t.to_string(),
                secs(t_decl.median_secs),
                secs(t_heap.median_secs),
                secs(t_ins.median_secs),
                run.snapshot.heap_ops().to_string(),
                run.snapshot.gamma_steps.to_string(),
                run.snapshot.flat_rounds.to_string(),
                run.snapshot.diffchoice_rejections.to_string(),
                run.snapshot.plan_cache_hits.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "n",
                "thr",
                "decl_s",
                "heapsort_s",
                "insertion_s",
                "heap_ops",
                "γ_steps",
                "flat_rounds",
                "diffchoice",
                "plan_hits",
            ],
            &rows
        )
    );
    println!(
        "scaling exponents: declarative {:.2} (≈1, heap-sort-like), heapsort {:.2}, insertion {:.2} (≈2)",
        fit_exponent(&decl_s),
        fit_exponent(&heap_s),
        fit_exponent(&ins_s)
    );
}

fn e3_matching(quick: bool, rec: &mut Recorder) {
    println!("\n== E3  Matching (Example 7): greedy maximal matching, O(e log e) ==");
    let sizes: &[usize] =
        if quick { &[1024, 2048, 4096] } else { &[1024, 2048, 4096, 8192, 16384] };
    let h = harness(quick);
    let mut rows = Vec::new();
    let (mut decl_s, mut base_s) = (Vec::new(), Vec::new());
    for &e in sizes {
        let g = workload::random_arcs(e / 4, e, 42);
        let compiled = matching::compiled();
        let edb = g.to_edb();
        let (run, t_decl) = h.run(|| compiled.run_greedy(&edb).unwrap());
        let (base, t_base) = h.run(|| greedy_matching(g.n, &g.edges));
        let decl = matching::decode(&run);
        assert_eq!(total_cost(&decl), total_cost(&base), "same greedy matching");
        decl_s.push(Sample { size: e as u64, secs: t_decl.median_secs });
        base_s.push(Sample { size: e as u64, secs: t_base.median_secs });
        rec.push(
            "matching",
            vec![
                ("e", Json::UInt(e as u64)),
                ("matching_size", Json::UInt(decl.len() as u64)),
                ("decl_ns", ns(t_decl.median_secs)),
                ("classical_ns", ns(t_base.median_secs)),
                ("heap_ops", Json::UInt(run.snapshot.heap_ops())),
                ("gamma_steps", Json::UInt(run.snapshot.gamma_steps)),
                ("discarded_pops", Json::UInt(run.snapshot.discarded_pops)),
                ("rows_cloned", Json::UInt(run.snapshot.rows_cloned)),
                ("plan_cache_hits", Json::UInt(run.snapshot.plan_cache_hits)),
            ],
        );
        rows.push(vec![
            e.to_string(),
            decl.len().to_string(),
            secs(t_decl.median_secs),
            secs(t_base.median_secs),
            format!("{:.1}", t_decl.median_secs / t_base.median_secs.max(1e-9)),
            run.snapshot.heap_ops().to_string(),
            run.snapshot.discarded_pops.to_string(),
            run.snapshot.rows_cloned.to_string(),
            run.snapshot.plan_cache_hits.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "e",
                "|matching|",
                "decl_s",
                "classical_s",
                "ratio",
                "heap_ops",
                "discarded",
                "rows_cloned",
                "plan_hits",
            ],
            &rows
        )
    );
    println!(
        "scaling exponents vs e: declarative {:.2}, classical {:.2}",
        fit_exponent(&decl_s),
        fit_exponent(&base_s)
    );
}

fn e4_kruskal(quick: bool, rec: &mut Recorder) {
    println!("\n== E4  Kruskal (Example 8): declarative O(e·n) vs classical O(e log e) ==");
    let sizes: &[usize] = if quick { &[256, 512, 1024] } else { &[256, 512, 1024, 2048, 4096] };
    let h = harness(quick);
    let mut rows = Vec::new();
    let (mut decl_s, mut uf_s) = (Vec::new(), Vec::new());
    for &n in sizes {
        let g = workload::connected_graph(n, 3 * n, 1_000_000, 42);
        let (run, t_decl) = h.run(|| kruskal::run_stage_views(&g));
        let (relab, t_relab) = h.run(|| kruskal_relabel(g.n, &g.edges));
        let (uf, t_uf) = h.run(|| kruskal_mst(g.n, &g.edges));
        assert_eq!(total_cost(&run.tree), total_cost(&uf));
        assert_eq!(total_cost(&relab), total_cost(&uf));
        decl_s.push(Sample { size: n as u64, secs: t_decl.median_secs });
        uf_s.push(Sample { size: n as u64, secs: t_uf.median_secs });
        // `run_stage_views` drives `Rql` directly, outside telemetry —
        // timings and structural counts only for this one.
        rec.push(
            "kruskal",
            vec![
                ("n", Json::UInt(n as u64)),
                ("e", Json::UInt(g.num_edges() as u64)),
                ("decl_views_ns", ns(t_decl.median_secs)),
                ("relabel_ns", ns(t_relab.median_secs)),
                ("union_find_ns", ns(t_uf.median_secs)),
                ("tree_edges", Json::UInt(run.tree.len() as u64)),
                ("redundant_pops", Json::UInt(run.redundant)),
            ],
        );
        rows.push(vec![
            n.to_string(),
            g.num_edges().to_string(),
            secs(t_decl.median_secs),
            secs(t_relab.median_secs),
            secs(t_uf.median_secs),
            format!("{:.1}", t_decl.median_secs / t_uf.median_secs.max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(&["n", "e", "decl_views_s", "relabel_s", "union_find_s", "gap"], &rows)
    );
    println!(
        "scaling exponents vs n (e ∝ n): declarative {:.2} (≈2 = e·n), union-find {:.2} (≈1); \
         the gap grows with n, as the paper's analysis predicts",
        fit_exponent(&decl_s),
        fit_exponent(&uf_s)
    );
}

fn e5_models() {
    println!("\n== E5  Choice models (Examples 1-2, Section 2) ==");
    let models = student::enumerate_models().unwrap();
    println!(
        "Example 1 one-student-per-course: {} choice models (paper lists M1, M2, M3)",
        models.len()
    );
    let bi = student::enumerate_bi_models().unwrap();
    println!("bi_st_c (choice + least combination): {} stable models (paper lists 2)", bi.len());
    assert_eq!(models.len(), 3);
    assert_eq!(bi.len(), 2);
}

fn e6_huffman(quick: bool) {
    println!("\n== E6  Huffman (Example 6): optimal prefix trees ==");
    let sizes: &[usize] = if quick { &[8, 16, 32] } else { &[8, 16, 32, 64, 96] };
    let h = harness(quick);
    let mut rows = Vec::new();
    for &k in sizes {
        let w = workload::letter_freqs(k, 42);
        let (run, t_decl) = h.run(|| huffman::run_greedy(&w).unwrap());
        let decl_wpl = huffman::weighted_path_length(&run, &w).unwrap();
        let (base, t_base) = h.run(|| huffman_tree(&w).unwrap());
        let base_wpl = wpl_base(&base, &w);
        assert_eq!(decl_wpl, base_wpl, "equal weighted path length");
        rows.push(vec![
            k.to_string(),
            decl_wpl.to_string(),
            base_wpl.to_string(),
            secs(t_decl.median_secs),
            secs(t_base.median_secs),
        ]);
    }
    println!(
        "{}",
        render_table(&["k", "decl_wpl", "classical_wpl", "decl_s", "classical_s"], &rows)
    );
    println!("equal WPL on every row ⇒ the declarative tree is optimal");
}

fn e7_tsp(quick: bool) {
    println!("\n== E7  Greedy TSP chains (Section 5, sub-optimals) ==");
    let sizes: &[usize] = if quick { &[16, 32, 64] } else { &[16, 32, 64, 128] };
    let h = harness(quick);
    let mut rows = Vec::new();
    for &n in sizes {
        let g = workload::complete_geometric(n, 42);
        let (decl, t_decl) = h.run(|| tsp::run_greedy(&g).unwrap());
        assert!(is_hamiltonian_path(g.n, &decl));
        let (chain, _) = h.run(|| greedy_chain(g.n, &g.edges));
        let (nn, _) = h.run(|| nearest_neighbour(g.n, &g.edges, 0));
        rows.push(vec![
            n.to_string(),
            total_cost(&decl).to_string(),
            total_cost(&chain).to_string(),
            total_cost(&nn).to_string(),
            secs(t_decl.median_secs),
        ]);
    }
    println!(
        "{}",
        render_table(&["n", "decl_cost", "greedy_chain", "nearest_nb", "decl_s"], &rows)
    );
    println!("decl_cost equals greedy_chain on every row; both are heuristics near nearest_nb");
}

fn e8_spanning(quick: bool) {
    println!("\n== E8  Spanning trees (Example 3): every run yields a spanning tree ==");
    let sizes: &[usize] = if quick { &[64, 128] } else { &[64, 128, 256, 512] };
    let h = harness(quick);
    let mut rows = Vec::new();
    for &n in sizes {
        let g = workload::connected_graph(n, 2 * n, 100, 42);
        let (stage_tree, t_stage) = h.run(|| spanning::run_stage(&g, 0).unwrap());
        assert!(spanning::is_spanning_tree(&g, 0, &stage_tree));
        let (choice_tree, t_choice) = h.run(|| spanning::run_choice(&g, 0).unwrap());
        assert!(spanning::is_spanning_tree(&g, 0, &choice_tree));
        rows.push(vec![
            n.to_string(),
            stage_tree.len().to_string(),
            secs(t_stage.median_secs),
            secs(t_choice.median_secs),
        ]);
    }
    println!("{}", render_table(&["n", "tree_edges", "stage_exec_s", "generic_fixpoint_s"], &rows));
}

fn e9_scheduling() {
    println!("\n== E9  Job sequencing with deadlines (Section 5 'scheduling algorithms', most) ==");
    use gbc_baselines::scheduling::{job_sequencing, optimal_profit_bruteforce, Job};
    use gbc_telemetry::rng::Rng;
    let mut rows = Vec::new();
    for seed in [1u64, 2, 3, 4] {
        let mut rng = Rng::new(seed);
        let n = 8;
        let jobs: Vec<Job> =
            (0..n).map(|i| Job::new(i, rng.range_i64(1, 99), rng.range_i64(1, 5) as u32)).collect();
        let sched = gbc_greedy::scheduling::run_greedy(&jobs).unwrap();
        let decl = gbc_greedy::scheduling::total_profit(&jobs, &sched);
        let (_, base) = job_sequencing(&jobs);
        let opt = optimal_profit_bruteforce(&jobs);
        assert_eq!(decl, base);
        assert_eq!(decl, opt, "greedy is optimal (matroid)");
        rows.push(vec![
            seed.to_string(),
            n.to_string(),
            decl.to_string(),
            base.to_string(),
            opt.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["seed", "jobs", "decl_profit", "greedy_profit", "optimum"], &rows)
    );
    println!("declarative = procedural greedy = brute-force optimum on every row");
}

fn a1_ablation(quick: bool) {
    println!("\n== A1  Ablation: (R,Q,L) executor vs generic re-scan fixpoint (sorting) ==");
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 512, 1024] };
    let h = harness(quick);
    let mut rows = Vec::new();
    let (mut rql_s, mut gen_s) = (Vec::new(), Vec::new());
    for &n in sizes {
        let items = workload::random_items(n, 42);
        let compiled = sorting::compiled();
        let edb = sorting::edb(&items);
        let (rql_run, t_rql) = h.run(|| compiled.run_greedy(&edb).unwrap());
        let (gen_run, t_gen) = h.run(|| compiled.run_generic(&edb).unwrap());
        rql_s.push(Sample { size: n as u64, secs: t_rql.median_secs });
        gen_s.push(Sample { size: n as u64, secs: t_gen.median_secs });
        rows.push(vec![
            n.to_string(),
            secs(t_rql.median_secs),
            secs(t_gen.median_secs),
            format!("{:.0}", t_gen.median_secs / t_rql.median_secs.max(1e-9)),
            rql_run.snapshot.heap_ops().to_string(),
            gen_run.snapshot.tuples_derived.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["n", "rql_s", "generic_s", "speedup", "rql_heap_ops", "generic_tuples"],
            &rows
        )
    );
    println!(
        "scaling exponents: rql {:.2} (≈1), generic {:.2} (≈2+) — the storage structure \
         delivers the paper's bounds",
        fit_exponent(&rql_s),
        fit_exponent(&gen_s)
    );
}

fn a2_seminaive(quick: bool) {
    println!("\n== A2  Ablation: seminaive vs naive flat-rule saturation (transitive closure) ==");
    use gbc_ast::Value;
    use gbc_engine::eval::eval_rule_plain;
    use gbc_engine::seminaive::Seminaive;
    use gbc_storage::Database;
    use gbc_telemetry::Metrics;
    use std::sync::Arc;

    fn tc_rules() -> Vec<gbc_ast::Rule> {
        gbc_parser::parse_program(
            "tc(X, Y) <- e(X, Y).
             tc(X, Z) <- tc(X, Y), e(Y, Z).",
        )
        .unwrap()
        .rules
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_values("e", vec![Value::int(i), Value::int(i + 1)]);
        }
        db
    }

    /// Naive evaluation: every rule fully re-evaluated each round.
    fn naive_saturate(db: &mut Database, rules: &[gbc_ast::Rule]) -> u64 {
        let mut total = 0u64;
        loop {
            let mut new_facts = 0u64;
            for rule in rules {
                for row in eval_rule_plain(db, rule, None).unwrap() {
                    if db.insert(rule.head.pred, row) {
                        new_facts += 1;
                    }
                }
            }
            if new_facts == 0 {
                return total;
            }
            total += new_facts;
        }
    }

    let sizes: &[i64] = if quick { &[32, 64] } else { &[32, 64, 128, 256] };
    let h = harness(quick);
    let mut rows = Vec::new();
    let (mut semi_s, mut naive_s) = (Vec::new(), Vec::new());
    for &n in sizes {
        let (facts, t_semi) = h.run(|| {
            let mut db = chain_db(n);
            Seminaive::new(tc_rules()).saturate(&mut db).unwrap()
        });
        let (naive_facts, t_naive) = h.run(|| {
            let mut db = chain_db(n);
            naive_saturate(&mut db, &tc_rules())
        });
        // One dedicated instrumented run for the counter column, so the
        // harness repetitions don't inflate it.
        let metrics = Arc::new(Metrics::new());
        {
            let mut db = chain_db(n);
            let mut sn = Seminaive::new(tc_rules());
            sn.set_metrics(Arc::clone(&metrics));
            sn.saturate(&mut db).unwrap();
        }
        assert_eq!(facts, naive_facts, "identical models");
        semi_s.push(Sample { size: n as u64, secs: t_semi.median_secs });
        naive_s.push(Sample { size: n as u64, secs: t_naive.median_secs });
        let snap = metrics.snapshot();
        rows.push(vec![
            n.to_string(),
            facts.to_string(),
            secs(t_semi.median_secs),
            secs(t_naive.median_secs),
            format!("{:.0}", t_naive.median_secs / t_semi.median_secs.max(1e-9)),
            snap.flat_rounds.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["chain_n", "tc_facts", "seminaive_s", "naive_s", "speedup", "rounds"],
            &rows
        )
    );
    println!(
        "scaling exponents: seminaive {:.2}, naive {:.2} — deltas beat full re-derivation",
        fit_exponent(&semi_s),
        fit_exponent(&naive_s)
    );
}

fn sl_serve_load(quick: bool, sessions: usize, workers: usize, rec: &mut Recorder) {
    println!(
        "\n== SL  Serve-load: {sessions} sessions × {workers} workers, multi-tenant over TCP =="
    );
    let requests: u64 = if quick { 4 } else { 25 };
    let tenants = standard_tenants();
    let report = serve_load_tcp(&tenants, sessions, workers, requests);
    let mut rows = Vec::new();
    for t in &report.tenants {
        // With fewer sessions than tenants, the tail tenants serve none;
        // skip them so baseline and CI rows always line up.
        if t.requests == 0 {
            continue;
        }
        rec.push(
            "serve_load",
            vec![
                ("tenant", Json::Str(t.name.to_owned())),
                ("sessions", Json::UInt(t.sessions as u64)),
                ("threads", Json::UInt(workers as u64)),
                ("requests", Json::UInt(t.requests)),
                ("gamma_steps", Json::UInt(t.per_request.gamma_steps)),
                ("heap_ops", Json::UInt(t.per_request.heap_ops())),
                ("tuples_derived", Json::UInt(t.per_request.tuples_derived)),
                ("p50_ns", Json::UInt(t.latency.p50())),
                ("p90_ns", Json::UInt(t.latency.p90())),
                ("p99_ns", Json::UInt(t.latency.p99())),
            ],
        );
        rows.push(vec![
            t.name.to_owned(),
            t.sessions.to_string(),
            t.requests.to_string(),
            (t.latency.p50() / 1_000).to_string(),
            (t.latency.p90() / 1_000).to_string(),
            (t.latency.p99() / 1_000).to_string(),
            t.per_request.gamma_steps.to_string(),
            t.per_request.heap_ops().to_string(),
            t.per_request.tuples_derived.to_string(),
        ]);
    }
    let all = report.merged_latency();
    rec.push(
        "serve_load",
        vec![
            ("tenant", Json::Str("all".to_owned())),
            ("sessions", Json::UInt(report.sessions as u64)),
            ("threads", Json::UInt(report.threads as u64)),
            ("requests", Json::UInt(report.total_requests())),
            ("p50_ns", Json::UInt(all.p50())),
            ("p90_ns", Json::UInt(all.p90())),
            ("p99_ns", Json::UInt(all.p99())),
            ("wall_ns", ns(report.wall_secs)),
            ("req_per_sec", Json::Float((report.req_per_sec() * 10.0).round() / 10.0)),
        ],
    );
    println!(
        "{}",
        render_table(
            &[
                "tenant",
                "sessions",
                "requests",
                "p50_µs",
                "p90_µs",
                "p99_µs",
                "γ_steps/req",
                "heap_ops/req",
                "tuples/req",
            ],
            &rows
        )
    );
    println!(
        "aggregate: {} requests in {:.3}s = {:.1} req/s (p50 {}µs, p99 {}µs); counter columns \
         are per-request constants, asserted identical within and across sessions",
        report.total_requests(),
        report.wall_secs,
        report.req_per_sec(),
        all.p50() / 1_000,
        all.p99() / 1_000,
    );
}

// ---------------------------------------------------------------------
// `--compare`: the perf-regression gate.
// ---------------------------------------------------------------------

/// Fields that identify a row within an experiment. Everything else in
/// the row is a measurement and gets compared.
const KEY_FIELDS: &[&str] = &["n", "e", "threads", "tenant", "sessions", "requests", "seed"];

/// Timing columns move with the machine and load; they warn instead of
/// failing. Everything else is a machine-independent semantic counter.
fn is_timing_field(name: &str) -> bool {
    name.ends_with("_ns") || name == "req_per_sec"
}

/// Human-readable identity of a row, built from whichever key fields it
/// carries.
fn row_key(row: &Json) -> String {
    let parts: Vec<String> =
        KEY_FIELDS.iter().filter_map(|k| row.get(k).map(|v| format!("{k}={v}"))).collect();
    parts.join(" ")
}

/// Diff the newest run in `path` against the latest *earlier* run
/// labelled `baseline_label`. Returns the process exit code: 0 when all
/// semantic counters match, 1 on counter drift or missing rows, 2 on a
/// malformed file. Timing drift beyond `tolerance` percent only warns.
fn compare_runs(path: &str, baseline_label: &str, tolerance: f64) -> i32 {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    });
    let Some(runs) = doc.get("runs").and_then(|r| r.as_arr()) else {
        eprintln!("{path}: no \"runs\" array — not a bench-run file");
        std::process::exit(2);
    };
    let Some(newest) = runs.last() else {
        eprintln!("{path}: empty runs array");
        std::process::exit(2);
    };
    let Some(baseline) = runs[..runs.len() - 1]
        .iter()
        .rev()
        .find(|r| r.get("label").and_then(|l| l.as_str()) == Some(baseline_label))
    else {
        eprintln!("{path}: no run labelled \"{baseline_label}\" older than the newest run");
        std::process::exit(2);
    };
    let newest_label = newest.get("label").and_then(|l| l.as_str()).unwrap_or("?");
    println!("comparing newest run \"{newest_label}\" against baseline \"{baseline_label}\" (tolerance {tolerance}%)");

    let (mut checked, mut failures, mut warnings) = (0u64, 0u64, 0u64);
    let empty: [Json; 0] = [];
    let base_exps = baseline.get("experiments").and_then(|e| e.as_arr()).unwrap_or(&empty);
    for exp in base_exps {
        let name = exp.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        let base_rows = exp.get("rows").and_then(|r| r.as_arr()).unwrap_or(&empty);
        let new_rows = newest
            .get("experiments")
            .and_then(|e| e.as_arr())
            .and_then(|exps| {
                exps.iter().find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            })
            .and_then(|e| e.get("rows"))
            .and_then(|r| r.as_arr());
        let Some(new_rows) = new_rows else {
            eprintln!("FAIL [{name}] experiment missing from the newest run");
            failures += 1;
            continue;
        };
        for base_row in base_rows {
            let key = row_key(base_row);
            let matches_key = |row: &&Json| {
                KEY_FIELDS.iter().all(|k| match (base_row.get(k), row.get(k)) {
                    (None, None) => true,
                    (Some(a), Some(b)) => a.to_string() == b.to_string(),
                    _ => false,
                })
            };
            let Some(new_row) = new_rows.iter().find(matches_key) else {
                eprintln!("FAIL [{name}] row {{{key}}} missing from the newest run");
                failures += 1;
                continue;
            };
            let Json::Obj(fields) = base_row else { continue };
            for (field, base_val) in fields {
                if KEY_FIELDS.contains(&field.as_str()) {
                    continue;
                }
                checked += 1;
                let Some(new_val) = new_row.get(field) else {
                    eprintln!("FAIL [{name}] {{{key}}}: field `{field}` missing");
                    failures += 1;
                    continue;
                };
                if is_timing_field(field) {
                    let (Some(b), Some(n)) = (base_val.as_f64(), new_val.as_f64()) else {
                        eprintln!("FAIL [{name}] {{{key}}}: `{field}` is not numeric");
                        failures += 1;
                        continue;
                    };
                    // Sub-microsecond nanosecond baselines are noise; 1µs floor.
                    let floor = if field.ends_with("_ns") { 1_000.0 } else { 1e-9 };
                    let pct = (n - b).abs() / b.abs().max(floor) * 100.0;
                    if pct > tolerance {
                        eprintln!(
                            "warn [{name}] {{{key}}}: `{field}` drifted {pct:.1}% ({b} → {n})"
                        );
                        warnings += 1;
                    }
                } else if base_val.to_string() != new_val.to_string() {
                    eprintln!(
                        "FAIL [{name}] {{{key}}}: `{field}` changed {base_val} → {new_val} \
                         (semantic counter — exact match required)"
                    );
                    failures += 1;
                }
            }
        }
    }
    println!(
        "compare: {checked} fields checked, {failures} hard failure(s), {warnings} timing warning(s)"
    );
    if failures > 0 {
        1
    } else {
        0
    }
}
