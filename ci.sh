#!/usr/bin/env bash
# CI entry point — everything runs offline against the vendored/in-tree
# dependency set (the workspace has zero registry dependencies).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests =="
cargo test -q --offline --workspace

echo "== lints =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== format =="
cargo fmt --all --check

echo "== smoke: gbc run with observability =="
stats_json="$(mktemp)"
trap 'rm -f "$stats_json"' EXIT
./target/release/gbc run programs/prim.dl programs/graph_small.dl \
    --stats --stats-json "$stats_json" >/dev/null
grep -q '"gamma_steps": 5' "$stats_json" || {
    echo "unexpected gamma_steps in $stats_json" >&2
    exit 1
}

echo "== bench: machine-readable experiment record =="
# Quick (0-warmup, median-of-3) run of the paper experiments; appends a
# labelled run to BENCH_experiments.json so every CI pass leaves a
# timing + counter trail next to the committed pre/post-PR records.
./target/release/experiments prim sort --quick \
    --json BENCH_experiments.json --label "ci-quick" >/dev/null
grep -q '"label": "ci-quick"' BENCH_experiments.json || {
    echo "experiments run did not land in BENCH_experiments.json" >&2
    exit 1
}

echo "CI OK"
