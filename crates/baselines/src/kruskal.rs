//! Kruskal's MST, two ways:
//!
//! * [`kruskal_mst`] — classical: sort + union-find, `O(e log e)`;
//! * [`kruskal_relabel`] — the paper's declarative cost model: a
//!   priority queue of edges plus an *explicit component table* that is
//!   relabelled in `O(n)` per accepted edge, giving the `O(e·n)` bound
//!   Section 6 derives for Example 8 ("the classical algorithm 'merges'
//!   the smallest component into the 'largest'" — the declarative
//!   program cannot, hence the gap). This is the faithful executable
//!   counterpart of the paper's analysis, used by the E4 experiment.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::unionfind::UnionFind;
use crate::Edge;

/// Classical Kruskal: `O(e log e)`. Returns accepted edges in
/// acceptance order. `edges` may list one or both orientations.
pub fn kruskal_mst(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut sorted: Vec<&Edge> = edges.iter().collect();
    sorted.sort_by_key(|e| (e.cost, e.from.min(e.to), e.from.max(e.to)));
    let mut uf = UnionFind::new(n);
    let mut tree = Vec::new();
    for e in sorted {
        if uf.union(e.from, e.to) {
            tree.push(*e);
            if tree.len() + 1 == n {
                break;
            }
        }
    }
    tree
}

/// The paper's Example 8 cost model: priority queue of edges + a flat
/// component table relabelled in `O(n)` per accepted edge ⇒ `O(e·n)`.
pub fn kruskal_relabel(n: usize, edges: &[Edge]) -> Vec<Edge> {
    // comp[x] = current component id of node x (the paper's `comp`
    // relation restricted to the latest stage).
    let mut comp: Vec<u32> = (0..n as u32).collect();
    let mut heap: BinaryHeap<Reverse<(i64, u32, u32)>> = BinaryHeap::new();
    for e in edges {
        heap.push(Reverse((e.cost, e.from.min(e.to), e.from.max(e.to))));
    }
    let mut tree = Vec::new();
    while let Some(Reverse((c, a, b))) = heap.pop() {
        let (ca, cb) = (comp[a as usize], comp[b as usize]);
        if ca == cb {
            continue; // redundant: moved to R in the paper's account.
        }
        tree.push(Edge::new(a, b, c));
        // Relabel component ca as cb — a full O(n) sweep, exactly the
        // cost the paper charges the `comp` recursive rule.
        for slot in comp.iter_mut() {
            if *slot == ca {
                *slot = cb;
            }
        }
        if tree.len() + 1 == n {
            break;
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_cost;

    fn undirected(pairs: &[(u32, u32, i64)]) -> Vec<Edge> {
        pairs.iter().flat_map(|&(a, b, c)| [Edge::new(a, b, c), Edge::new(b, a, c)]).collect()
    }

    #[test]
    fn both_variants_agree_on_cost() {
        let edges = undirected(&[
            (0, 1, 4),
            (0, 7, 8),
            (1, 2, 8),
            (1, 7, 11),
            (2, 3, 7),
            (2, 8, 2),
            (2, 5, 4),
            (3, 4, 9),
            (3, 5, 14),
            (4, 5, 10),
            (5, 6, 2),
            (6, 7, 1),
            (6, 8, 6),
            (7, 8, 7),
        ]);
        let a = kruskal_mst(9, &edges);
        let b = kruskal_relabel(9, &edges);
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
        assert_eq!(total_cost(&a), 37);
        assert_eq!(total_cost(&b), 37);
    }

    #[test]
    fn kruskal_matches_prim() {
        let edges = undirected(&[(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 3, 4), (1, 3, 5)]);
        let k = kruskal_mst(4, &edges);
        let p = crate::prim::prim_mst(4, &edges, 0);
        assert_eq!(total_cost(&k), total_cost(&p));
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let edges = undirected(&[(0, 1, 1), (2, 3, 2)]);
        let t = kruskal_mst(4, &edges);
        assert_eq!(t.len(), 2);
        assert_eq!(kruskal_relabel(4, &edges).len(), 2);
    }

    #[test]
    fn empty_graph() {
        assert!(kruskal_mst(0, &[]).is_empty());
        assert!(kruskal_relabel(0, &[]).is_empty());
    }
}
