//! Gelfond–Lifschitz stable-model checking.
//!
//! Used to validate the paper's Theorem 1 ("every set of facts produced
//! by the Choice Fixpoint is a stable model") on actual executor
//! outputs: `gbc-core` rewrites a choice program into its negative
//! form, completes the candidate model with the `chosen`/`diffChoice`
//! facts, and calls [`is_stable_model`].
//!
//! The check avoids explicit grounding: the GL reduct `P^M` is the
//! positive program whose negated atoms are *tested against the fixed
//! candidate `M`*, so its least model is computed by an ordinary
//! fixpoint with [`crate::eval::for_each_match_opts`] pointing negation
//! at `M`. `M` is stable iff that least model equals `M`. Any derived
//! fact outside `M` disproves stability immediately (and bounds the
//! fixpoint, so the check terminates even for programs with arithmetic).

use gbc_ast::{Program, Rule};
use gbc_storage::Database;

use crate::error::EngineError;
use crate::eval::{for_each_match_opts, instantiate_head};

/// Is `m` a stable model of `program ∪ edb`?
///
/// `program` may contain positive/negated atoms and comparisons only —
/// `choice`, `least`, `most` and `next` must have been rewritten away
/// (that is precisely the reduction the paper uses to *define* their
/// semantics). `m` must contain the EDB facts.
pub fn is_stable_model(
    program: &Program,
    edb: &Database,
    m: &Database,
) -> Result<bool, EngineError> {
    for r in &program.rules {
        if r.has_choice() || r.has_next() || r.has_extrema() {
            return Err(EngineError::Unstratified {
                detail: format!(
                    "rule `{r}` must be rewritten to negation before stability checking"
                ),
            });
        }
    }

    // Least model of the reduct, seeded with EDB and program facts.
    let mut db = edb.clone();
    for fact in program.facts() {
        let row = fact.head.args.iter().map(|t| t.as_value().expect("ground fact")).collect();
        let pred = fact.head.pred;
        if !m.contains(pred, &row) {
            return Ok(false); // a fact of the program is missing from M
        }
        db.insert(pred, row);
    }
    // EDB must be inside M as well.
    for (pred, row) in edb.iter_all() {
        if !m.contains(pred, &row) {
            return Ok(false);
        }
    }

    let rules: Vec<&Rule> = program.proper_rules().collect();
    loop {
        let mut grew = false;
        let mut escaped = false;
        for rule in &rules {
            let mut derived = Vec::new();
            for_each_match_opts(&db, Some(m), rule, None, &mut |b| {
                derived.push(instantiate_head(rule, b)?);
                Ok(true)
            })?;
            for row in derived {
                if !m.contains(rule.head.pred, &row) {
                    // The reduct derives something outside M: M is not a
                    // model of the reduct (or not minimal-equal) — in
                    // either case not stable.
                    escaped = true;
                    break;
                }
                if db.insert(rule.head.pred, row) {
                    grew = true;
                }
            }
            if escaped {
                break;
            }
        }
        if escaped {
            return Ok(false);
        }
        if !grew {
            break;
        }
    }

    // db ⊆ m by construction; equality ⇔ equal cardinality.
    Ok(db.total_facts() == m.total_facts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::{Atom, Literal, Term, Value};

    fn rule(head: Atom, body: Vec<Literal>, vars: &[&str]) -> Rule {
        Rule::new(head, body, vars.iter().map(|s| s.to_string()).collect())
    }

    /// p <- not q.   q <- not p.   Two stable models: {p}, {q}.
    fn two_model_program() -> Program {
        Program::from_rules(vec![
            rule(Atom::new("p", vec![]), vec![Literal::neg("q", vec![])], &[]),
            rule(Atom::new("q", vec![]), vec![Literal::neg("p", vec![])], &[]),
        ])
    }

    fn model(facts: &[&str]) -> Database {
        let mut db = Database::new();
        for f in facts {
            db.insert_values(*f, vec![]);
        }
        db
    }

    #[test]
    fn classic_two_model_program() {
        let p = two_model_program();
        let edb = Database::new();
        assert!(is_stable_model(&p, &edb, &model(&["p"])).unwrap());
        assert!(is_stable_model(&p, &edb, &model(&["q"])).unwrap());
        // {} is not a model; {p,q} is a model but not stable (reduct is
        // empty, least model ∅ ≠ {p,q}).
        assert!(!is_stable_model(&p, &edb, &model(&[])).unwrap());
        assert!(!is_stable_model(&p, &edb, &model(&["p", "q"])).unwrap());
    }

    #[test]
    fn odd_loop_has_no_stable_model() {
        // p <- not p.
        let p = Program::from_rules(vec![rule(
            Atom::new("p", vec![]),
            vec![Literal::neg("p", vec![])],
            &[],
        )]);
        let edb = Database::new();
        assert!(!is_stable_model(&p, &edb, &model(&[])).unwrap());
        assert!(!is_stable_model(&p, &edb, &model(&["p"])).unwrap());
    }

    #[test]
    fn positive_program_unique_stable_model_is_least_model() {
        // tc via facts: e(1,2), e(2,3).
        let mut p = Program::from_rules(vec![
            rule(
                Atom::new("tc", vec![Term::var(0), Term::var(1)]),
                vec![Literal::pos("e", vec![Term::var(0), Term::var(1)])],
                &["X", "Y"],
            ),
            rule(
                Atom::new("tc", vec![Term::var(0), Term::var(2)]),
                vec![
                    Literal::pos("tc", vec![Term::var(0), Term::var(1)]),
                    Literal::pos("e", vec![Term::var(1), Term::var(2)]),
                ],
                &["X", "Y", "Z"],
            ),
        ]);
        p.push_fact("e", vec![Value::int(1), Value::int(2)]);
        p.push_fact("e", vec![Value::int(2), Value::int(3)]);
        let edb = Database::new();

        let mut m = Database::new();
        m.insert_values("e", vec![Value::int(1), Value::int(2)]);
        m.insert_values("e", vec![Value::int(2), Value::int(3)]);
        m.insert_values("tc", vec![Value::int(1), Value::int(2)]);
        m.insert_values("tc", vec![Value::int(2), Value::int(3)]);
        m.insert_values("tc", vec![Value::int(1), Value::int(3)]);
        assert!(is_stable_model(&p, &edb, &m).unwrap());

        // Remove one consequence: no longer a model.
        let mut short = Database::new();
        short.insert_values("e", vec![Value::int(1), Value::int(2)]);
        short.insert_values("e", vec![Value::int(2), Value::int(3)]);
        short.insert_values("tc", vec![Value::int(1), Value::int(2)]);
        short.insert_values("tc", vec![Value::int(2), Value::int(3)]);
        assert!(!is_stable_model(&p, &edb, &short).unwrap());

        // Add junk: a model, but not minimal.
        m.insert_values("tc", vec![Value::int(3), Value::int(1)]);
        assert!(!is_stable_model(&p, &edb, &m).unwrap());
    }

    #[test]
    fn missing_edb_fact_fails_fast() {
        let p = Program::new();
        let mut edb = Database::new();
        edb.insert_values("e", vec![Value::int(1)]);
        assert!(!is_stable_model(&p, &edb, &Database::new()).unwrap());
    }

    #[test]
    fn unrewritten_meta_goals_are_rejected() {
        let p = Program::from_rules(vec![rule(
            Atom::new("a", vec![Term::var(0)]),
            vec![
                Literal::pos("t", vec![Term::var(0)]),
                Literal::Choice { left: vec![], right: vec![Term::var(0)] },
            ],
            &["X"],
        )]);
        assert!(is_stable_model(&p, &Database::new(), &Database::new()).is_err());
    }
}
