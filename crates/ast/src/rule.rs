//! Rules and their static well-formedness (safety / range restriction).

use crate::error::AstError;
use crate::literal::{Atom, CmpOp, Literal};
use crate::span::RuleSpans;
use crate::term::{Expr, Term, VarId};

/// A rule `head ← body`. Facts are rules with an empty body and a
/// ground head.
///
/// Variables are rule-local dense indices ([`VarId`]); their surface
/// names live in [`Rule::var_names`] so that diagnostics and the
/// pretty-printer can show `X`, `Crs`, `I1` instead of `_v0`.
///
/// Rules parsed from source additionally carry [`RuleSpans`] so static
/// checks can point at the offending literal; spans are ignored by
/// equality (a parsed rule equals the same rule built programmatically).
#[derive(Clone, Eq)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body literals, in source order (order matters for evaluation of
    /// assignment goals, not for semantics).
    pub body: Vec<Literal>,
    /// Surface names for `VarId(0) .. VarId(var_names.len())`.
    pub var_names: Vec<String>,
    /// Source spans, when the rule came from the parser. `None` for
    /// rules built programmatically or synthesized by rewritings.
    pub spans: Option<RuleSpans>,
}

impl PartialEq for Rule {
    /// Structural equality; source spans are ignored.
    fn eq(&self, other: &Rule) -> bool {
        self.head == other.head && self.body == other.body && self.var_names == other.var_names
    }
}

impl Rule {
    /// Build a rule, taking ownership of its parts.
    pub fn new(head: Atom, body: Vec<Literal>, var_names: Vec<String>) -> Rule {
        Rule { head, body, var_names, spans: None }
    }

    /// Build a fact (ground head, empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule { head, body: Vec::new(), var_names: Vec::new(), spans: None }
    }

    /// Attach source spans (builder style, used by the parser).
    pub fn with_spans(mut self, spans: RuleSpans) -> Rule {
        self.spans = Some(spans);
        self
    }

    /// The rule's full source span (dummy when unparsed).
    pub fn span(&self) -> crate::span::Span {
        self.spans.as_ref().map(|s| s.span).unwrap_or_else(crate::span::Span::dummy)
    }

    /// The head atom's source span (dummy when unparsed).
    pub fn head_span(&self) -> crate::span::Span {
        self.spans.as_ref().map(|s| s.head).unwrap_or_else(crate::span::Span::dummy)
    }

    /// The source span of body literal `i` (dummy when unparsed).
    pub fn literal_span(&self, i: usize) -> crate::span::Span {
        self.spans.as_ref().map(|s| s.literal(i)).unwrap_or_else(crate::span::Span::dummy)
    }

    /// The most precise span available for variable `v`: the first
    /// head-argument or body sub-term containing it, in source order;
    /// falls back to the rule span (or dummy when unparsed).
    pub fn var_span(&self, v: VarId) -> crate::span::Span {
        let Some(rs) = &self.spans else { return crate::span::Span::dummy() };
        for (a, t) in self.head.args.iter().enumerate() {
            if t.vars().contains(&v) {
                return rs.head_arg(a);
            }
        }
        for (i, lit) in self.body.iter().enumerate() {
            for (a, vars) in lit.arg_vars().iter().enumerate() {
                if vars.contains(&v) {
                    return rs.literal_arg(i, a);
                }
            }
        }
        rs.span
    }

    /// True when the rule is a fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The surface name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        self.var_names.get(v.index()).map(String::as_str).unwrap_or("_?")
    }

    /// True if any body literal is a `choice` goal.
    pub fn has_choice(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Choice { .. }))
    }

    /// True if any body literal is a `next` goal.
    pub fn has_next(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Next { .. }))
    }

    /// True if any body literal is `least` or `most`.
    pub fn has_extrema(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Least { .. } | Literal::Most { .. }))
    }

    /// True if any body literal is a negated atom.
    pub fn has_negation(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Neg(_)))
    }

    /// The positive body atoms, in order.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
    }

    /// The negated body atoms, in order.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            _ => None,
        })
    }

    /// Safety (range restriction) in the LDL sense.
    ///
    /// Every variable must be *limited*: bound by a positive body atom,
    /// or by an `=` goal whose other side is an expression over limited
    /// variables (evaluated left-to-right fixpoint, so `I = I1 + 1, J = I`
    /// is fine in any order), or be the `next` stage variable (which the
    /// expansion grounds via `p(_, I1), I = I1 + 1`).
    ///
    /// Variables appearing *only* in negated atoms, comparisons, `choice`
    /// or extrema goals are unsafe.
    pub fn check_safety(&self) -> Result<(), AstError> {
        match self.unsafe_vars().first() {
            None => Ok(()),
            Some(&v) => Err(AstError::UnsafeVariable {
                rule: self.to_string(),
                var: self.var_name(v).to_owned(),
            }),
        }
    }

    /// All variables of the rule that are *not* limited (see
    /// [`Rule::check_safety`]), in first-occurrence order. Empty iff the
    /// rule is safe.
    pub fn unsafe_vars(&self) -> Vec<VarId> {
        let mut limited = vec![false; self.num_vars()];

        // Positive atoms and `next` limit their variables.
        for lit in &self.body {
            match lit {
                Literal::Pos(a) => {
                    for v in a.vars() {
                        limited[v.index()] = true;
                    }
                }
                Literal::Next { var } => limited[var.index()] = true,
                _ => {}
            }
        }

        // Equality goals propagate limitedness: iterate to fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for lit in &self.body {
                let Literal::Compare { op: CmpOp::Eq, lhs, rhs } = lit else {
                    continue;
                };
                changed |= propagate_eq(lhs, rhs, &mut limited);
                changed |= propagate_eq(rhs, lhs, &mut limited);
            }
        }

        // Every variable anywhere in the rule must now be limited.
        let mut all_vars = Vec::new();
        for t in &self.head.args {
            t.collect_vars(&mut all_vars);
        }
        for l in &self.body {
            l.collect_vars(&mut all_vars);
        }
        let mut unsafe_vars: Vec<VarId> =
            all_vars.into_iter().filter(|v| !limited[v.index()]).collect();
        let mut seen: Vec<VarId> = Vec::new();
        unsafe_vars.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(*v);
                true
            }
        });
        unsafe_vars
    }
}

/// If `target` is a bare variable and every variable of `source` is
/// limited, mark `target`'s variable limited. Returns true on change.
fn propagate_eq(target: &Expr, source: &Expr, limited: &mut [bool]) -> bool {
    let Some(Term::Var(v)) = target.as_bare_term() else {
        return false;
    };
    if limited[v.index()] {
        return false;
    }
    if source.vars().iter().all(|u| limited[u.index()]) {
        limited[v.index()] = true;
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::ArithOp;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("V{i}")).collect()
    }

    #[test]
    fn fact_is_safe() {
        let r = Rule::fact(Atom::new("g", vec![Term::sym("a"), Term::int(1)]));
        assert!(r.is_fact());
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn positive_atom_limits_head_vars() {
        // p(X) <- q(X).
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::pos("q", vec![Term::var(0)])],
            names(1),
        );
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn head_var_without_binding_is_unsafe() {
        // p(X, Y) <- q(X).
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0), Term::var(1)]),
            vec![Literal::pos("q", vec![Term::var(0)])],
            names(2),
        );
        assert!(matches!(r.check_safety(), Err(AstError::UnsafeVariable { .. })));
    }

    #[test]
    fn assignment_chain_limits_variables_in_any_order() {
        // p(J) <- J = I + 1, I = K, q(K).
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![
                Literal::cmp(
                    CmpOp::Eq,
                    Expr::var(0),
                    Expr::binary(ArithOp::Add, Expr::var(1), Expr::int(1)),
                ),
                Literal::cmp(CmpOp::Eq, Expr::var(1), Expr::var(2)),
                Literal::pos("q", vec![Term::var(2)]),
            ],
            names(3),
        );
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn negated_only_variable_is_unsafe() {
        // p(X) <- q(X), not r(Y).
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            vec![Literal::pos("q", vec![Term::var(0)]), Literal::neg("r", vec![Term::var(1)])],
            names(2),
        );
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn next_limits_the_stage_variable() {
        // st(X, I) <- next(I), g(X).
        let r = Rule::new(
            Atom::new("st", vec![Term::var(0), Term::var(1)]),
            vec![Literal::Next { var: VarId(1) }, Literal::pos("g", vec![Term::var(0)])],
            names(2),
        );
        assert!(r.check_safety().is_ok());
        assert!(r.has_next());
        assert!(!r.has_choice());
    }
}
