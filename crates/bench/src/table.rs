//! Plain-text table rendering for the `experiments` binary.

/// Render rows as an aligned plain-text table with a header line.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render_table(
            &["n", "secs"],
            &[vec!["8".into(), "0.001".into()], vec!["1024".into(), "0.125".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("secs"));
        assert!(lines[2].starts_with("   8"));
        assert!(lines[3].starts_with("1024"));
    }
}
