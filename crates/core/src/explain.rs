//! `gbc explain` — derivation trees from recorded provenance.
//!
//! Given a computed model, the [`gbc_storage::ProvenanceArena`] the run
//! populated, and an atom pattern, [`explain_atom`] prints why each
//! matching fact is in the model: the rule that fired it (cited by
//! source span), the γ step at which it committed, the functional-
//! dependency pairs its choice goals locked in, the `diffChoice`
//! alternatives that lost against those commitments, and — recursively
//! — the parent facts the firing joined over, down to program facts and
//! EDB input.
//!
//! The pattern is a synthetic single-literal query rule (the CLI parses
//! `query <- ATOM.`); `_` wildcards and repeated variables work exactly
//! as they do in a rule body.

use std::fmt::Write as _;

use gbc_ast::{Literal, Program, Rule, SourceMap, Symbol, Value};
use gbc_engine::bindings::Bindings;
use gbc_engine::eval::match_term;
use gbc_storage::{ChoiceCommit, ChoiceRejection, Database, ProvenanceArena, Row, NO_GOAL};

/// Cycle/depth guard: provenance is acyclic by construction (parents
/// are interned before their children commit), but a cap keeps a
/// corrupted arena from recursing forever.
const MAX_DEPTH: usize = 32;

/// Explain every fact of `db` matching the single positive atom in
/// `query`'s body. Returns the rendered tree, or an error when the
/// query is malformed or matches nothing.
pub fn explain_atom(
    program: &Program,
    sm: &SourceMap,
    db: &Database,
    arena: &ProvenanceArena,
    query: &Rule,
) -> Result<String, String> {
    let pattern = match query.body.as_slice() {
        [Literal::Pos(atom)] => atom,
        _ => return Err("the query must be a single positive atom".into()),
    };
    let mut matches = Vec::new();
    for row in db.facts_of(pattern.pred) {
        let mut b = Bindings::new(query.num_vars());
        let mut trail = Vec::new();
        let ok = row.arity() == pattern.args.len()
            && pattern
                .args
                .iter()
                .zip(row.iter())
                .all(|(t, v)| match_term(t, v, &mut b, &mut trail));
        if ok {
            matches.push(row);
        }
    }
    if matches.is_empty() {
        return Err(format!(
            "no fact matching `{}` in the computed model ({} `{}` fact(s) present)",
            pattern,
            db.count(pattern.pred),
            pattern.pred
        ));
    }
    let mut ex = Explainer {
        program,
        sm,
        arena,
        commits: arena.commits(),
        rejections: arena.rejections(),
        out: String::new(),
    };
    for (i, row) in matches.iter().enumerate() {
        if i > 0 {
            ex.out.push('\n');
        }
        ex.render_root(pattern.pred, row);
    }
    Ok(ex.out)
}

struct Explainer<'a> {
    program: &'a Program,
    sm: &'a SourceMap,
    arena: &'a ProvenanceArena,
    commits: Vec<ChoiceCommit>,
    rejections: Vec<ChoiceRejection>,
    out: String,
}

/// `pred(v1,v2,…)`.
fn label(pred: Symbol, row: &Row) -> String {
    format!("{pred}{row}")
}

/// `(v1,v2,…)` for FD tuples.
fn tuple(vals: &[Value]) -> String {
    let inner: Vec<String> = vals.iter().map(Value::to_string).collect();
    format!("({})", inner.join(","))
}

impl Explainer<'_> {
    fn render_root(&mut self, pred: Symbol, row: &Row) {
        let _ = writeln!(self.out, "{}", label(pred, row));
        let mut path = Vec::new();
        self.render_origin(pred, row, "", &mut path);
    }

    /// Where a rule lives in the source: `file:line:col`.
    fn cite(&self, rule_idx: usize) -> String {
        let span = self.program.rules[rule_idx].span();
        match self.sm.locate(span.start) {
            Some(loc) => format!("{}:{}:{}", loc.file, loc.line, loc.col),
            None => "<no source>".into(),
        }
    }

    /// The source line a rule starts on, trimmed, for the snippet line.
    fn snippet(&self, rule_idx: usize) -> Option<String> {
        let span = self.program.rules[rule_idx].span();
        if span.is_dummy() {
            return None;
        }
        let loc = self.sm.locate(span.start)?;
        Some(loc.line_text.trim().to_owned())
    }

    /// Emit the subtree under an already-labelled fact: its derivation
    /// (rule, step, choice audit, parents) or its fact/EDB origin.
    fn render_origin(&mut self, pred: Symbol, row: &Row, prefix: &str, path: &mut Vec<u32>) {
        let id = self.arena.lookup(pred, row);
        let derivation = id.and_then(|id| self.arena.derivation(id));
        let Some(d) = derivation else {
            let _ = writeln!(self.out, "{prefix}└─ {}", self.fact_origin(pred, row));
            return;
        };
        let id = id.expect("derivation implies id");
        if path.contains(&id) || path.len() >= MAX_DEPTH {
            let _ = writeln!(self.out, "{prefix}└─ … (derivation cycle or depth limit)");
            return;
        }
        path.push(id);

        let step = if d.step > 0 { format!(", γ step {}", d.step) } else { String::new() };
        let _ = writeln!(self.out, "{prefix}└─ by rule #{} at {}{step}", d.rule, self.cite(d.rule));
        let inner = format!("{prefix}   ");
        if let Some(text) = self.snippet(d.rule) {
            let _ = writeln!(self.out, "{inner}│ {text}");
        }
        self.render_choice_audit(d.rule, id, &inner);

        let parents = d.parents.clone();
        for (i, pid) in parents.iter().enumerate() {
            let last = i + 1 == parents.len();
            let Some((ppred, prow)) = self.arena.row(*pid) else { continue };
            let connector = if last { "└─" } else { "├─" };
            let _ = writeln!(self.out, "{inner}{connector} {}", label(ppred, &prow));
            let child_prefix = format!("{inner}{}", if last { "   " } else { "│  " });
            self.render_origin(ppred, &prow, &child_prefix, path);
        }
        path.pop();
    }

    /// The committed FD pairs of the γ step that fired `id`, plus every
    /// rejected alternative that lost against one of those commitments.
    fn render_choice_audit(&mut self, rule_idx: usize, id: u32, prefix: &str) {
        let Some(commit) = self.commits.iter().find(|c| c.row == id).cloned() else {
            return;
        };
        for (gi, (l, r)) in commit.pairs.iter().enumerate() {
            let _ = writeln!(
                self.out,
                "{prefix}│ chose {} → {}  [choice goal {gi}]",
                tuple(l),
                tuple(r)
            );
        }
        let losers: Vec<ChoiceRejection> = self
            .rejections
            .iter()
            .filter(|rej| {
                rej.goal != NO_GOAL
                    && commit
                        .pairs
                        .get(rej.goal)
                        .is_some_and(|(l, r)| *l == rej.left && *r == rej.committed)
            })
            .cloned()
            .collect();
        for rej in losers {
            let loser = self
                .arena
                .row(rej.row)
                .map(|(p, r)| label(p, &r))
                .unwrap_or_else(|| "<unknown>".into());
            let _ = writeln!(
                self.out,
                "{prefix}│ rejected {loser}: {} wanted {} → {}, lost to {}  \
                 [rule #{} at {}]",
                rej.reason,
                tuple(&rej.left),
                tuple(&rej.attempted),
                tuple(&rej.committed),
                rej.rule,
                self.cite(rej.rule),
            );
        }
        // Non-FD rejections of the same rule (stale stages, stage
        // reuse) are decision-point noise rather than alternatives to
        // *this* fact; summarise rather than listing each.
        let other = self
            .rejections
            .iter()
            .filter(|rej| rej.rule == rule_idx && rej.goal == NO_GOAL)
            .count();
        if other > 0 {
            let _ = writeln!(
                self.out,
                "{prefix}│ ({other} candidate(s) of rule #{rule_idx} discarded on stage guards)"
            );
        }
    }

    /// A fact with no derivation record: either a program fact (cite
    /// its span) or EDB input.
    fn fact_origin(&self, pred: Symbol, row: &Row) -> String {
        let fact = self.program.rules.iter().enumerate().find(|(_, r)| {
            r.is_fact()
                && r.head.pred == pred
                && r.head.args.len() == row.arity()
                && r.head.args.iter().zip(row.iter()).all(|(t, v)| t.as_value().as_ref() == Some(v))
        });
        match fact {
            Some((i, _)) => format!("program fact at {}", self.cite(i)),
            None => "input fact (EDB)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use gbc_parser::{parse_program, parse_rule};

    /// Sorting program over an inline EDB: greedy path with provenance.
    fn sorted_run() -> (Program, SourceMap, Database, std::sync::Arc<ProvenanceArena>) {
        let src = "sorted(nil, 0, 0).\n\
                   sorted(X, C, I) <- next(I), item(X, C), least(C, I).\n";
        let sm = SourceMap::single("sort.dl", src);
        let program = parse_program(&sm.source()).unwrap();
        let compiled = compile(program.clone()).unwrap();
        let mut edb = Database::new();
        for (x, c) in [("b", 30), ("a", 10), ("c", 20)] {
            edb.insert_values("item", vec![Value::sym(x), Value::int(c)]);
        }
        let arena = ProvenanceArena::shared();
        edb.set_provenance(std::sync::Arc::clone(&arena));
        let run = compiled.run(&edb).unwrap();
        (program, sm, run.db, arena)
    }

    fn query(atom: &str) -> Rule {
        parse_rule(&format!("query <- {atom}.")).unwrap()
    }

    #[test]
    fn explains_a_derived_fact_with_rule_and_parent() {
        let (program, sm, db, arena) = sorted_run();
        let out = explain_atom(&program, &sm, &db, &arena, &query("sorted(a, 10, 1)")).unwrap();
        assert!(out.starts_with("sorted(a,10,1)"), "{out}");
        assert!(out.contains("by rule #1 at sort.dl:2:1"), "{out}");
        assert!(out.contains("item(a,10)"), "{out}");
        assert!(out.contains("input fact (EDB)"), "{out}");
        assert!(out.contains("γ step 1"), "{out}");
    }

    #[test]
    fn explains_program_facts_by_their_span() {
        let (program, sm, db, arena) = sorted_run();
        let out = explain_atom(&program, &sm, &db, &arena, &query("sorted(nil, 0, 0)")).unwrap();
        assert!(out.contains("program fact at sort.dl:1:1"), "{out}");
    }

    #[test]
    fn wildcards_match_multiple_facts() {
        let (program, sm, db, arena) = sorted_run();
        let out = explain_atom(&program, &sm, &db, &arena, &query("sorted(X, C, I)")).unwrap();
        // Exit fact + three ranked items, each with its own tree.
        let roots = out.lines().filter(|l| l.starts_with("sorted(")).count();
        assert_eq!(roots, 4, "{out}");
    }

    #[test]
    fn unmatched_pattern_is_an_error() {
        let (program, sm, db, arena) = sorted_run();
        let err = explain_atom(&program, &sm, &db, &arena, &query("sorted(z, 1, 9)")).unwrap_err();
        assert!(err.contains("no fact matching"), "{err}");
    }

    #[test]
    fn non_atom_queries_are_rejected() {
        let (program, sm, db, arena) = sorted_run();
        let q = parse_rule("query <- item(X, C), least(C).").unwrap();
        let err = explain_atom(&program, &sm, &db, &arena, &q).unwrap_err();
        assert!(err.contains("single positive atom"), "{err}");
    }
}
