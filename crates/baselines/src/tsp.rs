//! Greedy Hamiltonian-path heuristics — the paper's "Computation of
//! Sub-Optimals".
//!
//! The declarative `tsp_chain` program starts from the globally cheapest
//! arc, then repeatedly extends the chain's end with the cheapest arc to
//! a node that has not yet been a source ([`greedy_chain`]).
//! [`nearest_neighbour`] is the standard comparator heuristic starting
//! from a fixed node.

use crate::Edge;

/// The paper's greedy chain on a complete directed graph: seed with the
/// globally cheapest arc, then always extend from the chain's current
/// end with the cheapest arc whose target is unvisited. Returns the
/// chain's arcs; a Hamiltonian path when the graph is complete.
pub fn greedy_chain(n: usize, edges: &[Edge]) -> Vec<Edge> {
    if n == 0 || edges.is_empty() {
        return Vec::new();
    }
    let mut adj: Vec<Vec<(i64, u32)>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.from as usize].push((e.cost, e.to));
    }
    for a in &mut adj {
        a.sort_unstable();
    }

    let seed = *edges.iter().min_by_key(|e| (e.cost, e.from, e.to)).expect("nonempty");
    let mut visited = vec![false; n];
    visited[seed.from as usize] = true;
    visited[seed.to as usize] = true;
    let mut chain = vec![seed];
    let mut end = seed.to;
    loop {
        let next = adj[end as usize].iter().find(|&&(_, to)| !visited[to as usize]).copied();
        let Some((c, to)) = next else { break };
        visited[to as usize] = true;
        chain.push(Edge::new(end, to, c));
        end = to;
    }
    chain
}

/// Nearest-neighbour Hamiltonian path from `start`.
pub fn nearest_neighbour(n: usize, edges: &[Edge], start: u32) -> Vec<Edge> {
    if n == 0 {
        return Vec::new();
    }
    let mut adj: Vec<Vec<(i64, u32)>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.from as usize].push((e.cost, e.to));
    }
    for a in &mut adj {
        a.sort_unstable();
    }
    let mut visited = vec![false; n];
    visited[start as usize] = true;
    let mut path = Vec::new();
    let mut cur = start;
    loop {
        let next = adj[cur as usize].iter().find(|&&(_, to)| !visited[to as usize]).copied();
        let Some((c, to)) = next else { break };
        visited[to as usize] = true;
        path.push(Edge::new(cur, to, c));
        cur = to;
    }
    path
}

/// Does `path` visit every node exactly once (a Hamiltonian path)?
pub fn is_hamiltonian_path(n: usize, path: &[Edge]) -> bool {
    if n == 0 {
        return path.is_empty();
    }
    if path.len() + 1 != n {
        return false;
    }
    if path.is_empty() {
        return true; // single node, trivially Hamiltonian
    }
    let mut seen = vec![false; n];
    seen[path[0].from as usize] = true;
    for w in path.windows(2) {
        if w[0].to != w[1].from {
            return false;
        }
    }
    for e in path {
        if seen[e.to as usize] {
            return false;
        }
        seen[e.to as usize] = true;
    }
    seen.iter().all(|&s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_cost;

    /// Complete directed graph from a symmetric cost matrix.
    fn complete(costs: &[&[i64]]) -> Vec<Edge> {
        let mut edges = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if i != j {
                    edges.push(Edge::new(i as u32, j as u32, c));
                }
            }
        }
        edges
    }

    #[test]
    fn greedy_chain_is_hamiltonian_on_complete_graphs() {
        let edges = complete(&[&[0, 2, 9, 10], &[2, 0, 6, 4], &[9, 6, 0, 8], &[10, 4, 8, 0]]);
        let chain = greedy_chain(4, &edges);
        assert!(is_hamiltonian_path(4, &chain), "{chain:?}");
        // Seed (0,1,2), then cheapest from 1 unvisited: (1,3,4), then (3,2,8).
        assert_eq!(total_cost(&chain), 14);
    }

    #[test]
    fn nearest_neighbour_is_hamiltonian() {
        let edges = complete(&[&[0, 2, 9, 10], &[2, 0, 6, 4], &[9, 6, 0, 8], &[10, 4, 8, 0]]);
        let p = nearest_neighbour(4, &edges, 0);
        assert!(is_hamiltonian_path(4, &p));
    }

    #[test]
    fn hamiltonicity_checker_rejects_broken_chains() {
        assert!(!is_hamiltonian_path(
            3,
            &[Edge::new(0, 1, 1), Edge::new(2, 0, 1)] // discontinuous
        ));
        assert!(!is_hamiltonian_path(3, &[Edge::new(0, 1, 1)])); // too short
        assert!(is_hamiltonian_path(1, &[]));
    }

    #[test]
    fn empty_inputs() {
        assert!(greedy_chain(0, &[]).is_empty());
        assert!(nearest_neighbour(0, &[], 0).is_empty());
    }
}
