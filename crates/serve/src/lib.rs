//! # gbc-serve — the long-running Greedy-by-Choice evaluation service
//!
//! ROADMAP item 1: load `.dl` programs **once** into shared state
//! (compiled plans + interned EDBs behind `Arc`), then answer
//! evaluation requests from concurrent clients over plain HTTP/JSON —
//! built entirely on `std::net`, keeping the workspace's
//! zero-registry-dependency policy intact.
//!
//! The crate splits into:
//!
//! * [`http`] — a minimal HTTP/1.1 request reader / response writer
//!   with hard limits on untrusted input;
//! * [`state`] — the session table ([`state::Session`] = compiled
//!   program + EDB) and the process-lifetime metrics plane
//!   ([`gbc_telemetry::MetricsRegistry`]);
//! * [`router`] — endpoint dispatch (`/healthz`, `/metrics`, `/stats`,
//!   `/journal`, `/programs`, `/load`, `/run`);
//! * [`client`] — a tiny blocking HTTP client over `TcpStream`, used by
//!   the bench harness, the smoke tests and CI (no curl dependency).
//!
//! Concurrency model: one acceptor thread, a fixed pool of request
//! workers fed over an `mpsc` channel, one request per connection
//! (`Connection: close`). Evaluation requests may themselves fan
//! saturation out over `--threads` engine workers; DESIGN.md §9
//! guarantees results and semantic counters are byte-identical at any
//! combination of request- and engine-level concurrency — the serve
//! smoke test and `ci-serve` hold the server to that.
//!
//! ```no_run
//! let server = gbc_serve::Server::bind("127.0.0.1:0").unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn(4);
//! let (status, body) =
//!     gbc_serve::client::get(&addr.to_string(), "/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\""));
//! handle.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod router;
pub mod state;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

pub use state::{ServerState, Session};

/// How long a worker waits for a slow peer before giving up on the
/// read or write half of a connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound-but-not-yet-serving server. Binding is separate from
/// serving so callers can learn the ephemeral port (`local_addr`) and
/// pre-install sessions before the first request can arrive.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7171`, or port `0` for an
    /// OS-assigned ephemeral port) with fresh state.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)?, state: Arc::new(ServerState::new()) })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// The shared state, for pre-installing sessions (the CLI preloads
    /// `.dl` files; the bench harness installs its tenants directly).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Serve on a background acceptor thread with `workers` request
    /// workers; returns a handle that can stop the server.
    pub fn spawn(self, workers: usize) -> ServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || self.accept_loop(workers, &stop))
        };
        ServerHandle { addr, state, stop, acceptor }
    }

    /// Serve on the calling thread until `stop` is set (never, for the
    /// CLI's foreground mode — ^C is the shutdown story there).
    pub fn serve(self, workers: usize) -> io::Result<()> {
        let stop = AtomicBool::new(false);
        self.accept_loop(workers, &stop)
    }

    fn accept_loop(self, workers: usize, stop: &AtomicBool) -> io::Result<()> {
        let workers = workers.max(1);
        self.state.metrics.pool_workers.set(workers as i64);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&self.state);
                scope.spawn(move || {
                    loop {
                        // Hold the receiver lock only while waiting, so
                        // idle workers queue up fairly.
                        let stream = match rx.lock().expect("worker queue").recv() {
                            Ok(s) => s,
                            Err(_) => break, // acceptor gone, drain done
                        };
                        state.metrics.pool_busy.add(1);
                        handle_connection(&state, stream);
                        state.metrics.pool_busy.add(-1);
                    }
                });
            }
            for conn in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    // A failed accept (peer reset mid-handshake) is the
                    // peer's problem, not a server fault.
                    Err(_) => continue,
                }
            }
            drop(tx); // close the queue: workers drain and exit
            Ok(())
        })
    }
}

/// Answer one connection: read a request, dispatch it, write the
/// response, close. Unparseable requests answer 400; an empty
/// connection (probe) just closes.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match http::read_request(&mut stream) {
        Ok(None) => return,
        Ok(Some(req)) => router::dispatch(state, &req),
        Err(e) => {
            state.metrics.errors.inc();
            http::Response::error(400, &format!("malformed request: {e}"))
        }
    };
    let _ = response.write(&mut stream);
}

/// A running server: address, shared state, and the stop switch.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    acceptor: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The address the server answers on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (sessions + metrics), for in-process callers.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stop accepting, drain in-flight requests, join the acceptor.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; poke it awake with a bare
        // connection (which it will see after reading the stop flag).
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_storage::Database;

    fn compiled(src: &str) -> gbc_core::Compiled {
        gbc_core::compile(gbc_parser::parse_program(src).unwrap()).unwrap()
    }

    fn test_server() -> (SocketAddr, ServerHandle) {
        let server = Server::bind("127.0.0.1:0").expect("bind ephemeral");
        server.state().install(Session::new(
            "tiny",
            "<inline>",
            compiled("sp(nil, 0, 0). sp(X, C, I) <- next(I), p(X, C), least(C, I). p(a, 10). p(b, 30). p(c, 20)."),
            Database::new(),
        ));
        let addr = server.local_addr();
        (addr, server.spawn(2))
    }

    #[test]
    fn healthz_programs_and_shutdown() {
        let (addr, handle) = test_server();
        let addr = addr.to_string();
        let (status, body) = client::get(&addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        let (status, body) = client::get(&addr, "/programs").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"name\": \"tiny\""));
        handle.shutdown();
        assert!(client::get(&addr, "/healthz").is_err(), "server is down after shutdown");
    }

    #[test]
    fn run_returns_canonical_results_and_counters() {
        let (addr, handle) = test_server();
        let addr = addr.to_string();
        let (status, body) = client::post_json(&addr, "/run", "{\"session\": \"tiny\"}").unwrap();
        assert_eq!(status, 200, "body: {body}");
        let json = gbc_telemetry::Json::parse(body.trim()).unwrap();
        let result = json.get("result").and_then(|r| r.as_str()).unwrap();
        assert!(result.contains("sp(a,10,1)"), "greedy ranking present: {result}");
        assert!(json.get("counters").and_then(|c| c.get("gamma_steps")).is_some());
        // Unknown session and malformed JSON take the error paths.
        let (status, _) = client::post_json(&addr, "/run", "{\"session\": \"no\"}").unwrap();
        assert_eq!(status, 404);
        let (status, body) = client::post_json(&addr, "/run", "{nope").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("\"error\""));
        handle.shutdown();
    }

    #[test]
    fn load_then_run_round_trip() {
        let (addr, handle) = test_server();
        let addr = addr.to_string();
        let program = "q(X) <- e(X). e(1). e(2).";
        let body = format!("{{\"name\": \"edges\", \"program\": \"{program}\"}}");
        let (status, reply) = client::post_json(&addr, "/load", &body).unwrap();
        assert_eq!(status, 200, "load failed: {reply}");
        let (status, reply) = client::post_json(&addr, "/run", "{\"session\": \"edges\"}").unwrap();
        assert_eq!(status, 200);
        let json = gbc_telemetry::Json::parse(reply.trim()).unwrap();
        let result = json.get("result").and_then(|r| r.as_str()).unwrap();
        assert!(result.contains("q(1)") && result.contains("q(2)"), "{result}");
        // A bad program is a 400 with rendered diagnostics, not a crash.
        let (status, reply) =
            client::post_json(&addr, "/load", "{\"name\": \"bad\", \"program\": \"p(X) <- q(.\"}")
                .unwrap();
        assert_eq!(status, 400);
        assert!(reply.contains("\"error\""));
        handle.shutdown();
    }
}
