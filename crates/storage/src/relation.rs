//! Duplicate-free, insertion-ordered relations with cached indices.

use std::sync::{Arc, RwLock};

use gbc_ast::Value;
use gbc_telemetry::Metrics;

use crate::fx::FxHashSet;
use crate::index::Index;
use crate::tuple::Row;

/// A relation: an insertion-ordered set of [`Row`]s.
///
/// Insertion order is exposed so that evaluation is fully deterministic
/// (given a deterministic chooser) regardless of hash seeds. The
/// ordered vector doubles as the **arena**: indices and callers refer
/// to rows by `u32` position in it ([`Relation::arena`],
/// [`Relation::select_ids_into`]), so the join path never has to clone
/// rows out of storage. Indices on column subsets are created lazily
/// behind an `RwLock` — the engine reads relations through `&Relation`
/// while staging derived tuples elsewhere, so interior mutability
/// confines itself to the index cache; the lock (rather than a
/// `RefCell`) makes `Relation` `Sync`, which is what lets the parallel
/// seminaive workers share `&Database` across threads. Probes take the
/// read lock; a miss upgrades to the write lock with a double-check, so
/// concurrent first probes of the same column set still build the index
/// exactly once and the `index_builds` counter stays identical to a
/// serial run.
#[derive(Debug, Default)]
pub struct Relation {
    order: Vec<Row>,
    set: FxHashSet<Row>,
    /// Cached indices, keyed by their column bitmask (bit i ⇒ column i
    /// participates, in ascending column order).
    indices: RwLock<Vec<(u64, Index)>>,
    /// Shared counter registry; index builds/probes are reported here
    /// when attached.
    metrics: Option<Arc<Metrics>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // Indices survive the clone: they hold arena positions, and the
        // arena (`order`) is copied verbatim, so every stored row id
        // still points at the same row in the copy.
        Relation {
            order: self.order.clone(),
            set: self.set.clone(),
            indices: RwLock::new(self.indices.read().expect("index cache lock").clone()),
            metrics: self.metrics.clone(),
        }
    }
}

/// The column bitmask identifying a cached index, or `None` when a
/// column is beyond the 64 the mask can represent — such column sets
/// are served by a linear scan instead of an index.
fn mask_of(cols: &[usize]) -> Option<u64> {
    let mut mask = 0u64;
    for &c in cols {
        if c >= 64 {
            return None;
        }
        mask |= 1 << c;
    }
    Some(mask)
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Attach a counter registry; index builds and probes report to it.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Insert a row; returns `false` if it was already present.
    pub fn insert(&mut self, row: Row) -> bool {
        if !self.set.insert(row.clone()) {
            return false;
        }
        let id = self.order.len() as u32;
        for (_, idx) in self.indices.get_mut().expect("index cache lock").iter_mut() {
            idx.insert(&row, id);
        }
        self.order.push(row);
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &Row) -> bool {
        self.set.contains(row)
    }

    /// Membership test from a value slice, without materialising a
    /// `Row` (the negation check of the compiled join path).
    pub fn contains_values(&self, values: &[Value]) -> bool {
        self.set.contains(values)
    }

    /// Rows in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.order.iter()
    }

    /// The `i`-th row in insertion order.
    pub fn get(&self, i: usize) -> Option<&Row> {
        self.order.get(i)
    }

    /// The insertion-ordered row arena. Row ids produced by
    /// [`Relation::select_ids_into`] index into this slice.
    pub fn arena(&self) -> &[Row] {
        &self.order
    }

    /// Rows inserted at or after position `from` (used for deltas).
    pub fn since(&self, from: usize) -> &[Row] {
        &self.order[from.min(self.order.len())..]
    }

    /// Collect into `out` the arena ids of rows whose projection on
    /// `cols` (ascending column order) equals `key`; `out` is cleared
    /// first. Builds and caches an index for `cols` on first use;
    /// subsequent inserts maintain it. Column sets reaching past
    /// column 63 cannot be masked into the index cache key and fall
    /// back to an unindexed linear scan.
    ///
    /// Ids are copied out (rather than returned as a borrow) so the
    /// internal index cache is not kept borrowed while the caller
    /// iterates — a nested probe of the same relation (self-join) would
    /// otherwise conflict with it.
    pub fn select_ids_into(&self, cols: &[usize], key: &[Value], out: &mut Vec<u32>) {
        debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "cols must be sorted");
        debug_assert_eq!(cols.len(), key.len());
        out.clear();
        if cols.is_empty() {
            out.extend(0..self.order.len() as u32);
            return;
        }
        if let Some(m) = &self.metrics {
            m.index_probes.inc();
        }
        let Some(mask) = mask_of(cols) else {
            for (i, row) in self.order.iter().enumerate() {
                if cols.iter().zip(key).all(|(&c, k)| row.get(c) == Some(k)) {
                    out.push(i as u32);
                }
            }
            return;
        };
        {
            let cache = self.indices.read().expect("index cache lock");
            if let Some((_, idx)) = cache.iter().find(|(m, _)| *m == mask) {
                out.extend_from_slice(idx.get(key));
                return;
            }
        }
        let mut cache = self.indices.write().expect("index cache lock");
        // Double-check under the write lock: a concurrent worker may
        // have built the same index while we waited, and the build must
        // happen (and be counted) exactly once.
        if let Some((_, idx)) = cache.iter().find(|(m, _)| *m == mask) {
            out.extend_from_slice(idx.get(key));
            return;
        }
        if let Some(m) = &self.metrics {
            m.index_builds.inc();
        }
        let idx = Index::build(cols.to_vec(), &self.order);
        out.extend_from_slice(idx.get(key));
        cache.push((mask, idx));
    }

    /// Rows whose projection on `cols` (ascending column order) equals
    /// `key`, cloned out of the arena. Compatibility wrapper over
    /// [`Relation::select_ids_into`] — hot callers should use the id
    /// form and read the arena in place; every row this clones is
    /// counted in the `rows_cloned` metric.
    ///
    /// `key` must list values in the same ascending-column order.
    pub fn select(&self, cols: &[usize], key: &[Value]) -> Vec<Row> {
        if cols.is_empty() {
            if let Some(m) = &self.metrics {
                m.rows_cloned.add(self.order.len() as u64);
            }
            return self.order.clone();
        }
        let mut ids = Vec::new();
        self.select_ids_into(cols, key, &mut ids);
        if let Some(m) = &self.metrics {
            m.rows_cloned.add(ids.len() as u64);
        }
        ids.iter().map(|&i| self.order[i as usize].clone()).collect()
    }

    /// Drop all cached indices (tests / memory pressure).
    pub fn clear_indices(&self) {
        self.indices.write().expect("index cache lock").clear();
    }

    /// Number of cached indices (for tests).
    pub fn num_indices(&self) -> usize {
        self.indices.read().expect("index cache lock").len()
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Row> for Relation {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Relation {
        let mut r = Relation::new();
        for row in iter {
            r.insert(row);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_telemetry::rng::Rng;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    /// The parallel seminaive workers share `&Relation` across scoped
    /// threads; the index cache must therefore be `Sync`.
    #[test]
    fn relation_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Relation>();
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new();
        assert!(r.insert(row(&[1, 2])));
        assert!(!r.insert(row(&[1, 2])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new();
        for k in [3, 1, 2] {
            r.insert(row(&[k]));
        }
        let got: Vec<i64> = r.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![3, 1, 2]);
    }

    #[test]
    fn select_builds_index_once_and_maintains_it() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[2, 20]));
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 1);
        assert_eq!(r.num_indices(), 1);
        // Insert after the index exists: the index must see the new row.
        r.insert(row(&[1, 30]));
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 2);
        assert_eq!(r.num_indices(), 1);
    }

    #[test]
    fn select_with_empty_cols_scans_everything() {
        let mut r = Relation::new();
        r.insert(row(&[1]));
        r.insert(row(&[2]));
        assert_eq!(r.select(&[], &[]).len(), 2);
    }

    #[test]
    fn select_ids_point_into_the_arena() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[2, 20]));
        r.insert(row(&[1, 30]));
        let mut ids = Vec::new();
        r.select_ids_into(&[0], &[Value::int(1)], &mut ids);
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(r.arena()[ids[1] as usize], row(&[1, 30]));
    }

    #[test]
    fn since_returns_suffix() {
        let mut r = Relation::new();
        r.insert(row(&[1]));
        let mark = r.len();
        r.insert(row(&[2]));
        r.insert(row(&[3]));
        let delta: Vec<i64> = r.since(mark).iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(delta, vec![2, 3]);
        assert!(r.since(100).is_empty());
    }

    #[test]
    fn metrics_count_builds_probes_and_clones() {
        let m = Arc::new(Metrics::new());
        let mut r = Relation::new();
        r.set_metrics(Arc::clone(&m));
        r.insert(row(&[1, 10]));
        r.select(&[0], &[Value::int(1)]); // probe + build, clones 1 row
        r.select(&[0], &[Value::int(1)]); // probe only, clones 1 row
        r.select(&[], &[]); // full scan: clones, but neither probe nor build
        let mut ids = Vec::new();
        r.select_ids_into(&[0], &[Value::int(1)], &mut ids); // probe, no clone
        let s = m.snapshot();
        assert_eq!(s.index_builds, 1);
        assert_eq!(s.index_probes, 3);
        assert_eq!(s.rows_cloned, 3);
    }

    #[test]
    fn distinct_masks_get_distinct_indices() {
        let mut r = Relation::new();
        r.insert(row(&[1, 2, 3]));
        r.select(&[0], &[Value::int(1)]);
        r.select(&[0, 2], &[Value::int(1), Value::int(3)]);
        assert_eq!(r.num_indices(), 2);
    }

    #[test]
    fn clone_keeps_indices_valid() {
        let mut r = Relation::new();
        r.insert(row(&[1, 10]));
        r.insert(row(&[1, 20]));
        r.select(&[0], &[Value::int(1)]);
        assert_eq!(r.num_indices(), 1);
        let mut c = r.clone();
        assert_eq!(c.num_indices(), 1, "indices survive clone");
        // The clone's index keeps working and keeps being maintained.
        c.insert(row(&[1, 30]));
        assert_eq!(c.select(&[0], &[Value::int(1)]).len(), 3);
        assert_eq!(c.num_indices(), 1, "no rebuild needed after clone");
        // ...without affecting the original.
        assert_eq!(r.select(&[0], &[Value::int(1)]).len(), 2);
    }

    #[test]
    fn contains_values_avoids_row_construction() {
        let mut r = Relation::new();
        r.insert(row(&[4, 5]));
        assert!(r.contains_values(&[Value::int(4), Value::int(5)]));
        assert!(!r.contains_values(&[Value::int(5), Value::int(4)]));
        assert!(!r.contains_values(&[Value::int(4)]));
    }

    /// Columns ≥ 64 can't participate in the index-cache bitmask; the
    /// select must fall back to a linear scan instead of panicking.
    #[test]
    fn wide_relations_fall_back_to_linear_scan() {
        let mut r = Relation::new();
        let mut wide: Vec<i64> = (0..70).collect();
        r.insert(Row::new(wide.iter().map(|&v| Value::int(v)).collect()));
        wide[69] = -1;
        r.insert(Row::new(wide.iter().map(|&v| Value::int(v)).collect()));
        let hits = r.select(&[0, 69], &[Value::int(0), Value::int(69)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][69], Value::int(69));
        assert_eq!(r.num_indices(), 0, "no index cached for unmaskable columns");
        // Also out-of-range columns simply match nothing.
        assert!(r.select(&[0, 200], &[Value::int(0), Value::int(0)]).is_empty());
    }

    /// Seeded sweep: after any interleaving of inserts and probes, the
    /// ids served by the incrementally maintained index agree with a
    /// fresh rebuild over the arena.
    #[test]
    fn incremental_index_agrees_with_fresh_rebuild() {
        let mut rng = Rng::new(0x01DD_ECAF);
        for case in 0..64 {
            let mut r = Relation::new();
            let n_ops = 1 + rng.below_usize(127);
            for _ in 0..n_ops {
                // Narrow value ranges force collisions, duplicates and
                // multi-row keys.
                let a = rng.range_i64(0, 7);
                let b = rng.range_i64(0, 7);
                r.insert(row(&[a, b]));
                if rng.below(4) == 0 {
                    // Probe mid-stream so the cached index exists early
                    // and is maintained across subsequent inserts.
                    let mut ids = Vec::new();
                    r.select_ids_into(&[0], &[Value::int(rng.range_i64(0, 7))], &mut ids);
                }
            }
            for key_col in [0usize, 1] {
                for k in 0..8 {
                    let key = [Value::int(k)];
                    let mut cached = Vec::new();
                    r.select_ids_into(&[key_col], &key, &mut cached);
                    let fresh = Index::build(vec![key_col], r.arena());
                    assert_eq!(cached, fresh.get(&key), "case {case} col {key_col} key {k}");
                }
            }
        }
    }
}
