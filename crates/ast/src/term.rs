//! Terms and arithmetic expressions appearing in rule bodies and heads.

use std::fmt;

use crate::symbol::Symbol;
use crate::value::Value;

/// A rule-local variable identifier. Names are kept in the owning
/// [`crate::rule::Rule`]'s `var_names` table; identifiers are dense
/// indices into it so the engine can use flat `Vec`-backed binding
/// frames instead of hash maps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into a binding frame.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_v{}", self.0)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A term: variable, ground value, or compound term over sub-terms.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable.
    Var(VarId),
    /// A ground value (constants, integers, `nil`, ground functor terms).
    Const(Value),
    /// A compound term with at least one variable underneath, e.g. the
    /// Huffman head term `t(X, Y)`.
    Func(Symbol, Vec<Term>),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(id: u32) -> Term {
        Term::Var(VarId(id))
    }

    /// Shorthand for an integer constant.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// Shorthand for a symbolic constant.
    pub fn sym(s: &str) -> Term {
        Term::Const(Value::sym(s))
    }

    /// True if no variables occur in the term.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) => true,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// If ground, the corresponding [`Value`].
    pub fn as_value(&self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v.clone()),
            Term::Func(f, args) => {
                let vals: Option<Vec<Value>> = args.iter().map(Term::as_value).collect();
                vals.map(|v| Value::Func(*f, v.into()))
            }
        }
    }

    /// Append every variable occurring in the term to `out` (with
    /// repetitions, in left-to-right order).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Const(_) => {}
            Term::Func(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The set-like list of variables in the term (first occurrence order).
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.dedup_in_order();
        out
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a:?}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// An arithmetic expression over terms, as used in comparison and
/// assignment goals: `I = I1 + 1`, `C = C1 + C2`, `I = max(J, K)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A bare term.
    Term(Term),
    /// Binary arithmetic.
    Binary(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary negation, `-E`.
    Neg(Box<Expr>),
}

/// Binary arithmetic operators (plus the paper's `max`/`min` built-ins,
/// which Example 6 uses as `I = max(J, K)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Max,
    Min,
}

impl Expr {
    /// A bare-term expression.
    pub fn term(t: Term) -> Expr {
        Expr::Term(t)
    }

    /// A bare-variable expression.
    pub fn var(id: u32) -> Expr {
        Expr::Term(Term::var(id))
    }

    /// An integer-constant expression.
    pub fn int(i: i64) -> Expr {
        Expr::Term(Term::int(i))
    }

    /// Binary arithmetic node.
    pub fn binary(op: ArithOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// If the expression is a single bare term, a reference to it.
    pub fn as_bare_term(&self) -> Option<&Term> {
        match self {
            Expr::Term(t) => Some(t),
            _ => None,
        }
    }

    /// Append every variable occurring in the expression to `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Term(t) => t.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Neg(e) => e.collect_vars(out),
        }
    }

    /// The set-like list of variables (first-occurrence order).
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.dedup_in_order();
        out
    }

    /// True if the expression contains arithmetic (i.e. is not a bare term).
    pub fn has_arith(&self) -> bool {
        !matches!(self, Expr::Term(_))
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t:?}"),
            Expr::Binary(op, l, r) => write!(f, "({l:?} {op:?} {r:?})"),
            Expr::Neg(e) => write!(f, "(-{e:?})"),
        }
    }
}

/// Order-preserving dedup for small vectors of variables. A trait so the
/// helper reads naturally at call sites; the lists here are tiny (rule
/// arity), so the O(n²) scan beats hashing.
trait DedupInOrder {
    fn dedup_in_order(&mut self);
}

impl DedupInOrder for Vec<VarId> {
    fn dedup_in_order(&mut self) {
        let mut seen = Vec::with_capacity(self.len());
        self.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(*v);
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_term_converts_to_value() {
        let t = Term::Func(Symbol::intern("t"), vec![Term::sym("a"), Term::int(3)]);
        assert!(t.is_ground());
        assert_eq!(t.as_value().unwrap(), Value::func("t", vec![Value::sym("a"), Value::int(3)]));
    }

    #[test]
    fn non_ground_term_has_no_value() {
        let t = Term::Func(Symbol::intern("t"), vec![Term::var(0)]);
        assert!(!t.is_ground());
        assert!(t.as_value().is_none());
    }

    #[test]
    fn vars_dedup_in_first_occurrence_order() {
        // t(X, Y, X)
        let t = Term::Func(Symbol::intern("t"), vec![Term::var(1), Term::var(0), Term::var(1)]);
        assert_eq!(t.vars(), vec![VarId(1), VarId(0)]);
    }

    #[test]
    fn expr_vars_traverse_arithmetic() {
        // I1 + max(J, 1)
        let e = Expr::binary(
            ArithOp::Add,
            Expr::var(2),
            Expr::binary(ArithOp::Max, Expr::var(5), Expr::int(1)),
        );
        assert_eq!(e.vars(), vec![VarId(2), VarId(5)]);
        assert!(e.has_arith());
        assert!(e.as_bare_term().is_none());
    }
}
