//! Hand-rolled lexer. Tracks line/column for diagnostics.

use std::fmt;

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Lowercase-initial identifier: predicate name, symbolic constant,
    /// or one of the keyword goals (the parser decides).
    Ident(String),
    /// Uppercase- or `_`-initial identifier: variable. A bare `_` is the
    /// anonymous variable.
    Var(String),
    /// Integer literal (unsigned; unary minus handled in the parser).
    Int(i64),
    /// Double-quoted string literal (escapes: `\"`, `\\`, `\n`).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    /// `<-` or `:-`
    Arrow,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    /// `not`, `~` or `¬`
    Not,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Var(s) => write!(f, "variable `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Arrow => f.write_str("`<-`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Not => f.write_str("`not`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position: 1-based line and column, plus the
/// half-open byte range `[start, end)` it occupies in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
    pub start: u32,
    pub end: u32,
}

impl Token {
    /// The token's source span.
    pub fn span(&self) -> gbc_ast::Span {
        gbc_ast::Span::new(self.start, self.end)
    }
}

/// Lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the offending character.
    pub offset: u32,
}

impl LexError {
    /// The error's source span (one character wide).
    pub fn span(&self) -> gbc_ast::Span {
        gbc_ast::Span::new(self.offset, self.offset + 1)
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
    /// Byte offset of the next character.
    offset: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().peekable(), line: 1, col: 1, offset: 0 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.col = 1;
                self.offset += 1;
            }
            Some(c) => {
                self.col += 1;
                self.offset += c.len_utf8() as u32;
            }
            None => {}
        }
        c
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError { message: message.into(), line: self.line, col: self.col, offset: self.offset }
    }
}

/// Tokenize `src` in full. The final token is always [`TokenKind::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer::new(src);
    let mut tokens = Vec::new();

    while let Some(c) = lx.peek() {
        let (tline, tcol) = (lx.line, lx.col);
        let tstart = lx.offset;
        let before = tokens.len();
        let mut push = |kind: TokenKind| {
            tokens.push(Token { kind, line: tline, col: tcol, start: tstart, end: tstart })
        };

        match c {
            ' ' | '\t' | '\r' | '\n' => {
                lx.bump();
            }
            '%' => {
                while let Some(c2) = lx.bump() {
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                lx.bump();
                push(TokenKind::LParen);
            }
            ')' => {
                lx.bump();
                push(TokenKind::RParen);
            }
            ',' => {
                lx.bump();
                push(TokenKind::Comma);
            }
            '.' => {
                lx.bump();
                push(TokenKind::Dot);
            }
            '+' => {
                lx.bump();
                push(TokenKind::Plus);
            }
            '*' => {
                lx.bump();
                push(TokenKind::Star);
            }
            '/' => {
                lx.bump();
                push(TokenKind::Slash);
            }
            '~' | '¬' => {
                lx.bump();
                push(TokenKind::Not);
            }
            '-' => {
                lx.bump();
                push(TokenKind::Minus);
            }
            '=' => {
                lx.bump();
                push(TokenKind::Eq);
            }
            '!' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    push(TokenKind::Ne);
                } else {
                    return Err(lx.error("expected `=` after `!`"));
                }
            }
            '<' => {
                lx.bump();
                match lx.peek() {
                    Some('-') => {
                        lx.bump();
                        push(TokenKind::Arrow);
                    }
                    Some('=') => {
                        lx.bump();
                        push(TokenKind::Le);
                    }
                    Some('>') => {
                        lx.bump();
                        push(TokenKind::Ne);
                    }
                    _ => push(TokenKind::Lt),
                }
            }
            '>' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    push(TokenKind::Ge);
                } else {
                    push(TokenKind::Gt);
                }
            }
            ':' => {
                lx.bump();
                if lx.peek() == Some('-') {
                    lx.bump();
                    push(TokenKind::Arrow);
                } else {
                    return Err(lx.error("expected `-` after `:`"));
                }
            }
            '"' => {
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.bump() {
                        None => return Err(lx.error("unterminated string literal")),
                        Some('"') => break,
                        Some('\\') => match lx.bump() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(lx.error(format!("unsupported escape `\\{other:?}`")))
                            }
                        },
                        Some(c2) => s.push(c2),
                    }
                }
                push(TokenKind::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(d) = lx.peek() {
                    let Some(dv) = d.to_digit(10) else { break };
                    lx.bump();
                    n = match n.checked_mul(10).and_then(|m| m.checked_add(dv as i64)) {
                        Some(v) => v,
                        None => return Err(lx.error("integer literal overflows i64")),
                    };
                }
                push(TokenKind::Int(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(d) = lx.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                let kind = if s == "not" {
                    TokenKind::Not
                } else if s.starts_with(|c: char| c.is_uppercase() || c == '_') {
                    TokenKind::Var(s)
                } else {
                    TokenKind::Ident(s)
                };
                push(kind);
            }
            other => return Err(lx.error(format!("unexpected character `{other}`"))),
        }

        // Each arm pushes at most one token; give it its end offset.
        if tokens.len() > before {
            tokens.last_mut().unwrap().end = lx.offset;
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        line: lx.line,
        col: lx.col,
        start: lx.offset,
        end: lx.offset,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_fact() {
        assert_eq!(
            kinds("g(a, b, 3)."),
            vec![
                TokenKind::Ident("g".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::Comma,
                TokenKind::Int(3),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_arrows_and_comparisons() {
        assert_eq!(
            kinds("<- :- <= >= < > = != <>"),
            vec![
                TokenKind::Arrow,
                TokenKind::Arrow,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn variables_vs_identifiers() {
        assert_eq!(
            kinds("Crs takes _ _x I1"),
            vec![
                TokenKind::Var("Crs".into()),
                TokenKind::Ident("takes".into()),
                TokenKind::Var("_".into()),
                TokenKind::Var("_x".into()),
                TokenKind::Var("I1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = tokenize("% header\np(X).\n").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("p".into()));
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].col, 1);
    }

    #[test]
    fn negation_spellings() {
        assert_eq!(
            kinds("not p ~p ¬p"),
            vec![
                TokenKind::Not,
                TokenKind::Ident("p".into()),
                TokenKind::Not,
                TokenKind::Ident("p".into()),
                TokenKind::Not,
                TokenKind::Ident("p".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            kinds(r#""hi \"there\"\n""#),
            vec![TokenKind::Str("hi \"there\"\n".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(tokenize("99999999999999999999").is_err());
    }

    #[test]
    fn stray_bang_is_an_error() {
        assert!(tokenize("p ! q").is_err());
    }

    #[test]
    fn positions_point_at_token_start() {
        let toks = tokenize("p(Xy)").unwrap();
        // `Xy` starts at column 3.
        assert_eq!(toks[2].kind, TokenKind::Var("Xy".into()));
        assert_eq!((toks[2].line, toks[2].col), (1, 3));
    }

    #[test]
    fn spans_cover_token_bytes() {
        let toks = tokenize("p(Xy, 12)").unwrap();
        // p ( Xy , 12 )
        assert_eq!((toks[0].start, toks[0].end), (0, 1));
        assert_eq!((toks[2].start, toks[2].end), (2, 4));
        assert_eq!((toks[4].start, toks[4].end), (6, 8));
        assert_eq!((toks[5].start, toks[5].end), (8, 9));
        let eof = toks.last().unwrap();
        assert_eq!((eof.start, eof.end), (9, 9));
    }

    #[test]
    fn spans_skip_comments_and_whitespace() {
        let src = "% hdr\n  p(X).";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("p".into()));
        assert_eq!(&src[toks[0].start as usize..toks[0].end as usize], "p");
        assert_eq!(&src[toks[2].start as usize..toks[2].end as usize], "X");
    }

    #[test]
    fn lex_error_carries_offset() {
        let err = tokenize("p ! q").unwrap_err();
        // `!` is bumped before the failed `=` check, so the error points
        // just past it; the span is still inside the source.
        assert!(err.offset >= 2 && err.offset <= 3);
    }
}
