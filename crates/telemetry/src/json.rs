//! A minimal JSON value model with a correct writer — no serde.
//!
//! Only what `--stats-json` needs: objects, arrays, strings (with full
//! escaping), integers, floats, booleans and null. Floats render via
//! the shortest round-trip `{}` formatting; non-finite floats render as
//! `null` (JSON has no NaN/Infinity).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience object constructor from `&str` keys.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) if x.is_finite() => {
                // `{}` prints integral floats without a dot; add one so
                // the value stays typed as a float on re-parse.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(18446744073709551615).to_string(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).to_string(), "1.5");
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
    }

    #[test]
    fn compound_values_render_compactly() {
        let j = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("s", Json::Str("hi".into())),
        ]);
        assert_eq!(j.to_string(), r#"{"xs":[1,2],"s":"hi"}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let j = Json::obj(vec![("a", Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(j.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
