//! V1/V2 — semantics validation across crates.
//!
//! * **V1 (Theorem 1):** every database produced by either executor is
//!   a stable model of the rewritten negative program, checked with the
//!   Gelfond–Lifschitz reduct.
//! * **V2 (Lemmas 1–2):** exhaustive γ-enumeration finds *all* choice
//!   models on small instances, and every enumerated model passes the
//!   same stability check.

use gbc_ast::Value;
use gbc_core::{compile, verify_stable_model};
use gbc_greedy::{matching, prim, sorting, spanning, tsp, workload, Graph};
use gbc_storage::Database;

/// Run `program_text` both ways on `edb` and assert stability of both
/// results.
fn assert_both_paths_stable(program_text: &str, edb: &Database) {
    let program = gbc_parser::parse_program(program_text).unwrap();
    let compiled = compile(program).unwrap();

    if compiled.has_greedy_plan() {
        let run = compiled.run_greedy(edb).unwrap();
        assert!(
            verify_stable_model(compiled.program(), edb, &run).unwrap(),
            "greedy run must be a stable model for:\n{}",
            compiled.program()
        );
    }
    let run = compiled.run_generic(edb).unwrap();
    assert!(
        verify_stable_model(compiled.program(), edb, &run).unwrap(),
        "generic run must be a stable model for:\n{}",
        compiled.program()
    );
}

#[test]
fn v1_sorting_runs_are_stable_models() {
    let items = workload::random_items(8, 1);
    assert_both_paths_stable(sorting::PROGRAM, &sorting::edb(&items));
}

#[test]
fn v1_prim_runs_are_stable_models() {
    let g = workload::connected_graph(7, 6, 20, 2);
    assert_both_paths_stable(&prim::program_text(0), &g.to_edb());
}

#[test]
fn v1_matching_runs_are_stable_models() {
    let g = workload::random_arcs(6, 9, 3);
    assert_both_paths_stable(matching::PROGRAM, &g.to_edb());
}

#[test]
fn v1_spanning_tree_runs_are_stable_models() {
    let g = workload::connected_graph(6, 4, 10, 4);
    assert_both_paths_stable(&spanning::program_stage_text(0), &g.to_edb());
    assert_both_paths_stable(&spanning::program_choice_text(0), &g.to_edb());
}

#[test]
fn v1_tsp_runs_are_stable_models() {
    let g = workload::complete_geometric(5, 5);
    assert_both_paths_stable(tsp::PROGRAM, &g.to_edb());
}

#[test]
fn v1_example1_runs_are_stable_models() {
    assert_both_paths_stable(gbc_greedy::student::PROGRAM, &gbc_greedy::student::paper_facts());
}

#[test]
fn v1_tampered_model_fails_the_check() {
    // Sanity: the checker is not a rubber stamp. Add a junk fact to a
    // correct run and stability must fail.
    let items = [(0i64, 3i64), (1, 1), (2, 2)];
    let edb = sorting::edb(&items);
    let compiled = compile(gbc_parser::parse_program(sorting::PROGRAM).unwrap()).unwrap();
    let mut run = compiled.run_greedy(&edb).unwrap();
    run.db.insert_values("sp", vec![Value::int(99), Value::int(99), Value::int(99)]);
    assert!(!verify_stable_model(compiled.program(), &edb, &run).unwrap());
}

#[test]
fn v1_truncated_model_fails_the_check() {
    // Remove the chosen record for one committed fact: the chosen_i
    // completion is then wrong and the model must be rejected.
    let items = [(0i64, 3i64), (1, 1)];
    let edb = sorting::edb(&items);
    let compiled = compile(gbc_parser::parse_program(sorting::PROGRAM).unwrap()).unwrap();
    let mut run = compiled.run_greedy(&edb).unwrap();
    run.chosen.pop();
    assert!(!verify_stable_model(compiled.program(), &edb, &run).unwrap());
}

#[test]
fn v2_enumeration_matches_the_paper_counts() {
    let models = gbc_greedy::student::enumerate_models().unwrap();
    assert_eq!(models.len(), 3);
    let bi = gbc_greedy::student::enumerate_bi_models().unwrap();
    assert_eq!(bi.len(), 2);
}

#[test]
fn v2_spanning_tree_enumeration_counts_trees() {
    // The 3-cycle a-b-c has exactly 3 spanning trees; rooted at node 0
    // with parent choices, the choice program has 3 models.
    let g = Graph::new(
        3,
        vec![
            gbc_greedy::Edge::new(0, 1, 1),
            gbc_greedy::Edge::new(1, 2, 1),
            gbc_greedy::Edge::new(0, 2, 1),
        ],
    )
    .symmetric_closure();
    let program = gbc_parser::parse_program(&spanning::program_choice_text(0)).unwrap();
    let models = gbc_engine::enumerate::all_choice_models(&program, &g.to_edb()).unwrap();
    assert_eq!(models.len(), 3, "a triangle has exactly three spanning trees");
    for m in &models {
        let tree = gbc_greedy::graph::decode_edges(&m.facts_of(gbc_ast::Symbol::intern("st")));
        assert!(spanning::is_spanning_tree(&g, 0, &tree));
    }
}

#[test]
fn v2_every_enumerated_model_is_stable() {
    // For Example 1 (Lemma 1's direction: everything the fixpoint can
    // produce is stable), check all three models through the rewriting.
    let program = gbc_parser::parse_program(gbc_greedy::student::PROGRAM).unwrap();
    let edb = gbc_greedy::student::paper_facts();
    let compiled = compile(program.clone()).unwrap();

    // Reconstruct each model via scripted choosers covering all picks.
    let mut seen = std::collections::BTreeSet::new();
    for a in 0..4usize {
        for b in 0..3usize {
            let mut fixpoint = gbc_engine::ChoiceFixpoint::new(&program, &edb).unwrap();
            let mut chooser = gbc_engine::chooser::Scripted::new(vec![a, b]);
            fixpoint.run(&mut chooser).unwrap();
            let chosen = gbc_core::verify::records_from_engine(&fixpoint, compiled.expanded());
            let run = gbc_core::GreedyRun {
                db: fixpoint.into_database(),
                chosen,
                stats: gbc_core::GreedyStats::default(),
                snapshot: gbc_telemetry::Snapshot::default(),
                pool: None,
            };
            assert!(verify_stable_model(&program, &edb, &run).unwrap(), "scripted picks ({a},{b})");
            seen.insert(run.db.canonical_form());
        }
    }
    assert_eq!(seen.len(), 3, "the scripted sweep reaches all three models");
}
