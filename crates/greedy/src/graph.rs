//! Graph values and their EDB encoding.

use gbc_ast::Value;
use gbc_baselines::Edge;
use gbc_storage::Database;

/// A graph over dense integer node ids `0..n`, as a directed edge list.
/// Undirected graphs list both orientations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// Number of nodes.
    pub n: usize,
    /// Directed edges.
    pub edges: Vec<Edge>,
}

impl Graph {
    /// Build from parts.
    pub fn new(n: usize, edges: Vec<Edge>) -> Graph {
        Graph { n, edges }
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add the reverse of every edge (make undirected).
    pub fn symmetric_closure(mut self) -> Graph {
        let mut rev: Vec<Edge> =
            self.edges.iter().map(|e| Edge::new(e.to, e.from, e.cost)).collect();
        self.edges.append(&mut rev);
        self.edges.sort_unstable();
        self.edges.dedup();
        self
    }

    /// Encode as `g(X, Y, C)` facts (plus `node(X)` facts), the schema
    /// every graph program in the paper uses.
    pub fn to_edb(&self) -> Database {
        let mut db = Database::new();
        for v in 0..self.n {
            db.insert_values("node", vec![Value::int(v as i64)]);
        }
        for e in &self.edges {
            db.insert_values(
                "g",
                vec![
                    Value::int(i64::from(e.from)),
                    Value::int(i64::from(e.to)),
                    Value::int(e.cost),
                ],
            );
        }
        db
    }
}

/// Decode `(X, Y, C)` integer rows back into edges; rows whose first
/// column is not an integer (e.g. the `nil` exit fact) are skipped.
pub fn decode_edges(rows: &[gbc_storage::Row]) -> Vec<Edge> {
    rows.iter()
        .filter_map(|r| {
            let from = r.first()?.as_int()?;
            let to = r.get(1)?.as_int()?;
            let cost = r.get(2)?.as_int()?;
            Some(Edge::new(from as u32, to as u32, cost))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_ast::Symbol;

    #[test]
    fn edb_encoding_round_trips() {
        let g = Graph::new(3, vec![Edge::new(0, 1, 5), Edge::new(1, 2, 7)]);
        let db = g.to_edb();
        assert_eq!(db.count(Symbol::intern("node")), 3);
        let rows = db.facts_of(Symbol::intern("g"));
        assert_eq!(decode_edges(&rows), g.edges);
    }

    #[test]
    fn symmetric_closure_doubles_and_dedups() {
        let g = Graph::new(2, vec![Edge::new(0, 1, 3), Edge::new(1, 0, 3)]);
        let s = g.symmetric_closure();
        assert_eq!(s.edges.len(), 2);
        let g2 = Graph::new(2, vec![Edge::new(0, 1, 3)]).symmetric_closure();
        assert_eq!(g2.edges.len(), 2);
    }

    #[test]
    fn nil_rows_are_skipped_by_the_decoder() {
        let rows = vec![
            gbc_storage::Row::new(vec![Value::Nil, Value::int(0), Value::int(0), Value::int(0)]),
            gbc_storage::Row::new(vec![Value::int(0), Value::int(1), Value::int(9), Value::int(1)]),
        ];
        assert_eq!(decode_edges(&rows), vec![Edge::new(0, 1, 9)]);
    }
}
