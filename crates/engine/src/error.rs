//! Engine errors.

use std::fmt;

use gbc_ast::AstError;

/// Errors raised during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Static validation failed.
    Ast(AstError),
    /// Arithmetic applied to a non-integer value.
    TypeError { context: String },
    /// Integer division or modulo by zero.
    DivideByZero,
    /// Integer overflow in arithmetic.
    Overflow,
    /// A rule's head could not be grounded after body matching (should
    /// be prevented by safety validation).
    NonGroundHead { rule: String },
    /// No body literal was evaluable at some point (unsafe rule shape
    /// that slipped past validation, e.g. negation over unbound vars).
    NoEvaluableLiteral { rule: String },
    /// The program is not stratified (negation or extrema inside a
    /// recursive clique) and was given to the stratified evaluator.
    Unstratified { detail: String },
    /// A `next` goal reached the engine un-expanded.
    UnexpandedNext { rule: String },
    /// Evaluation exceeded the configured step budget (non-terminating
    /// program, e.g. uncontrolled function symbols).
    StepLimit { steps: u64 },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Ast(e) => write!(f, "{e}"),
            EngineError::TypeError { context } => {
                write!(f, "type error: arithmetic on non-integer in {context}")
            }
            EngineError::DivideByZero => f.write_str("division by zero"),
            EngineError::Overflow => f.write_str("integer overflow"),
            EngineError::NonGroundHead { rule } => {
                write!(f, "non-ground head after body match in `{rule}`")
            }
            EngineError::NoEvaluableLiteral { rule } => {
                write!(f, "no evaluable literal while matching `{rule}`")
            }
            EngineError::Unstratified { detail } => write!(f, "program not stratified: {detail}"),
            EngineError::UnexpandedNext { rule } => {
                write!(f, "`next` goal must be expanded before evaluation: `{rule}`")
            }
            EngineError::StepLimit { steps } => {
                write!(f, "evaluation exceeded the step budget ({steps} steps)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AstError> for EngineError {
    fn from(e: AstError) -> Self {
        EngineError::Ast(e)
    }
}
