//! Job sequencing with deadlines — one of the "several scheduling
//! algorithms" the paper cites among its greedy examples (Section 5,
//! last paragraph). A unit-time job `(id, profit, deadline)` may run in
//! any slot `1..=deadline`; at most one job per slot; maximise total
//! profit. The greedy solution — jobs by descending profit, each into
//! its **latest** free slot — is optimal (the feasible sets form a
//! matroid, which ties into the paper's Section 7 discussion).

/// A unit-time job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    pub id: u32,
    pub profit: i64,
    /// Latest slot (1-based) the job may occupy.
    pub deadline: u32,
}

impl Job {
    /// Build a job.
    pub fn new(id: u32, profit: i64, deadline: u32) -> Job {
        Job { id, profit, deadline }
    }
}

/// Greedy job sequencing: returns `(assignments, total_profit)` with
/// assignments as `(job id, slot)` pairs in assignment order. Ties on
/// profit break by ascending id.
pub fn job_sequencing(jobs: &[Job]) -> (Vec<(u32, u32)>, i64) {
    let max_slot = jobs.iter().map(|j| j.deadline).max().unwrap_or(0) as usize;
    let mut order: Vec<&Job> = jobs.iter().collect();
    order.sort_by_key(|j| (std::cmp::Reverse(j.profit), j.id));
    let mut slot_taken = vec![false; max_slot + 1]; // 1-based
    let mut out = Vec::new();
    let mut profit = 0;
    for job in order {
        // Latest free slot ≤ deadline.
        let mut s = job.deadline as usize;
        while s >= 1 && slot_taken[s] {
            s -= 1;
        }
        if s >= 1 {
            slot_taken[s] = true;
            out.push((job.id, s as u32));
            profit += job.profit;
        }
    }
    (out, profit)
}

/// Exhaustive optimum for small instances (≤ ~16 jobs): the best total
/// profit over all feasible subsets. A subset is feasible iff, after
/// sorting by deadline, the i-th job's deadline is ≥ i+1.
pub fn optimal_profit_bruteforce(jobs: &[Job]) -> i64 {
    assert!(jobs.len() <= 20, "exponential checker");
    let mut best = 0;
    for mask in 0u32..(1 << jobs.len()) {
        let mut chosen: Vec<&Job> = jobs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, j)| j)
            .collect();
        chosen.sort_by_key(|j| j.deadline);
        let feasible = chosen.iter().enumerate().all(|(i, j)| j.deadline as usize > i);
        if feasible {
            best = best.max(chosen.iter().map(|j| j.profit).sum());
        }
    }
    best
}

/// Is an assignment valid (slots distinct, within deadlines, jobs
/// distinct and real)?
pub fn is_valid_schedule(jobs: &[Job], schedule: &[(u32, u32)]) -> bool {
    let mut slots: Vec<u32> = schedule.iter().map(|&(_, s)| s).collect();
    slots.sort_unstable();
    if slots.windows(2).any(|w| w[0] == w[1]) || slots.contains(&0) {
        return false;
    }
    let mut ids: Vec<u32> = schedule.iter().map(|&(j, _)| j).collect();
    ids.sort_unstable();
    if ids.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    schedule
        .iter()
        .all(|&(id, slot)| jobs.iter().any(|j| j.id == id && slot >= 1 && slot <= j.deadline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic_jobs() -> Vec<Job> {
        // Classic example: optimal profit 60+40+20 = 127? Use the
        // standard (a..e) instance with profits 100,19,27,25,15.
        vec![
            Job::new(0, 100, 2),
            Job::new(1, 19, 1),
            Job::new(2, 27, 2),
            Job::new(3, 25, 1),
            Job::new(4, 15, 3),
        ]
    }

    #[test]
    fn textbook_instance() {
        let (sched, profit) = job_sequencing(&classic_jobs());
        assert!(is_valid_schedule(&classic_jobs(), &sched));
        // Optimal: jobs 0 (slot 2), 2 (slot 1), 4 (slot 3) = 142.
        assert_eq!(profit, 142);
        assert_eq!(profit, optimal_profit_bruteforce(&classic_jobs()));
    }

    #[test]
    fn greedy_is_optimal_on_many_small_instances() {
        // Deterministic LCG sweep.
        let mut x: u64 = 12345;
        let mut rand = move |m: u64| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) % m
        };
        for _ in 0..50 {
            let n = 1 + rand(9) as usize;
            let jobs: Vec<Job> = (0..n)
                .map(|i| Job::new(i as u32, 1 + rand(50) as i64, 1 + rand(5) as u32))
                .collect();
            let (sched, profit) = job_sequencing(&jobs);
            assert!(is_valid_schedule(&jobs, &sched));
            assert_eq!(profit, optimal_profit_bruteforce(&jobs), "jobs: {jobs:?}");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(job_sequencing(&[]), (vec![], 0));
        let one = [Job::new(7, 5, 1)];
        let (sched, profit) = job_sequencing(&one);
        assert_eq!(sched, vec![(7, 1)]);
        assert_eq!(profit, 5);
    }

    #[test]
    fn validity_checker_rejects_bad_schedules() {
        let jobs = classic_jobs();
        assert!(!is_valid_schedule(&jobs, &[(0, 1), (2, 1)]), "slot reuse");
        assert!(!is_valid_schedule(&jobs, &[(1, 2)]), "deadline exceeded");
        assert!(!is_valid_schedule(&jobs, &[(9, 1)]), "unknown job");
        assert!(!is_valid_schedule(&jobs, &[(0, 1), (0, 2)]), "job reuse");
    }
}
