//! Example 3 — non-deterministic spanning trees, in both of the paper's
//! styles:
//!
//! * [`PROGRAM_CHOICE`] — the `next`-free original:
//!   `st(X, Y, C) <- st(_, X, _), g(X, Y, C), Y != SRC, choice(Y, (X, C))`,
//!   evaluated by the generic Choice Fixpoint (class `Choice`);
//! * [`program_stage_text`] — the stage-variable formulation of
//!   Section 3, run by the greedy executor (no `least`: the
//!   retrieve-least degenerates to the paper's *retrieve-any*).
//!
//! Both carry the root guard `Y != SRC` (see `prim` — the printed exit
//! fact cannot register the source in the recursive rule's FD).

use gbc_ast::Symbol;
use gbc_baselines::Edge;
use gbc_core::{compile, Compiled, CoreError};

use crate::graph::{decode_edges, Graph};

/// The `next`-free formulation (generic fixpoint).
pub fn program_choice_text(source: u32) -> String {
    format!(
        "st(nil, {source}, 0).
         st(X, Y, C) <- st(_, X, _), g(X, Y, C), Y != {source}, choice(Y, (X, C))."
    )
}

/// The stage formulation (greedy executor): Section 3's `next` version
/// with the frontier factored through `new_g` (composing the section's
/// two displays — the bare `next` display drops the frontier join that
/// its stage-variable display carries).
pub fn program_stage_text(source: u32) -> String {
    format!(
        "st(nil, {source}, 0, 0).
         st(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, Y != {source},
                           choice(Y, (X, C)).
         new_g(X, Y, C, J) <- st(_, X, _, J), g(X, Y, C)."
    )
}

/// Run the stage formulation greedily; returns tree edges.
pub fn run_stage(graph: &Graph, source: u32) -> Result<Vec<Edge>, CoreError> {
    let program = gbc_parser::parse_program(&program_stage_text(source)).expect("static text");
    let compiled = compile(program)?;
    let run = compiled.run_greedy(&graph.to_edb())?;
    Ok(decode_edges(&run.db.facts_of(Symbol::intern("st"))))
}

/// Run the `next`-free formulation with the generic choice fixpoint.
pub fn run_choice(graph: &Graph, source: u32) -> Result<Vec<Edge>, CoreError> {
    let program = gbc_parser::parse_program(&program_choice_text(source)).expect("static text");
    let compiled = compile(program)?;
    let run = compiled.run_generic(&graph.to_edb())?;
    Ok(decode_edges(&run.db.facts_of(Symbol::intern("st"))))
}

/// Compiled stage program (for benches).
pub fn compiled_stage(source: u32) -> Compiled {
    let program = gbc_parser::parse_program(&program_stage_text(source)).expect("static text");
    compile(program).expect("stage spanning tree is stage-stratified")
}

/// Is `tree` a spanning tree of `graph` rooted at `source`?
/// (n−1 edges, each non-source node entered exactly once, all edges
/// real, connected to the source.)
pub fn is_spanning_tree(graph: &Graph, source: u32, tree: &[Edge]) -> bool {
    if tree.len() + 1 != graph.n {
        return false;
    }
    let mut entered = vec![false; graph.n];
    entered[source as usize] = true;
    for e in tree {
        if !graph.edges.contains(e) || entered[e.to as usize] {
            return false;
        }
        entered[e.to as usize] = true;
    }
    // Connectivity: every edge's source must be reachable; walk in
    // insertion order — parents always precede children for both
    // evaluation styles, but verify defensively.
    let mut reach = vec![false; graph.n];
    reach[source as usize] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for e in tree {
            if reach[e.from as usize] && !reach[e.to as usize] {
                reach[e.to as usize] = true;
                changed = true;
            }
        }
    }
    reach.iter().all(|&r| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_core::ProgramClass;

    #[test]
    fn stage_version_is_stage_stratified_choice_version_is_choice() {
        let stage = compile(gbc_parser::parse_program(&program_stage_text(0)).unwrap()).unwrap();
        assert_eq!(*stage.class(), ProgramClass::StageStratified { alternating: true });
        assert!(stage.has_greedy_plan(), "{:?}", stage.plan_error());

        let choice = compile(gbc_parser::parse_program(&program_choice_text(0)).unwrap()).unwrap();
        assert_eq!(*choice.class(), ProgramClass::Choice);
    }

    #[test]
    fn both_styles_build_spanning_trees() {
        for seed in 0..4 {
            let g = crate::workload::connected_graph(14, 20, 30, seed);
            let stage = run_stage(&g, 0).unwrap();
            assert!(is_spanning_tree(&g, 0, &stage), "stage, seed {seed}: {stage:?}");
            let choice = run_choice(&g, 0).unwrap();
            assert!(is_spanning_tree(&g, 0, &choice), "choice, seed {seed}: {choice:?}");
        }
    }

    #[test]
    fn single_node_graph_has_empty_tree() {
        let g = Graph::new(1, vec![]);
        assert!(run_stage(&g, 0).unwrap().is_empty());
        assert!(run_choice(&g, 0).unwrap().is_empty());
    }

    #[test]
    fn checker_rejects_non_trees() {
        let g = Graph::new(3, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        assert!(!is_spanning_tree(&g, 0, &[Edge::new(0, 1, 1)]), "too few edges");
        assert!(
            !is_spanning_tree(&g, 0, &[Edge::new(0, 1, 1), Edge::new(0, 1, 1)]),
            "duplicate entry"
        );
        assert!(
            !is_spanning_tree(&g, 0, &[Edge::new(0, 1, 1), Edge::new(2, 0, 9)]),
            "fake edge / re-enters root"
        );
    }
}
