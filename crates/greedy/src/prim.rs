//! Example 4 — Prim's algorithm, declaratively.
//!
//! ```text
//! prm(nil, SRC, 0, 0).
//! prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, Y != SRC,
//!                    least(C, I), choice(Y, X).
//! new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C).
//! ```
//!
//! One deviation from the paper's print: the guard `Y != SRC`. The exit
//! fact `prm(nil, SRC, 0, 0)` does not register SRC in the recursive
//! rule's choice FD, so without the guard the program (as printed)
//! admits one redundant re-entry of the source node. The guard restores
//! the evident intent; every other node is protected by `choice(Y, X)`.

use gbc_ast::Symbol;
use gbc_baselines::Edge;
use gbc_core::{compile, Compiled, CoreError, GreedyRun};
use gbc_storage::Database;

use crate::graph::{decode_edges, Graph};

/// The program text for `source`.
pub fn program_text(source: u32) -> String {
    format!(
        "prm(nil, {source}, 0, 0).
         prm(X, Y, C, I) <- next(I), new_g(X, Y, C, J), J < I, Y != {source},
                            least(C, I), choice(Y, X).
         new_g(X, Y, C, J) <- prm(_, X, _, J), g(X, Y, C)."
    )
}

/// Compile the Prim program for `source`.
pub fn compiled(source: u32) -> Compiled {
    let program = gbc_parser::parse_program(&program_text(source)).expect("static program text");
    compile(program).expect("Prim is stage-stratified")
}

/// Extract MST edges from a run (the `nil` exit fact is dropped).
pub fn decode(run: &GreedyRun) -> Vec<Edge> {
    decode_edges(&run.db.facts_of(Symbol::intern("prm")))
}

/// Run Prim on `graph` with the greedy (R,Q,L) executor.
pub fn run_greedy(graph: &Graph, source: u32) -> Result<Vec<Edge>, CoreError> {
    let c = compiled(source);
    let run = c.run_greedy(&graph.to_edb())?;
    Ok(decode(&run))
}

/// Run Prim with the generic choice fixpoint (the A1 ablation baseline).
pub fn run_generic(graph: &Graph, source: u32) -> Result<Vec<Edge>, CoreError> {
    let c = compiled(source);
    let run = c.run_generic(&graph.to_edb())?;
    Ok(decode(&run))
}

/// Convenience for benches: a prepared `(compiled, edb)` pair.
pub fn prepared(graph: &Graph, source: u32) -> (Compiled, Database) {
    (compiled(source), graph.to_edb())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbc_baselines::{prim::prim_mst, total_cost};
    use gbc_core::ProgramClass;

    fn square() -> Graph {
        Graph::new(
            4,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 2), Edge::new(2, 3, 3), Edge::new(0, 3, 4)],
        )
        .symmetric_closure()
    }

    #[test]
    fn classifies_as_alternating_stage_stratified() {
        let c = compiled(0);
        assert_eq!(*c.class(), ProgramClass::StageStratified { alternating: true });
        assert!(c.has_greedy_plan(), "{:?}", c.plan_error());
    }

    #[test]
    fn matches_the_procedural_mst_cost() {
        let g = square();
        let decl = run_greedy(&g, 0).unwrap();
        let proc_ = prim_mst(g.n, &g.edges, 0);
        assert_eq!(decl.len(), g.n - 1);
        assert_eq!(total_cost(&decl), total_cost(&proc_));
    }

    #[test]
    fn generic_and_greedy_paths_agree() {
        let g = square();
        let a = run_greedy(&g, 0).unwrap();
        let b = run_generic(&g, 0).unwrap();
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn random_graphs_match_baseline_cost() {
        for seed in 0..5 {
            let g = crate::workload::connected_graph(24, 40, 100, seed);
            let decl = run_greedy(&g, 0).unwrap();
            let proc_ = prim_mst(g.n, &g.edges, 0);
            assert_eq!(decl.len(), g.n - 1, "spanning: seed {seed}");
            assert_eq!(total_cost(&decl), total_cost(&proc_), "optimal: seed {seed}");
        }
    }

    #[test]
    fn each_node_entered_exactly_once() {
        let g = crate::workload::connected_graph(16, 20, 50, 9);
        let tree = run_greedy(&g, 0).unwrap();
        let mut targets: Vec<u32> = tree.iter().map(|e| e.to).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), g.n - 1);
        assert!(!targets.contains(&0), "source never re-entered");
    }
}
